//! Reusable concurrency motifs for building the synthetic corpus.
//!
//! Each of the 15 applications in the paper's evaluation is assembled from a
//! small set of recurring concurrency patterns — an `AsyncTask` download, a
//! cursor swapped between tasks, lifecycle callbacks racing with background
//! work, delayed refreshes, custom task queues, untracked native threads.
//! [`MotifBuilder`] provides those patterns as composable operations that
//! plant races with known ground truth:
//!
//! * *true positives* are plain unordered conflicting accesses, which an
//!   alternative schedule (or event order) really can flip;
//! * *false positives* are pairs ordered by a mechanism the tracer cannot
//!   see — joins of `untracked:` native threads, enables of `untracked:`
//!   dialog widgets — which [`crate::strip_untracked`] erases from the trace
//!   before analysis, mirroring DroidRacer's blind spots (§6 "False
//!   positives and negatives").

use std::collections::BTreeMap;

use droidracer_core::RaceCategory;
use droidracer_framework::{ActivityId, App, AppBuilder, Stmt, UiEvent, UiEventKind, Var};

/// Ground truth for one planted race, keyed by its field name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceTruth {
    /// The category the race should be classified into.
    pub category: RaceCategory,
    /// Whether the race is real (reorderable) or a false positive caused by
    /// synchronization invisible to the tracer.
    pub is_true: bool,
    /// Why.
    pub note: &'static str,
}

/// Ground truth table: planted field name → truth.
pub type GroundTruth = BTreeMap<String, RaceTruth>;

/// Assembles an [`App`], an event sequence and a [`GroundTruth`] from
/// composable motifs.
#[derive(Debug)]
pub struct MotifBuilder {
    app: AppBuilder,
    act: ActivityId,
    on_create: Vec<Stmt>,
    on_stop: Vec<Stmt>,
    on_destroy: Vec<Stmt>,
    events: Vec<UiEvent>,
    truth: GroundTruth,
    field_counter: usize,
    object: String,
}

impl MotifBuilder {
    /// Starts an app with a single launcher activity.
    pub fn new(app_name: &str, activity_name: &str) -> Self {
        let mut app = AppBuilder::new(app_name);
        let act = app.activity(activity_name);
        MotifBuilder {
            app,
            act,
            on_create: Vec::new(),
            on_stop: Vec::new(),
            on_destroy: Vec::new(),
            events: Vec::new(),
            truth: GroundTruth::new(),
            field_counter: 0,
            object: format!("{activity_name}-obj"),
        }
    }

    /// The launcher activity.
    pub fn activity(&self) -> ActivityId {
        self.act
    }

    /// Direct access to the underlying [`AppBuilder`] for app-specific
    /// flourishes.
    pub fn app_builder(&mut self) -> &mut AppBuilder {
        &mut self.app
    }

    /// Appends raw statements to the launcher's `onCreate`.
    pub fn on_create(&mut self, stmts: impl IntoIterator<Item = Stmt>) {
        self.on_create.extend(stmts);
    }

    /// Appends a UI event to the driven sequence.
    pub fn push_event(&mut self, event: UiEvent) {
        self.events.push(event);
    }

    /// The ground truth planted so far. Lets callers synthesize paper rows
    /// whose reported counts match the planted races exactly.
    pub fn truth(&self) -> &GroundTruth {
        &self.truth
    }

    fn fresh_field(&mut self, tag: &str) -> (Var, String) {
        let name = format!("{tag}{}", self.field_counter);
        self.field_counter += 1;
        let var = self.app.var(self.object.clone(), name.clone());
        (var, name)
    }

    fn record(&mut self, field: String, category: RaceCategory, is_true: bool, note: &'static str) {
        self.truth.insert(
            field,
            RaceTruth {
                category,
                is_true,
                note,
            },
        );
    }

    /// Main-thread compute: `fields` private fields written `repeats` times
    /// each in `onCreate`. Pumps trace length and the Table 2 field count
    /// without creating races.
    pub fn filler(&mut self, fields: usize, repeats: usize) {
        for _ in 0..fields {
            let (v, _) = self.fresh_field("local.f");
            for _ in 0..repeats {
                self.on_create.push(Stmt::Write(v));
            }
        }
    }

    /// Background compute on `n` forked worker threads, each writing its own
    /// `fields` private fields `repeats` times. Pumps the count of threads
    /// without queues, race-free.
    pub fn bg_filler(&mut self, n: usize, fields: usize, repeats: usize) {
        for i in 0..n {
            let mut body = Vec::new();
            for _ in 0..fields {
                let (v, _) = self.fresh_field("bg.f");
                for _ in 0..repeats {
                    body.push(Stmt::Write(v));
                }
            }
            let w = self.app.worker(format!("compute-{i}"), body);
            self.on_create.push(Stmt::ForkWorker(w));
        }
    }

    /// `n` looper threads (`HandlerThread`s), each receiving one private
    /// runnable. Pumps the threads-with-queues count.
    pub fn handler_threads(&mut self, n: usize) {
        for i in 0..n {
            let (v, _) = self.fresh_field("ht.f");
            let ht = self.app.handler_thread(format!("handler-thread-{i}"));
            let r = self
                .app
                .handler(format!("htWork-{i}"), vec![Stmt::Write(v), Stmt::Read(v)]);
            self.on_create.push(Stmt::StartHandlerThread(ht));
            self.on_create
                .push(Stmt::PostToHandlerThread { handler: r, thread: ht });
        }
    }

    /// Posts `n` copies of a small runnable to the main looper — the
    /// asynchronous-call burst driving the Table 2 "Async. tasks" column.
    pub fn handler_burst(&mut self, n: usize) {
        let (v, _) = self.fresh_field("burst.f");
        let r = self
            .app
            .handler("burstWork", vec![Stmt::Read(v), Stmt::Write(v)]);
        for _ in 0..n {
            self.on_create.push(Stmt::Post {
                handler: r,
                delay: None,
                front: false,
            });
        }
    }

    /// `n` executions of an AsyncTask doing a chunked download with progress
    /// updates — the §2 music-player motif (pumps async tasks and threads).
    pub fn async_burst(&mut self, n: usize, chunks: usize) {
        let (v, _) = self.fresh_field("dl.f");
        let mut background = Vec::new();
        for _ in 0..chunks {
            background.push(Stmt::Read(v));
            background.push(Stmt::PublishProgress);
        }
        let at = self.app.async_task(
            "DownloadTask",
            vec![Stmt::Read(v)],
            background,
            vec![Stmt::Read(v)],
            vec![Stmt::Read(v)],
        );
        for _ in 0..n {
            self.on_create.push(Stmt::ExecuteAsyncTask(at));
        }
    }

    /// Plants multi-threaded races: a forked loader thread writes the
    /// fields, a main-thread runnable reads them without synchronization
    /// (one loader/reader pair per group, like a Service loading shared
    /// state — the Aard Dictionary bug). False positives are ordered by a
    /// join of an `untracked:` thread, which the trace scrubber erases.
    pub fn mt_races(&mut self, n_true: usize, n_false: usize) {
        for (hidden, n) in [(false, n_true), (true, n_false)] {
            if n == 0 {
                continue;
            }
            let tag = if hidden { "mt.fp.f" } else { "mt.f" };
            let fields: Vec<(Var, String)> = (0..n).map(|_| self.fresh_field(tag)).collect();
            // The hidden variant uses the classic ad-hoc hand-off shape:
            // payloads written first, a ready-flag (the last field) written
            // last; the reader polls the flag before touching the payloads.
            // Race-coverage triage then collapses the payload races behind
            // the flag race.
            let writes: Vec<Stmt> = fields.iter().map(|(v, _)| Stmt::Write(*v)).collect();
            let prefix = if hidden { "untracked:loader" } else { "loader" };
            let suffix = if hidden { "-hidden" } else { "" };
            let w = self.app.worker(format!("{prefix}{suffix}"), writes);
            let mut reader_body = Vec::new();
            if hidden {
                // Real ordering: the reader joins the loader first, but the
                // join is native and invisible in the trace.
                reader_body.push(Stmt::JoinWorker(w));
                // Poll the ready flag, then consume the payloads.
                reader_body.extend(fields.iter().rev().map(|(v, _)| Stmt::Read(*v)));
            } else {
                reader_body.extend(fields.iter().map(|(v, _)| Stmt::Read(*v)));
            }
            let r = self.app.handler(format!("stateReader{suffix}"), reader_body);
            self.on_create.push(Stmt::ForkWorker(w));
            self.on_create.push(Stmt::Post {
                handler: r,
                delay: None,
                front: false,
            });
            for (_, name) in fields {
                self.record(
                    name,
                    RaceCategory::Multithreaded,
                    !hidden,
                    if hidden {
                        "ordered by an untracked native join"
                    } else {
                        "loader thread vs main-thread reader, no synchronization"
                    },
                );
            }
        }
    }

    /// Properly synchronized cross-thread work that must NOT be reported:
    /// a writer thread initializes fields which a main-thread runnable reads
    /// after a `join`, plus a lock-protected pair. The paper's relation
    /// orders both; the async-only specialization (which drops fork/join and
    /// lock rules, §4.1) reports every one of these as a false positive.
    pub fn safe_sync(&mut self, fields: usize, repeats: usize) {
        let join_half: Vec<(Var, String)> =
            (0..fields / 2).map(|_| self.fresh_field("safe.j.f")).collect();
        let lock_half: Vec<(Var, String)> = (0..fields - fields / 2)
            .map(|_| self.fresh_field("safe.l.f"))
            .collect();
        let m = self.app.mutex("stateLock");
        let mut worker_body = Vec::new();
        for _ in 0..repeats {
            worker_body.extend(join_half.iter().map(|(v, _)| Stmt::Write(*v)));
        }
        worker_body.push(Stmt::Synchronized(
            m,
            lock_half.iter().map(|(v, _)| Stmt::Write(*v)).collect(),
        ));
        let w = self.app.worker("sync-writer", worker_body);
        let mut joined_reader = vec![Stmt::JoinWorker(w)];
        joined_reader.extend(join_half.iter().map(|(v, _)| Stmt::Read(*v)));
        let r1 = self.app.handler("joinedReader", joined_reader);
        let locked_reader = vec![Stmt::Synchronized(
            m,
            lock_half.iter().map(|(v, _)| Stmt::Read(*v)).collect(),
        )];
        let r2 = self.app.handler("lockedReader", locked_reader);
        self.on_create.push(Stmt::ForkWorker(w));
        for r in [r1, r2] {
            self.on_create.push(Stmt::Post {
                handler: r,
                delay: None,
                front: false,
            });
        }
    }

    /// Plants cross-posted single-threaded races: two workers independently
    /// post runnables to main that write the same fields. The true races'
    /// writes sit inside `synchronized` blocks on one lock — locks cannot
    /// order two tasks running sequentially on one thread, so the paper's
    /// relation still reports them, while the naive combination derives the
    /// spurious same-thread lock ordering and silently drops them (the
    /// introduction's motivating flaw). False positives chain the second
    /// worker behind the first via an untracked join, so the posts are
    /// really ordered (the custom-task-queue blind spot).
    pub fn cross_posted_races(&mut self, n_true: usize, n_false: usize) {
        if n_true > 0 {
            let fields: Vec<(Var, String)> =
                (0..n_true).map(|_| self.fresh_field("xp.f")).collect();
            let m = self.app.mutex("cursorLock");
            let writes = vec![Stmt::Synchronized(
                m,
                fields.iter().map(|(v, _)| Stmt::Write(*v)).collect(),
            )];
            let r1 = self.app.handler("cursorSwapA", writes.clone());
            let r2 = self.app.handler("cursorSwapB", writes);
            let w1 = self.app.worker(
                "poster-a",
                vec![Stmt::Post {
                    handler: r1,
                    delay: None,
                    front: false,
                }],
            );
            let w2 = self.app.worker(
                "poster-b",
                vec![Stmt::Post {
                    handler: r2,
                    delay: None,
                    front: false,
                }],
            );
            self.on_create.push(Stmt::ForkWorker(w1));
            self.on_create.push(Stmt::ForkWorker(w2));
            for (_, name) in fields {
                self.record(
                    name,
                    RaceCategory::CrossPosted,
                    true,
                    "runnables posted by unordered background threads",
                );
            }
        }
        if n_false > 0 {
            let fields: Vec<(Var, String)> =
                (0..n_false).map(|_| self.fresh_field("xp.fp.f")).collect();
            // Custom-queue hand-off shape: work A publishes its results and
            // finally a guard (the last field); work B inspects the guard
            // first, then overwrites the results — so coverage triage can
            // collapse the result races behind the guard race.
            let writes: Vec<Stmt> = fields.iter().map(|(v, _)| Stmt::Write(*v)).collect();
            let reversed: Vec<Stmt> = fields.iter().rev().map(|(v, _)| Stmt::Write(*v)).collect();
            let r1 = self.app.handler("queuedWorkA", writes);
            let r2 = self.app.handler("queuedWorkB", reversed);
            let w1 = self.app.worker(
                "untracked:queue-a",
                vec![Stmt::Post {
                    handler: r1,
                    delay: None,
                    front: false,
                }],
            );
            // The custom task queue: worker b waits (natively) for worker a
            // before posting, so the posts are really FIFO.
            let w2 = self.app.worker(
                "custom-queue-drainer",
                vec![
                    Stmt::JoinWorker(w1),
                    Stmt::Post {
                        handler: r2,
                        delay: None,
                        front: false,
                    },
                ],
            );
            self.on_create.push(Stmt::ForkWorker(w1));
            self.on_create.push(Stmt::ForkWorker(w2));
            for (_, name) in fields {
                self.record(
                    name,
                    RaceCategory::CrossPosted,
                    false,
                    "custom task queue drains in order; the ordering is invisible",
                );
            }
        }
    }

    /// Plants co-enabled races: two buttons whose click handlers write the
    /// same fields, both clicked. False positives use an `untracked:` dialog
    /// button whose enabling (inside the first handler) is erased from the
    /// trace, although the second event really cannot fire first.
    pub fn co_enabled_races(&mut self, n_true: usize, n_false: usize) {
        if n_true > 0 {
            let fields: Vec<(Var, String)> =
                (0..n_true).map(|_| self.fresh_field("ce.f")).collect();
            let writes: Vec<Stmt> = fields.iter().map(|(v, _)| Stmt::Write(*v)).collect();
            let b1 = self.app.button(self.act, "actionA", writes.clone());
            let b2 = self.app.button(self.act, "actionB", writes);
            self.events.push(UiEvent::Widget(b1, UiEventKind::Click));
            self.events.push(UiEvent::Widget(b2, UiEventKind::Click));
            for (_, name) in fields {
                self.record(
                    name,
                    RaceCategory::CoEnabled,
                    true,
                    "two independently enabled UI events on one screen",
                );
            }
        }
        if n_false > 0 {
            let fields: Vec<(Var, String)> =
                (0..n_false).map(|_| self.fresh_field("ce.fp.f")).collect();
            let writes: Vec<Stmt> = fields.iter().map(|(v, _)| Stmt::Write(*v)).collect();
            let dialog_ok = self
                .app
                .button(self.act, "untracked:dialogOk", writes.clone());
            self.app.initially_disabled(dialog_ok);
            let mut opener_body = writes;
            opener_body.push(Stmt::EnableWidget(dialog_ok, UiEventKind::Click));
            let open = self.app.button(self.act, "openDialog", opener_body);
            self.events.push(UiEvent::Widget(open, UiEventKind::Click));
            self.events
                .push(UiEvent::Widget(dialog_ok, UiEventKind::Click));
            for (_, name) in fields {
                self.record(
                    name,
                    RaceCategory::CoEnabled,
                    false,
                    "the dialog event is only enabled by the first handler; \
                     the enable is invisible to the tracer",
                );
            }
        }
    }

    /// Plants delayed races: a `postDelayed` refresh runnable vs a plain
    /// post touching the same fields. False positives hide the ordering
    /// behind an untracked thread forked at the end of the delayed task.
    pub fn delayed_races(&mut self, n_true: usize, n_false: usize) {
        if n_true > 0 {
            let fields: Vec<(Var, String)> =
                (0..n_true).map(|_| self.fresh_field("dly.f")).collect();
            let writes: Vec<Stmt> = fields.iter().map(|(v, _)| Stmt::Write(*v)).collect();
            let refresh = self.app.handler("delayedRefresh", writes.clone());
            let update = self.app.handler("promptUpdate", writes);
            self.on_create.push(Stmt::Post {
                handler: refresh,
                delay: Some(500),
                front: false,
            });
            self.on_create.push(Stmt::Post {
                handler: update,
                delay: None,
                front: false,
            });
            for (_, name) in fields {
                self.record(
                    name,
                    RaceCategory::Delayed,
                    true,
                    "a delayed refresh may run before or after the plain update",
                );
            }
        }
        if n_false > 0 {
            let fields: Vec<(Var, String)> =
                (0..n_false).map(|_| self.fresh_field("dly.fp.f")).collect();
            let writes: Vec<Stmt> = fields.iter().map(|(v, _)| Stmt::Write(*v)).collect();
            let follow = self.app.handler("followUp", writes.clone());
            let w = self.app.worker(
                "untracked:timer-chain",
                vec![Stmt::Post {
                    handler: follow,
                    delay: None,
                    front: false,
                }],
            );
            let mut first = writes;
            first.push(Stmt::ForkWorker(w));
            let delayed_first = self.app.handler("delayedFirst", first);
            self.on_create.push(Stmt::Post {
                handler: delayed_first,
                delay: Some(300),
                front: false,
            });
            for (_, name) in fields {
                self.record(
                    name,
                    RaceCategory::Delayed,
                    false,
                    "the follow-up is chained after the delayed task through \
                     an untracked timer thread",
                );
            }
        }
    }

    /// Plants unknown-category races using front-of-queue posts (the §4.2
    /// construct the paper defers to future work): a plain render pass and a
    /// front-of-queue urgent pass posted from the same launch code touch the
    /// same fields. Both tasks descend from the same binder post of
    /// `LAUNCH_ACTIVITY`, so the race is neither co-enabled, nor delayed,
    /// nor cross-posted — it lands in the remainder category.
    ///
    /// In our model the front post deterministically overtakes the plain
    /// one, so these races are annotated as false positives (the report is
    /// genuine: the detector cannot order front posts, which is exactly why
    /// the paper defers them).
    pub fn unknown_races(&mut self, n: usize) {
        if n == 0 {
            return;
        }
        let fields: Vec<(Var, String)> = (0..n).map(|_| self.fresh_field("unk.f")).collect();
        let writes: Vec<Stmt> = fields.iter().map(|(v, _)| Stmt::Write(*v)).collect();
        let plain = self.app.handler("renderPass", writes.clone());
        let front = self.app.handler("urgentPass", writes);
        self.on_create.push(Stmt::Post {
            handler: plain,
            delay: None,
            front: false,
        });
        self.on_create.push(Stmt::Post {
            handler: front,
            delay: None,
            front: true,
        });
        for (_, name) in fields {
            self.record(
                name,
                RaceCategory::Unknown,
                false,
                "a front-of-queue post the detector cannot order; in the model \
                 the front post deterministically runs first",
            );
        }
    }

    /// The §2 music-player lifecycle motif: an AsyncTask checks the
    /// activity's `isActivityDestroyed` flag from its background thread and
    /// from `onPostExecute`, racing with the `onDestroy` write when the
    /// sequence presses BACK — the two races of Figure 4.
    pub fn lifecycle_flag_race(&mut self, press_back: bool) -> String {
        let (flag, name) = self.fresh_field("isActivityDestroyed");
        let at = self.app.async_task(
            "FileDwTask",
            vec![],
            vec![Stmt::Read(flag), Stmt::PublishProgress],
            vec![],
            vec![Stmt::Read(flag)],
        );
        self.on_create.insert(0, Stmt::Write(flag));
        self.on_create.push(Stmt::ExecuteAsyncTask(at));
        self.on_destroy.push(Stmt::Write(flag));
        if press_back {
            self.events.push(UiEvent::Back);
            // Depending on the schedule the race surfaces as multithreaded
            // (background read vs onDestroy write) or cross-posted
            // (onPostExecute read vs onDestroy write); both are real.
            self.record(
                name.clone(),
                RaceCategory::Multithreaded,
                true,
                "background download checks the flag while onDestroy writes it",
            );
        }
        name
    }

    /// SERVICE-automaton motif: `onCreate` of a started service forks a
    /// loader thread that writes shared state, and `onStartCommand` reads it
    /// on main without waiting — the Aard-Dictionary shape lifted onto the
    /// service lifecycle (the two transitions are FIFO-ordered by the
    /// binder→main queue, but the loader is not). False positives join an
    /// `untracked:` loader before reading, so the ordering is real but
    /// invisible.
    pub fn service_loader_races(&mut self, n_true: usize, n_false: usize) {
        for (hidden, n) in [(false, n_true), (true, n_false)] {
            if n == 0 {
                continue;
            }
            let tag = if hidden { "svc.fp.f" } else { "svc.f" };
            let fields: Vec<(Var, String)> = (0..n).map(|_| self.fresh_field(tag)).collect();
            let writes: Vec<Stmt> = fields.iter().map(|(v, _)| Stmt::Write(*v)).collect();
            let prefix = if hidden { "untracked:svc-loader" } else { "svc-loader" };
            let suffix = if hidden { "Hidden" } else { "" };
            let w = self.app.worker(format!("{prefix}{suffix}"), writes);
            let mut start_body = Vec::new();
            if hidden {
                start_body.push(Stmt::JoinWorker(w));
            }
            start_body.extend(fields.iter().map(|(v, _)| Stmt::Read(*v)));
            let svc = self.app.service(
                format!("SyncService{suffix}"),
                vec![Stmt::ForkWorker(w)],
                start_body,
                vec![],
            );
            self.on_create.push(Stmt::StartService(svc));
            for (_, name) in fields {
                self.record(
                    name,
                    RaceCategory::Multithreaded,
                    !hidden,
                    if hidden {
                        "onStartCommand joins the loader through an untracked native join"
                    } else {
                        "service loader thread vs onStartCommand read, no synchronization"
                    },
                );
            }
        }
    }

    /// SERVICE-automaton teardown motif: a background sync thread posts its
    /// result to main while a STOP button triggers `onDestroy` (via
    /// `stopService`), which reads the half-published state — the worker's
    /// post and the binder's destroy post are unordered. False positives
    /// join the `untracked:` sync thread inside the STOP handler before
    /// calling `stopService`, so the publish always lands first.
    pub fn service_teardown_races(&mut self, n_true: usize, n_false: usize) {
        for (hidden, n) in [(false, n_true), (true, n_false)] {
            if n == 0 {
                continue;
            }
            let tag = if hidden { "svcstop.fp.f" } else { "svcstop.f" };
            let fields: Vec<(Var, String)> = (0..n).map(|_| self.fresh_field(tag)).collect();
            let writes: Vec<Stmt> = fields.iter().map(|(v, _)| Stmt::Write(*v)).collect();
            let prefix = if hidden { "untracked:svc-sync" } else { "svc-sync" };
            let suffix = if hidden { "Hidden" } else { "" };
            let publish = self.app.handler(format!("syncPublish{suffix}"), writes);
            let w = self.app.worker(
                format!("{prefix}{suffix}"),
                vec![Stmt::Post {
                    handler: publish,
                    delay: None,
                    front: false,
                }],
            );
            let svc = self.app.service(
                format!("StoppableService{suffix}"),
                vec![],
                vec![],
                fields.iter().map(|(v, _)| Stmt::Read(*v)).collect(),
            );
            self.on_create.push(Stmt::ForkWorker(w));
            self.on_create.push(Stmt::StartService(svc));
            let mut stop_body = Vec::new();
            if hidden {
                stop_body.push(Stmt::JoinWorker(w));
            }
            stop_body.push(Stmt::StopService(svc));
            let stop = self.app.button(self.act, format!("stopSync{suffix}"), stop_body);
            self.events.push(UiEvent::Widget(stop, UiEventKind::Click));
            for (_, name) in fields {
                self.record(
                    name,
                    RaceCategory::CrossPosted,
                    !hidden,
                    if hidden {
                        "the STOP handler natively waits for the publish before stopService"
                    } else {
                        "worker-posted publish vs binder-posted onDestroy, unordered"
                    },
                );
            }
        }
    }

    /// FRAGMENT-automaton detach motif: `onAttach` forks a view loader that
    /// reads the fragment's view fields; pressing BACK destroys the host,
    /// and the spliced `onDestroyView` nulls the fields while the loader may
    /// still be running. The composition must end its event sequence with
    /// [`UiEvent::Back`]. False positives join an `untracked:` loader at the
    /// top of `onDestroyView`.
    pub fn fragment_detach_races(&mut self, n_true: usize, n_false: usize) {
        for (hidden, n) in [(false, n_true), (true, n_false)] {
            if n == 0 {
                continue;
            }
            let tag = if hidden { "frag.fp.f" } else { "frag.f" };
            let fields: Vec<(Var, String)> = (0..n).map(|_| self.fresh_field(tag)).collect();
            let reads: Vec<Stmt> = fields.iter().map(|(v, _)| Stmt::Read(*v)).collect();
            let prefix = if hidden { "untracked:frag-loader" } else { "frag-loader" };
            let suffix = if hidden { "Hidden" } else { "" };
            let w = self.app.worker(format!("{prefix}{suffix}"), reads);
            let mut destroy_view = Vec::new();
            if hidden {
                destroy_view.push(Stmt::JoinWorker(w));
            }
            destroy_view.extend(fields.iter().map(|(v, _)| Stmt::Write(*v)));
            self.app.fragment(
                self.act,
                format!("GalleryFragment{suffix}"),
                vec![Stmt::ForkWorker(w)],
                vec![],
                destroy_view,
                vec![],
            );
            for (_, name) in fields {
                self.record(
                    name,
                    RaceCategory::Multithreaded,
                    !hidden,
                    if hidden {
                        "onDestroyView natively joins the view loader before nulling"
                    } else {
                        "fragment view loader vs onDestroyView nulling the view fields"
                    },
                );
            }
        }
    }

    /// FRAGMENT-automaton UI motif: the fragment's `onDetach` (spliced into
    /// the host's destroy transition) clears fields that a toolbar button
    /// reads — the BACK teardown and the click are independently enabled
    /// events, so the race is co-enabled. The composition must end its event
    /// sequence with [`UiEvent::Back`]. False positives initialize the
    /// fields in `onAttach` and read them from an `untracked:` dialog the
    /// attach enables — the enable is invisible, so the pair looks
    /// co-enabled although the dialog can never fire first.
    pub fn fragment_ui_races(&mut self, n_true: usize, n_false: usize) {
        if n_true > 0 {
            let fields: Vec<(Var, String)> =
                (0..n_true).map(|_| self.fresh_field("fragui.f")).collect();
            let reads: Vec<Stmt> = fields.iter().map(|(v, _)| Stmt::Read(*v)).collect();
            let toolbar = self.app.button(self.act, "openToolbar", reads);
            self.events.push(UiEvent::Widget(toolbar, UiEventKind::Click));
            self.app.fragment(
                self.act,
                "ToolbarFragment",
                vec![],
                vec![],
                vec![],
                fields.iter().map(|(v, _)| Stmt::Write(*v)).collect(),
            );
            for (_, name) in fields {
                self.record(
                    name,
                    RaceCategory::CoEnabled,
                    true,
                    "the BACK teardown (running onDetach) and the toolbar click \
                     are independently enabled events",
                );
            }
        }
        if n_false > 0 {
            let fields: Vec<(Var, String)> =
                (0..n_false).map(|_| self.fresh_field("fragui.fp.f")).collect();
            let reads: Vec<Stmt> = fields.iter().map(|(v, _)| Stmt::Read(*v)).collect();
            let dialog = self.app.button(self.act, "untracked:fragDialogOk", reads);
            self.app.initially_disabled(dialog);
            let mut attach: Vec<Stmt> = fields.iter().map(|(v, _)| Stmt::Write(*v)).collect();
            attach.push(Stmt::EnableWidget(dialog, UiEventKind::Click));
            self.app
                .fragment(self.act, "FeedFragmentHidden", attach, vec![], vec![], vec![]);
            self.events.push(UiEvent::Widget(dialog, UiEventKind::Click));
            for (_, name) in fields {
                self.record(
                    name,
                    RaceCategory::CoEnabled,
                    false,
                    "the dialog can only fire after onAttach enabled it; the \
                     enable is invisible to the tracer",
                );
            }
        }
    }

    /// INTENT_SERVICE-automaton motif: `onHandleIntent` runs on the
    /// component's serial executor and writes upload state that a
    /// main-thread status runnable reads — two different threads, no
    /// synchronization. False positives hand the completion back to main
    /// through an `untracked:` relay thread forked at the end of the
    /// delivery, so the status read really happens after the write.
    pub fn serial_executor_races(&mut self, n_true: usize, n_false: usize) {
        for (hidden, n) in [(false, n_true), (true, n_false)] {
            if n == 0 {
                continue;
            }
            let tag = if hidden { "isvc.fp.f" } else { "isvc.f" };
            let fields: Vec<(Var, String)> = (0..n).map(|_| self.fresh_field(tag)).collect();
            let reads: Vec<Stmt> = fields.iter().map(|(v, _)| Stmt::Read(*v)).collect();
            let suffix = if hidden { "Hidden" } else { "" };
            let status = self.app.handler(format!("uploadStatus{suffix}"), reads);
            let mut handle: Vec<Stmt> = fields.iter().map(|(v, _)| Stmt::Write(*v)).collect();
            if hidden {
                let relay = self.app.worker(
                    "untracked:relay",
                    vec![Stmt::Post {
                        handler: status,
                        delay: None,
                        front: false,
                    }],
                );
                handle.push(Stmt::ForkWorker(relay));
            }
            let isvc = self.app.intent_service(format!("Uploader{suffix}"), handle);
            self.on_create.push(Stmt::StartIntentService(isvc));
            if !hidden {
                self.on_create.push(Stmt::Post {
                    handler: status,
                    delay: None,
                    front: false,
                });
            }
            for (_, name) in fields {
                self.record(
                    name,
                    RaceCategory::Multithreaded,
                    !hidden,
                    if hidden {
                        "completion is relayed to main by an untracked thread after the write"
                    } else {
                        "serial-executor delivery vs main-thread status read"
                    },
                );
            }
        }
    }

    /// INTENT_SERVICE-automaton negative motif: two intents delivered to the
    /// same serial executor write the same fields. The per-component FIFO
    /// queue orders the deliveries, so the detector must report nothing —
    /// the fields carry no ground truth and any report shows up as an
    /// unplanned race in the oracle suite.
    pub fn serial_executor_handoff(&mut self, fields: usize) {
        let vars: Vec<(Var, String)> = (0..fields).map(|_| self.fresh_field("isvc.safe.f")).collect();
        let body: Vec<Stmt> = vars.iter().map(|(v, _)| Stmt::Write(*v)).collect();
        let isvc = self.app.intent_service("LogWriter", body);
        self.on_create.push(Stmt::StartIntentService(isvc));
        self.on_create.push(Stmt::StartIntentService(isvc));
    }

    /// Broadcast/binder-boundary motif: a network thread sends a broadcast
    /// and keeps mutating its buffers — `onReceive` is cross-posted to main
    /// with no happens-after edge back to the sender's *later* operations.
    /// False positives write first and delegate the send to an `untracked:`
    /// notifier thread, so the receiver really sees completed writes.
    pub fn broadcast_sender_races(&mut self, n_true: usize, n_false: usize) {
        if n_true > 0 {
            let fields: Vec<(Var, String)> =
                (0..n_true).map(|_| self.fresh_field("bc.f")).collect();
            let rec = self.app.receiver(
                "NetReceiver",
                fields.iter().map(|(v, _)| Stmt::Read(*v)).collect(),
            );
            let mut body = vec![Stmt::SendBroadcast(rec)];
            body.extend(fields.iter().map(|(v, _)| Stmt::Write(*v)));
            let w = self.app.worker("net-sender", body);
            self.on_create.push(Stmt::ForkWorker(w));
            for (_, name) in fields {
                self.record(
                    name,
                    RaceCategory::Multithreaded,
                    true,
                    "onReceive has no happens-after edge to the sender's later writes",
                );
            }
        }
        if n_false > 0 {
            let fields: Vec<(Var, String)> =
                (0..n_false).map(|_| self.fresh_field("bc.fp.f")).collect();
            let rec = self.app.receiver(
                "NetReceiverHidden",
                fields.iter().map(|(v, _)| Stmt::Read(*v)).collect(),
            );
            let notifier = self
                .app
                .worker("untracked:notifier", vec![Stmt::SendBroadcast(rec)]);
            let mut body: Vec<Stmt> = fields.iter().map(|(v, _)| Stmt::Write(*v)).collect();
            body.push(Stmt::ForkWorker(notifier));
            let w = self.app.worker("data-writer", body);
            self.on_create.push(Stmt::ForkWorker(w));
            for (_, name) in fields {
                self.record(
                    name,
                    RaceCategory::Multithreaded,
                    false,
                    "the broadcast is sent by an untracked notifier after the writes finish",
                );
            }
        }
    }

    /// Broadcast-vs-UI motif: `onReceive` (binder-posted to main) updates
    /// state that a refresh button's click handler reads — the delivery and
    /// the UI event are unordered. False positives surface the result in an
    /// `untracked:` alert dialog enabled from `onReceive`.
    pub fn broadcast_ui_races(&mut self, n_true: usize, n_false: usize) {
        if n_true > 0 {
            let fields: Vec<(Var, String)> =
                (0..n_true).map(|_| self.fresh_field("bcui.f")).collect();
            let rec = self.app.receiver(
                "StatusReceiver",
                fields.iter().map(|(v, _)| Stmt::Write(*v)).collect(),
            );
            let beacon = self.app.worker("beacon", vec![Stmt::SendBroadcast(rec)]);
            self.on_create.push(Stmt::ForkWorker(beacon));
            let refresh = self.app.button(
                self.act,
                "refreshStatus",
                fields.iter().map(|(v, _)| Stmt::Read(*v)).collect(),
            );
            self.events.push(UiEvent::Widget(refresh, UiEventKind::Click));
            for (_, name) in fields {
                self.record(
                    name,
                    RaceCategory::CrossPosted,
                    true,
                    "binder-posted onReceive vs an independently clicked refresh",
                );
            }
        }
        if n_false > 0 {
            let fields: Vec<(Var, String)> =
                (0..n_false).map(|_| self.fresh_field("bcui.fp.f")).collect();
            let alert = self.app.button(
                self.act,
                "untracked:alertOk",
                fields.iter().map(|(v, _)| Stmt::Read(*v)).collect(),
            );
            self.app.initially_disabled(alert);
            let mut receive: Vec<Stmt> = fields.iter().map(|(v, _)| Stmt::Write(*v)).collect();
            receive.push(Stmt::EnableWidget(alert, UiEventKind::Click));
            let rec = self.app.receiver("AlertReceiver", receive);
            let beacon = self.app.worker("alert-beacon", vec![Stmt::SendBroadcast(rec)]);
            self.on_create.push(Stmt::ForkWorker(beacon));
            self.events.push(UiEvent::Widget(alert, UiEventKind::Click));
            for (_, name) in fields {
                self.record(
                    name,
                    RaceCategory::CrossPosted,
                    false,
                    "the alert can only fire after onReceive enabled it; the \
                     enable is invisible to the tracer",
                );
            }
        }
    }

    /// Rotation/recreate leak motif: `onCreate` starts a thumbnail task; a
    /// ROTATE event tears the activity down and relaunches it. The old
    /// instance's background read races with the destroy/relaunch writes of
    /// the cache field (multi-threaded), and its pending `onPostExecute`
    /// races with the relaunch write of the view field (cross-posted) —
    /// the classic leak-on-rotation. Pushes the [`UiEvent::Rotate`] itself.
    pub fn rotation_leak_races(&mut self) -> (String, String) {
        let (cache, cache_name) = self.fresh_field("leak.cache");
        let (view, view_name) = self.fresh_field("leak.view");
        let at = self.app.async_task(
            "ThumbTask",
            vec![],
            vec![Stmt::Read(cache), Stmt::PublishProgress],
            vec![],
            vec![Stmt::Write(view)],
        );
        self.on_create.insert(0, Stmt::Write(view));
        self.on_create.insert(0, Stmt::Write(cache));
        self.on_create.push(Stmt::ExecuteAsyncTask(at));
        self.on_destroy.push(Stmt::Write(cache));
        self.events.push(UiEvent::Rotate);
        self.record(
            cache_name.clone(),
            RaceCategory::Multithreaded,
            true,
            "old instance's background read vs the destroy/relaunch cache writes",
        );
        self.record(
            view_name.clone(),
            RaceCategory::CrossPosted,
            true,
            "pending onPostExecute vs the relaunched instance's view write",
        );
        (cache_name, view_name)
    }

    /// Rotation false positive: the state saved on teardown is produced by
    /// an `untracked:` saver thread that `onStop` natively joins, so the
    /// `onDestroy` read really happens after the write — but the trace shows
    /// an unsynchronized cross-thread pair.
    pub fn rotation_saved_state_fp(&mut self, n: usize) {
        if n == 0 {
            return;
        }
        let fields: Vec<(Var, String)> = (0..n).map(|_| self.fresh_field("leak.fp.f")).collect();
        let writes: Vec<Stmt> = fields.iter().map(|(v, _)| Stmt::Write(*v)).collect();
        let w = self.app.worker("untracked:state-saver", writes);
        self.on_create.push(Stmt::ForkWorker(w));
        self.on_stop.push(Stmt::JoinWorker(w));
        self.on_destroy
            .extend(fields.iter().map(|(v, _)| Stmt::Read(*v)));
        for (_, name) in fields {
            self.record(
                name,
                RaceCategory::Multithreaded,
                false,
                "onStop natively joins the state saver before onDestroy reads",
            );
        }
    }

    /// Finalizes: installs the accumulated `onCreate` body and returns the
    /// app, the event sequence and the ground truth.
    pub fn finish(mut self) -> (App, Vec<UiEvent>, GroundTruth) {
        let on_create = std::mem::take(&mut self.on_create);
        self.app.on_create(self.act, on_create);
        if !self.on_stop.is_empty() {
            let on_stop = std::mem::take(&mut self.on_stop);
            self.app.on_stop(self.act, on_stop);
        }
        if !self.on_destroy.is_empty() {
            let on_destroy = std::mem::take(&mut self.on_destroy);
            self.app.on_destroy(self.act, on_destroy);
        }
        (self.app.finish(), self.events, self.truth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn motif_builder_accumulates_truth() {
        let mut m = MotifBuilder::new("Test", "Main");
        m.mt_races(2, 1);
        m.co_enabled_races(1, 0);
        let (_, events, truth) = m.finish();
        assert_eq!(truth.len(), 4);
        assert_eq!(
            truth.values().filter(|t| t.is_true).count(),
            3,
            "two true mt + one true co-enabled"
        );
        assert_eq!(events.len(), 2, "two clicks for the co-enabled motif");
    }

    #[test]
    fn field_names_are_unique() {
        let mut m = MotifBuilder::new("Test", "Main");
        m.filler(10, 1);
        m.mt_races(3, 3);
        m.cross_posted_races(4, 4);
        let (app, _, truth) = m.finish();
        let _ = app;
        // All truth keys are distinct by construction of BTreeMap; check the
        // counter actually advanced past filler fields.
        assert!(truth.keys().all(|k| k.contains(".f")));
        assert_eq!(truth.len(), 14);
    }

    #[test]
    fn lifecycle_motif_registers_flag() {
        let mut m = MotifBuilder::new("Test", "Main");
        let name = m.lifecycle_flag_race(true);
        let (_, events, truth) = m.finish();
        assert!(truth.contains_key(&name));
        assert!(matches!(events.last(), Some(UiEvent::Back)));
    }
}
