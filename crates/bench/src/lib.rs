//! Shared rendering helpers for the benchmark harness binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation, printing paper-reported numbers next to measured
//! ones. See DESIGN.md's experiment index (E1–E7) for the mapping.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;

/// A simple fixed-width text table.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Display>(header: impl IntoIterator<Item = S>) -> Self {
        TextTable {
            header: header.into_iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row<S: Display>(&mut self, cells: impl IntoIterator<Item = S>) {
        self.rows.push(cells.into_iter().map(|s| s.to_string()).collect());
    }

    /// Appends a horizontal rule (rendered as dashes).
    pub fn rule(&mut self) {
        self.rows.push(Vec::new());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for row in std::iter::once(&self.header).chain(self.rows.iter()) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |row: &[String], out: &mut String| {
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                if i == 0 {
                    out.push_str(&format!("{cell:<w$}"));
                } else {
                    out.push_str(&format!("  {cell:>w$}"));
                }
            }
            out.push('\n');
        };
        render_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            if row.is_empty() {
                out.push_str(&"-".repeat(total));
                out.push('\n');
            } else {
                render_row(row, &mut out);
            }
        }
        out
    }
}

/// Formats `measured` next to the paper's number as `measured (paper)`.
pub fn vs(measured: impl Display, paper: impl Display) -> String {
    format!("{measured} ({paper})")
}

/// Formats the Table 3 `X(Y)` cell.
pub fn xy(x: usize, y: usize) -> String {
    format!("{x}({y})")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new(["App", "Len"]);
        t.row(["Aard", "1355"]);
        t.rule();
        t.row(["Flipkart", "157539"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("App"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].chars().all(|c| c == '-'));
        assert!(lines[2].ends_with("1355"));
    }

    #[test]
    fn helpers_format() {
        assert_eq!(vs(10, 12), "10 (12)");
        assert_eq!(xy(17, 4), "17(4)");
    }
}
