//! Experiment E3 — the performance numbers reported in §6 prose:
//!
//! * the node-merging optimization reduces graph nodes to 1.4%–24.8% of the
//!   trace length (average 11.1%) — e.g. Flipkart's 157K-op trace becomes a
//!   2.2K-node graph;
//! * race detection takes "a few seconds to a few hours" and up to 20 MB.
//!
//! Run with `cargo run --release -p droidracer-bench --bin perf_table`.

use std::time::Instant;

use droidracer_apps::corpus;
use droidracer_bench::{engine_stats_table, maybe_export_profile, TextTable};
use droidracer_core::{analyze_all_profiled, default_threads, par_map, HappensBefore, HbConfig};
use droidracer_obs::MetricsRegistry;
use droidracer_trace::Trace;

/// Rough memory footprint of the closed relation: two N×N bit matrices.
fn relation_bytes(nodes: usize) -> usize {
    2 * nodes * nodes.div_ceil(64) * 8
}

fn mb(bytes: usize) -> String {
    format!("{:.2} MB", bytes as f64 / (1024.0 * 1024.0))
}

fn main() {
    let mut table = TextTable::new([
        "Application",
        "Trace len",
        "Graph nodes",
        "Reduction",
        "HB rounds",
        "Analysis time",
        "Relation mem",
    ]);
    println!("Performance of the Race Detector (§6 prose)");
    println!("paper: nodes reduced to 1.4%–24.8% of trace length (avg 11.1%), ≤20 MB\n");
    let mut ratios = Vec::new();
    // Generate and analyze the corpus on the parallel pipeline; results
    // arrive in corpus order. Per-entry analysis time comes from the
    // analysis' own stage timing, so it stays meaningful under fan-out.
    let entries = corpus();
    let generated = par_map(&entries, default_threads(), |entry| entry.generate_trace());
    let mut traces: Vec<(&'static str, Trace)> = Vec::new();
    for (entry, trace) in entries.iter().zip(generated) {
        match trace {
            Ok(t) => traces.push((entry.name, t)),
            Err(e) => eprintln!("{}: {e}", entry.name),
        }
    }
    let plain_traces: Vec<Trace> = traces.iter().map(|(_, t)| t.clone()).collect();
    let (analyses, span) = analyze_all_profiled(&plain_traces, default_threads(), HbConfig::new());
    let mut registry = MetricsRegistry::new();
    for analysis in &analyses {
        registry.absorb(&analysis.metrics());
    }
    for ((name, trace), analysis) in traces.iter().zip(&analyses) {
        let graph = analysis.hb().graph();
        let ratio = graph.reduction_ratio();
        ratios.push(ratio);
        table.row([
            (*name).to_owned(),
            trace.len().to_string(),
            graph.node_count().to_string(),
            format!("{:.1}%", ratio * 100.0),
            analysis.hb().rounds().to_string(),
            format!("{:.0} ms", analysis.timing().total().as_secs_f64() * 1000.0),
            mb(relation_bytes(graph.node_count())),
        ]);
    }
    println!("{}", table.render());

    println!("Happens-before engine hot-path counters:");
    let stats_rows: Vec<(&str, _)> = traces
        .iter()
        .zip(&analyses)
        .map(|((name, _), analysis)| (*name, analysis.hb().stats()))
        .collect();
    println!(
        "{}",
        engine_stats_table(stats_rows.iter().map(|&(n, s)| (n, s))).render()
    );
    let avg = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
    let (lo, hi) = ratios.iter().fold((f64::MAX, 0.0f64), |(lo, hi), &r| {
        (lo.min(r), hi.max(r))
    });
    println!(
        "Node reduction: {:.1}%–{:.1}%, avg {:.1}%   (paper: 1.4%–24.8%, avg 11.1%)\n",
        lo * 100.0,
        hi * 100.0,
        avg * 100.0
    );

    // Merged vs unmerged comparison: the optimization's effect on analysis
    // time and memory without precision loss. Picks the largest trace that
    // stays tractable unmerged (an unmerged N-op trace needs two N×N bit
    // matrices — the whole point of the optimization).
    if let Some((name, trace)) = traces
        .iter()
        .filter(|(_, t)| t.len() <= 8_000)
        .max_by_key(|(_, t)| t.len())
    {
        println!("Merged vs unmerged graph on {name} ({} ops):", trace.len());
        for (label, config) in [
            ("merged  ", HbConfig::new()),
            ("unmerged", HbConfig::new().without_merging()),
        ] {
            let start = Instant::now();
            let hb = HappensBefore::compute(trace, config);
            let elapsed = start.elapsed();
            println!(
                "  {label}: {:>7} nodes, {:>8.0} ms, {}",
                hb.graph().node_count(),
                elapsed.as_secs_f64() * 1000.0,
                mb(relation_bytes(hb.graph().node_count())),
            );
        }
    }
    maybe_export_profile(&span, &registry);
}
