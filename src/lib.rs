//! # droidracer
//!
//! A Rust reproduction of *Race Detection for Android Applications*
//! (Maiya, Kanade, Majumdar — PLDI 2014): the Android concurrency
//! semantics, the combined happens-before relation for multi-threaded
//! event-driven programs, and the DroidRacer race detection pipeline
//! (UI Explorer → Trace Generator → Race Detector).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`trace`] — the core concurrency language (Table 1), execution traces,
//!   the Figure 5 semantics checker, trace statistics and serialization;
//! * [`sim`] — a deterministic interpreter for the concurrency semantics
//!   with pluggable schedulers and exact replay;
//! * [`framework`] — the Android runtime model: activity lifecycles
//!   (Figure 8), `ActivityManagerService`/binder, `AsyncTask`,
//!   `Handler`/`Looper`, services, receivers and the UI;
//! * [`explorer`] — systematic depth-first UI event exploration with a
//!   replay database;
//! * [`core`] — the paper's contribution: the `≺st ∪ ≺mt` happens-before
//!   relation (Figures 6–7), graph-based race detection with node merging,
//!   race classification, and the baseline relations of §4.1;
//! * [`apps`] — the synthetic 15-application corpus of the evaluation with
//!   planted, ground-truthed races;
//! * [`obs`] — structured observability: hierarchical span timers, a
//!   metrics registry, and exporters (span-tree text, Chrome
//!   `trace_event` JSON);
//! * [`fuzz`] — coverage-guided differential fuzzing of the engine with
//!   schedule-replay race witnessing and input shrinking;
//! * [`server`] — a sharded multi-tenant analysis daemon and its client,
//!   speaking a length-prefixed framed protocol over TCP or Unix sockets,
//!   with a content-addressed result cache and per-tenant isolation.
//!
//! Cross-stage failures unify into [`Error`].
//!
//! # Quick start
//!
//! ```
//! use droidracer::framework::{compile, AppBuilder, Stmt, UiEvent, UiEventKind};
//! use droidracer::sim::{run, RandomScheduler, SimConfig};
//! use droidracer::core::AnalysisBuilder;
//!
//! // An activity whose background loader races with a button handler.
//! let mut b = AppBuilder::new("Quickstart");
//! let act = b.activity("MainActivity");
//! let state = b.var("MainActivity-obj", "loadedState");
//! let loader = b.worker("loader", vec![Stmt::Write(state)]);
//! b.on_create(act, vec![Stmt::ForkWorker(loader)]);
//! let show = b.button(act, "show", vec![Stmt::Read(state)]);
//!
//! let compiled = compile(&b.finish(), &[UiEvent::Widget(show, UiEventKind::Click)])?;
//! let result = run(&compiled.program, &mut RandomScheduler::new(7), &SimConfig::default())?;
//! let analysis = AnalysisBuilder::new().analyze(&result.trace)?;
//! assert_eq!(analysis.races().len(), 1);
//! println!("{}", analysis.render());
//! # Ok::<(), droidracer::Error>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;

pub use droidracer_apps as apps;
pub use droidracer_core as core;
pub use droidracer_explorer as explorer;
pub use droidracer_framework as framework;
pub use droidracer_fuzz as fuzz;
pub use droidracer_obs as obs;
pub use droidracer_server as server;
pub use droidracer_sim as sim;
pub use droidracer_trace as trace;
pub use error::Error;
