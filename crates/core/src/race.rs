//! Data race detection over a computed happens-before relation (§4.3).

use std::collections::HashMap;
use std::fmt;

use droidracer_trace::{MemLoc, Op, OpKind, Trace};

use crate::engine::HappensBefore;
use crate::graph::NodeId;

/// The access pattern of a race.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RaceKind {
    /// Both operations write.
    WriteWrite,
    /// The earlier operation writes, the later reads.
    WriteRead,
    /// The earlier operation reads, the later writes.
    ReadWrite,
}

impl fmt::Display for RaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RaceKind::WriteWrite => "write-write",
            RaceKind::WriteRead => "write-read",
            RaceKind::ReadWrite => "read-write",
        };
        f.write_str(s)
    }
}

/// A detected data race: two conflicting operations with no happens-before
/// ordering between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Race {
    /// Trace index of the earlier operation.
    pub first: usize,
    /// Trace index of the later operation.
    pub second: usize,
    /// The memory location both access.
    pub loc: MemLoc,
    /// Which of the two operations write.
    pub kind: RaceKind,
}

/// The earliest read and write a single access block performs on one
/// location — enough to pick a race witness without retaining every access.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct BlockAccesses {
    pub(crate) first_read: Option<usize>,
    pub(crate) first_write: Option<usize>,
}

/// Finds all data races in `trace` under the relation `hb`.
///
/// Races are reported at the granularity of graph-node pairs: for each
/// memory location and each unordered pair of access blocks touching it with
/// at least one write, one representative [`Race`] is produced (preferring a
/// write-write witness). Reporting per block pair rather than per operation
/// pair loses nothing: all operations of a block share the same orderings.
pub fn find_races(trace: &Trace, hb: &HappensBefore) -> Vec<Race> {
    find_races_with(trace.ops(), |i| hb.graph().node_of(i), |a, b| {
        hb.ordered_nodes(a, b)
    })
}

/// Generic detection core: the same scan as [`find_races`] over any node
/// assignment and node-level ordering predicate. The streaming engine reuses
/// it at `finish()` with its own incremental graph and column-oriented
/// relation, so batch and streamed detection share one implementation.
pub(crate) fn find_races_with(
    ops: &[Op],
    node_of: impl Fn(usize) -> NodeId,
    ordered_nodes: impl Fn(NodeId, NodeId) -> bool,
) -> Vec<Race> {
    // location -> (node -> accesses)
    let mut per_loc: HashMap<MemLoc, Vec<(NodeId, BlockAccesses)>> = HashMap::new();
    let mut slot: HashMap<(MemLoc, NodeId), usize> = HashMap::new();
    for (i, op) in ops.iter().copied().enumerate() {
        let (loc, is_write) = match op.kind {
            OpKind::Read { loc } => (loc, false),
            OpKind::Write { loc } => (loc, true),
            _ => continue,
        };
        let node = node_of(i);
        let blocks = per_loc.entry(loc).or_default();
        let idx = *slot.entry((loc, node)).or_insert_with(|| {
            blocks.push((node, BlockAccesses::default()));
            blocks.len() - 1
        });
        let acc = &mut blocks[idx].1;
        let slot_ref = if is_write {
            &mut acc.first_write
        } else {
            &mut acc.first_read
        };
        if slot_ref.is_none() {
            *slot_ref = Some(i);
        }
    }
    let mut races = Vec::new();
    for (loc, blocks) in &per_loc {
        for (i, (node_a, acc_a)) in blocks.iter().enumerate() {
            for (node_b, acc_b) in &blocks[i + 1..] {
                debug_assert_ne!(node_a, node_b);
                if ordered_nodes(*node_a, *node_b) || ordered_nodes(*node_b, *node_a) {
                    continue;
                }
                let Some(witness) = pick_witness(acc_a, acc_b) else {
                    continue;
                };
                let (first, second) = (witness.0.min(witness.1), witness.0.max(witness.1));
                let kind = match (ops[first].kind.is_write(), ops[second].kind.is_write()) {
                    (true, true) => RaceKind::WriteWrite,
                    (true, false) => RaceKind::WriteRead,
                    (false, true) => RaceKind::ReadWrite,
                    (false, false) => unreachable!("a race witness has at least one write"),
                };
                races.push(Race {
                    first,
                    second,
                    loc: *loc,
                    kind,
                });
            }
        }
    }
    // Deterministic output order: by location then positions.
    races.sort_by_key(|r| (r.loc, r.first, r.second));
    races
}

/// Picks a conflicting `(op_a, op_b)` pair across two blocks, preferring a
/// write-write witness. Returns `None` when neither block writes.
pub(crate) fn pick_witness(a: &BlockAccesses, b: &BlockAccesses) -> Option<(usize, usize)> {
    match (a.first_write, b.first_write) {
        (Some(wa), Some(wb)) => Some((wa, wb)),
        (Some(wa), None) => b.first_read.map(|rb| (wa, rb)),
        (None, Some(wb)) => a.first_read.map(|ra| (ra, wb)),
        (None, None) => None,
    }
}

/// Alias of [`find_races`], kept as the primary entry point name.
pub fn detect(trace: &Trace, hb: &HappensBefore) -> Vec<Race> {
    find_races(trace, hb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::HbConfig;
    use droidracer_trace::{ThreadKind, TraceBuilder};

    fn analyze(trace: &Trace) -> Vec<Race> {
        let hb = HappensBefore::compute(trace, HbConfig::new());
        detect(trace, &hb)
    }

    #[test]
    fn unsynchronized_cross_thread_accesses_race() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg = b.thread("bg", ThreadKind::App, false);
        let loc = b.loc("o", "C.f");
        b.thread_init(main); // 0
        b.fork(main, bg); // 1
        b.thread_init(bg); // 2
        b.write(bg, loc); // 3
        b.read(main, loc); // 4
        let trace = b.finish();
        let races = analyze(&trace);
        assert_eq!(races.len(), 1);
        let r = races[0];
        assert_eq!((r.first, r.second), (3, 4));
        assert_eq!(r.kind, RaceKind::WriteRead);
        assert_eq!(r.loc, loc);
    }

    #[test]
    fn fork_synchronized_accesses_do_not_race() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg = b.thread("bg", ThreadKind::App, false);
        let loc = b.loc("o", "C.f");
        b.thread_init(main);
        b.write(main, loc); // before fork
        b.fork(main, bg);
        b.thread_init(bg);
        b.read(bg, loc);
        let trace = b.finish();
        assert!(analyze(&trace).is_empty());
    }

    #[test]
    fn read_read_is_not_a_race() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg = b.thread("bg", ThreadKind::App, false);
        let loc = b.loc("o", "C.f");
        b.thread_init(main);
        b.fork(main, bg);
        b.thread_init(bg);
        b.read(bg, loc);
        b.read(main, loc);
        let trace = b.finish();
        assert!(analyze(&trace).is_empty());
    }

    #[test]
    fn write_write_witness_is_preferred() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg = b.thread("bg", ThreadKind::App, false);
        let loc = b.loc("o", "C.f");
        b.thread_init(main); // 0
        b.fork(main, bg); // 1
        b.thread_init(bg); // 2
        b.read(bg, loc); // 3 ┐ block
        b.write(bg, loc); // 4 ┘
        b.read(main, loc); // 5 ┐ block
        b.write(main, loc); // 6 ┘
        let trace = b.finish();
        let races = analyze(&trace);
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].kind, RaceKind::WriteWrite);
        assert_eq!((races[0].first, races[0].second), (4, 6));
    }

    #[test]
    fn distinct_locations_are_independent() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg = b.thread("bg", ThreadKind::App, false);
        let loc1 = b.loc("o1", "C.f");
        let loc2 = b.loc("o2", "C.f"); // same field, other object
        b.thread_init(main);
        b.fork(main, bg);
        b.thread_init(bg);
        b.write(bg, loc1);
        b.write(bg, loc2);
        b.write(main, loc1);
        b.write(main, loc2);
        let trace = b.finish();
        let races = analyze(&trace);
        // Races on the same field of different objects are separate reports
        // (as in the paper).
        assert_eq!(races.len(), 2);
        let locs: Vec<MemLoc> = races.iter().map(|r| r.loc).collect();
        assert!(locs.contains(&loc1) && locs.contains(&loc2));
    }

    #[test]
    fn single_threaded_task_race_is_found() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg1 = b.thread("bg1", ThreadKind::App, true);
        let bg2 = b.thread("bg2", ThreadKind::App, true);
        let t1 = b.task("A");
        let t2 = b.task("B");
        let loc = b.loc("o", "C.f");
        b.thread_init(main);
        b.attach_q(main);
        b.loop_on_q(main);
        b.thread_init(bg1);
        b.thread_init(bg2);
        b.post(bg1, t1, main); // unordered posts
        b.post(bg2, t2, main);
        b.begin(main, t1);
        b.write(main, loc);
        b.end(main, t1);
        b.begin(main, t2);
        b.write(main, loc);
        b.end(main, t2);
        let trace = b.finish();
        let races = analyze(&trace);
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].kind, RaceKind::WriteWrite);
    }

    #[test]
    fn detection_results_are_deterministic() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg = b.thread("bg", ThreadKind::App, false);
        let loc1 = b.loc("o1", "C.f");
        let loc2 = b.loc("o2", "C.g");
        b.thread_init(main);
        b.fork(main, bg);
        b.thread_init(bg);
        b.write(bg, loc2);
        b.write(bg, loc1);
        b.write(main, loc1);
        b.write(main, loc2);
        let trace = b.finish();
        let a = analyze(&trace);
        let b2 = analyze(&trace);
        assert_eq!(a, b2);
        assert_eq!(a.len(), 2);
        assert!(a[0].loc < a[1].loc);
    }
}
