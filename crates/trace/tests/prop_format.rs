//! Property tests for the trace crate: the text format round-trips
//! arbitrary (even infeasible) traces, and derived structures behave.

use proptest::prelude::*;

use droidracer_trace::{
    from_text, to_text, EventId, FieldId, LockId, MemLoc, ObjectId, Op, OpKind, PostKind, TaskId,
    ThreadId, ThreadKind, TraceBuilder, TraceStats,
};

/// Strategy for an arbitrary operation over small id spaces.
fn arb_op() -> impl Strategy<Value = Op> {
    let thread = (0u32..4).prop_map(ThreadId);
    let task = (0u32..6).prop_map(TaskId);
    let lock = (0u32..3).prop_map(LockId);
    let loc = ((0u32..3), (0u32..4))
        .prop_map(|(o, f)| MemLoc::new(ObjectId(o), FieldId(f)));
    let kind = prop_oneof![
        Just(OpKind::ThreadInit),
        Just(OpKind::ThreadExit),
        (0u32..4).prop_map(|t| OpKind::Fork { child: ThreadId(t) }),
        (0u32..4).prop_map(|t| OpKind::Join { child: ThreadId(t) }),
        Just(OpKind::AttachQ),
        Just(OpKind::LoopOnQ),
        (task.clone(), (0u32..4), prop_oneof![
            Just(PostKind::Plain),
            (1u64..1000).prop_map(PostKind::Delayed),
            Just(PostKind::Front),
        ], proptest::option::of((0u32..3).prop_map(EventId)))
            .prop_map(|(task, target, kind, event)| OpKind::Post {
                task,
                target: ThreadId(target),
                kind,
                event,
            }),
        task.clone().prop_map(|task| OpKind::Begin { task }),
        task.clone().prop_map(|task| OpKind::End { task }),
        task.clone().prop_map(|task| OpKind::Cancel { task }),
        lock.clone().prop_map(|lock| OpKind::Acquire { lock }),
        lock.prop_map(|lock| OpKind::Release { lock }),
        loc.clone().prop_map(|loc| OpKind::Read { loc }),
        loc.prop_map(|loc| OpKind::Write { loc }),
        task.prop_map(|task| OpKind::Enable { task }),
    ];
    (thread, kind).prop_map(|(thread, kind)| Op::new(thread, kind))
}

fn arb_name() -> impl Strategy<Value = String> {
    // Names including the quoting-sensitive characters.
    proptest::string::string_regex("[a-zA-Z0-9 .#:\"\\\\_-]{0,12}").expect("valid regex")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The text format round-trips any op sequence with any names.
    #[test]
    fn format_roundtrips_arbitrary_traces(
        ops in proptest::collection::vec(arb_op(), 0..60),
        thread_names in proptest::collection::vec(arb_name(), 4),
        task_names in proptest::collection::vec(arb_name(), 6),
    ) {
        let mut b = TraceBuilder::new();
        for (i, name) in thread_names.iter().enumerate() {
            b.thread(
                name.clone(),
                if i == 0 { ThreadKind::Main } else { ThreadKind::App },
                i < 2,
            );
        }
        for name in &task_names {
            b.task(name.clone());
        }
        // Declare the id spaces the ops reference.
        for i in 0..3 {
            b.lock(format!("lock{i}"));
        }
        for i in 0..3 {
            b.event(format!("event{i}"));
        }
        for i in 0..3 {
            let _ = b.loc(format!("obj{i}"), "F.f0");
        }
        for i in 1..4 {
            // Remaining fields referenced by MemLoc field ids 1..4.
            let _ = b.field_of(ObjectId(0), format!("F.f{i}"));
        }
        for op in &ops {
            b.push(*op);
        }
        let trace = b.finish();
        let text = to_text(&trace);
        let back = from_text(&text).expect("round-trip parses");
        prop_assert_eq!(back.ops(), trace.ops());
        for i in 0..4u32 {
            prop_assert_eq!(
                back.names().thread_name(ThreadId(i)),
                trace.names().thread_name(ThreadId(i))
            );
        }
        for i in 0..6u32 {
            prop_assert_eq!(
                back.names().task_name(TaskId(i)),
                trace.names().task_name(TaskId(i))
            );
        }
    }

    /// Statistics are insensitive to serialization.
    #[test]
    fn stats_survive_roundtrip(ops in proptest::collection::vec(arb_op(), 0..60)) {
        let mut b = TraceBuilder::new();
        for i in 0..4 {
            b.thread(format!("t{i}"), ThreadKind::App, true);
        }
        for i in 0..6 {
            b.task(format!("p{i}"));
        }
        for i in 0..3 {
            b.lock(format!("l{i}"));
            b.event(format!("e{i}"));
            let _ = b.loc(format!("o{i}"), format!("C.f{i}"));
        }
        for i in 0..4 {
            let _ = b.field_of(ObjectId(0), format!("C.g{i}"));
        }
        for op in &ops {
            b.push(*op);
        }
        let trace = b.finish();
        let back = from_text(&to_text(&trace)).expect("parses");
        prop_assert_eq!(TraceStats::of(&back), TraceStats::of(&trace));
    }

    /// The task index never assigns ops to tasks outside begin/end windows
    /// on their own thread. (Arbitrary op soups may "begin" one task on
    /// several threads, which unique renaming forbids in real traces; the
    /// index contract is per-thread, so the check is too.)
    #[test]
    fn task_index_is_consistent(ops in proptest::collection::vec(arb_op(), 0..80)) {
        let mut b = TraceBuilder::new();
        for i in 0..4 {
            b.thread(format!("t{i}"), ThreadKind::App, true);
        }
        for i in 0..6 {
            b.task(format!("p{i}"));
        }
        for i in 0..3 {
            b.lock(format!("l{i}"));
            let _ = b.loc(format!("o{i}"), format!("C.f{i}"));
        }
        for op in &ops {
            b.push(*op);
        }
        let trace = b.finish();
        let index = trace.index();
        for (i, op) in trace.iter() {
            if let Some(task) = index.task_of(i) {
                if matches!(op.kind, OpKind::Begin { .. } | OpKind::End { .. }) {
                    continue;
                }
                // Some earlier Begin of this task ran on this op's thread,
                // with no intervening End of it on the same thread.
                let mut open = false;
                for j in 0..=i {
                    let prior = trace.op(j);
                    if prior.thread != op.thread {
                        continue;
                    }
                    match prior.kind {
                        OpKind::Begin { task: t } if t == task => open = true,
                        OpKind::Begin { .. } => open = false,
                        OpKind::End { .. } => open = false,
                        _ => {}
                    }
                }
                prop_assert!(open, "op {} attributed to {} without an open begin", i, task);
            }
        }
    }
}
