//! Rule configuration for the happens-before engine.
//!
//! The engine derives the paper's relation `≺ = ≺st ∪ ≺mt` from the rules of
//! Figures 6 and 7. Each rule can be toggled individually, and §4.1's
//! "Specializations" paragraph — obtaining the relations for single-threaded
//! event-driven programs and for plain multi-threaded programs — corresponds
//! to the [`HbMode`] presets used as baselines in the evaluation.

/// Fine-grained switches for the individual happens-before rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleSet {
    /// NO-Q-PO: program order on threads before (or without) `loopOnQ`.
    pub no_q_po: bool,
    /// ASYNC-PO: program order within a single asynchronous task.
    pub async_po: bool,
    /// ENABLE-ST / ENABLE-MT: `enable(p) ≺ post(p)`.
    pub enable: bool,
    /// POST-ST / POST-MT: `post(p) ≺ begin(p)`.
    pub post: bool,
    /// ATTACH-Q-MT: `attachQ(t) ≺ post(_, _, t)` from another thread.
    pub attach_q: bool,
    /// FIFO: same-target tasks whose posts are ordered run in order.
    pub fifo: bool,
    /// NOPRE: run-to-completion — a task whose body reaches the post of a
    /// later same-thread task finishes before that task begins.
    pub nopre: bool,
    /// FORK: `fork(t, t') ≺ threadinit(t')`.
    pub fork: bool,
    /// JOIN: `threadexit(t') ≺ join(t, t')`.
    pub join: bool,
    /// LOCK: `release(t, l) ≺ acquire(t', l)` for `t ≠ t'`.
    pub lock: bool,
    /// Whether transitivity is restricted as in the paper (TRANS-ST closes
    /// `≺st` only; TRANS-MT yields orderings only between operations on
    /// *different* threads). When `false` the engine computes the naive
    /// transitive closure of the union of all base edges — the flawed
    /// combination the introduction warns about.
    pub restricted_transitivity: bool,
    /// Derive `release ≺ acquire` even between two tasks on the *same*
    /// thread (only meaningful in the naive combination; the paper's LOCK
    /// rule requires distinct threads precisely to avoid this spurious
    /// ordering).
    pub same_thread_lock: bool,
    /// Treat the whole thread as program-ordered even after `loopOnQ`
    /// (the classic multi-threaded view that ignores task boundaries).
    pub whole_thread_program_order: bool,
    /// Apply the §4.2 refinement of FIFO for delayed posts (a delayed post
    /// never blocks a non-delayed one; two delayed posts order by timeout).
    /// When `false`, FIFO treats every post as plain.
    pub delayed_fifo: bool,
}

impl RuleSet {
    /// The full rule set of the paper (Figures 6 and 7 plus the §4.2
    /// task-management refinements).
    pub fn full() -> Self {
        RuleSet {
            no_q_po: true,
            async_po: true,
            enable: true,
            post: true,
            attach_q: true,
            fifo: true,
            nopre: true,
            fork: true,
            join: true,
            lock: true,
            restricted_transitivity: true,
            same_thread_lock: false,
            whole_thread_program_order: false,
            delayed_fifo: true,
        }
    }
}

impl Default for RuleSet {
    fn default() -> Self {
        RuleSet::full()
    }
}

/// Preset happens-before relations: the paper's relation plus the baseline
/// specializations it is compared against (§4.1 "Specializations", §7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HbMode {
    /// The paper's combined relation (DroidRacer).
    #[default]
    Full,
    /// Classic multi-threaded happens-before: whole-thread program order,
    /// fork/join/lock edges, no knowledge of asynchronous dispatch. Misses
    /// every single-threaded race (§7: analyses for multi-threaded programs
    /// "filter away races among procedures running on the same thread").
    MultithreadedOnly,
    /// Single-threaded event-driven happens-before (Raychev et al. style):
    /// only the thread-local rules, no inter-thread edges. Produces false
    /// positives wherever real synchronization crosses threads.
    AsyncOnly,
    /// The naive combination the introduction warns about: all rules plus
    /// lock edges between same-thread tasks and unrestricted transitivity,
    /// which spuriously orders two tasks on one thread that use one lock.
    NaiveCombined,
    /// Asynchronous calls simulated as additional threads (§7: "do not scale
    /// or produce many false positives, if asynchronous calls are simulated
    /// through additional threads"): posts become forks, but FIFO and
    /// run-to-completion orderings are lost.
    EventsAsThreads,
}

impl HbMode {
    /// The rule set implementing this mode.
    pub fn rule_set(self) -> RuleSet {
        let full = RuleSet::full();
        match self {
            HbMode::Full => full,
            HbMode::MultithreadedOnly => RuleSet {
                async_po: false,
                enable: false,
                post: false,
                attach_q: false,
                fifo: false,
                nopre: false,
                whole_thread_program_order: true,
                restricted_transitivity: false,
                ..full
            },
            HbMode::AsyncOnly => RuleSet {
                attach_q: false,
                fork: false,
                join: false,
                lock: false,
                ..full
            },
            HbMode::NaiveCombined => RuleSet {
                restricted_transitivity: false,
                same_thread_lock: true,
                ..full
            },
            HbMode::EventsAsThreads => RuleSet {
                enable: false,
                attach_q: false,
                fifo: false,
                nopre: false,
                restricted_transitivity: false,
                ..full
            },
        }
    }

    /// All modes, for ablation sweeps.
    pub fn all() -> [HbMode; 5] {
        [
            HbMode::Full,
            HbMode::MultithreadedOnly,
            HbMode::AsyncOnly,
            HbMode::NaiveCombined,
            HbMode::EventsAsThreads,
        ]
    }

    /// Short display label for tables.
    pub fn label(self) -> &'static str {
        match self {
            HbMode::Full => "droidracer",
            HbMode::MultithreadedOnly => "mt-only",
            HbMode::AsyncOnly => "async-only",
            HbMode::NaiveCombined => "naive-combined",
            HbMode::EventsAsThreads => "events-as-threads",
        }
    }
}

impl std::fmt::Display for HbMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Configuration for one happens-before computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HbConfig {
    /// Which rules to apply.
    pub rules: RuleSet,
    /// Whether to merge contiguous accesses into block nodes (the §6
    /// optimization). Merging preserves the reported races exactly.
    pub merge_accesses: bool,
}

impl HbConfig {
    /// The paper's configuration: full rules with node merging.
    pub fn new() -> Self {
        HbConfig {
            rules: RuleSet::full(),
            merge_accesses: true,
        }
    }

    /// Configuration for a preset mode.
    pub fn for_mode(mode: HbMode) -> Self {
        HbConfig {
            rules: mode.rule_set(),
            merge_accesses: true,
        }
    }

    /// Disables node merging (used by tests and the E3 bench).
    pub fn without_merging(mut self) -> Self {
        self.merge_accesses = false;
        self
    }
}

impl Default for HbConfig {
    fn default() -> Self {
        HbConfig::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_mode_enables_everything() {
        let r = HbMode::Full.rule_set();
        assert!(r.fifo && r.nopre && r.lock && r.restricted_transitivity);
        assert!(!r.same_thread_lock && !r.whole_thread_program_order);
    }

    #[test]
    fn mt_only_drops_async_rules() {
        let r = HbMode::MultithreadedOnly.rule_set();
        assert!(!r.fifo && !r.nopre && !r.post && !r.enable);
        assert!(r.fork && r.join && r.lock);
        assert!(r.whole_thread_program_order);
    }

    #[test]
    fn async_only_drops_inter_thread_rules() {
        let r = HbMode::AsyncOnly.rule_set();
        assert!(!r.fork && !r.join && !r.lock && !r.attach_q);
        assert!(r.fifo && r.nopre && r.enable && r.post);
    }

    #[test]
    fn naive_combined_relaxes_transitivity_and_locks() {
        let r = HbMode::NaiveCombined.rule_set();
        assert!(!r.restricted_transitivity);
        assert!(r.same_thread_lock);
        assert!(r.fifo && r.nopre);
    }

    #[test]
    fn events_as_threads_keeps_posts_but_not_fifo() {
        let r = HbMode::EventsAsThreads.rule_set();
        assert!(r.post && r.fork);
        assert!(!r.fifo && !r.nopre && !r.enable);
    }

    #[test]
    fn mode_labels_are_distinct() {
        let labels: Vec<&str> = HbMode::all().iter().map(|m| m.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }
}
