//! An executable model of the Android runtime environment.
//!
//! This crate substitutes for the Android framework that DroidRacer
//! instruments: it models the concepts the paper's analysis depends on —
//! activity lifecycles (Figure 8), `ActivityManagerService` acting through a
//! binder thread, `AsyncTask`, `Handler`/`Looper` posting (including
//! `HandlerThread` loopers), services, broadcast receivers and the UI — and
//! compiles an application description plus a UI event sequence down to a
//! [`droidracer_sim::Program`] whose traces exercise exactly the operation
//! patterns the real framework produces.
//!
//! * [`AppBuilder`] / [`App`] — describe an application in the [`Stmt`]
//!   language;
//! * [`UiEvent`] / [`UiState`] — the event alphabet and abstract screen
//!   state used by the explorer;
//! * [`compile`] — lower to a runnable simulator program;
//! * [`lifecycle`] — the Figure 8 activity lifecycle automaton;
//! * [`dsl`] — the declarative automaton DSL covering every component
//!   surface (Activity, Service, Fragment, IntentService, Receiver).
//!
//! # Examples
//!
//! ```
//! use droidracer_framework::{compile, AppBuilder, Stmt, UiEvent, UiEventKind};
//! use droidracer_sim::{run, RandomScheduler, SimConfig};
//! use droidracer_trace::validate;
//!
//! let mut b = AppBuilder::new("Example");
//! let act = b.activity("MainActivity");
//! let counter = b.var("MainActivity-obj", "clickCount");
//! let btn = b.button(act, "inc", vec![Stmt::Write(counter)]);
//! let app = b.finish();
//!
//! let compiled = compile(&app, &[UiEvent::Widget(btn, UiEventKind::Click)])?;
//! let result = run(&compiled.program, &mut RandomScheduler::new(1), &SimConfig::default())?;
//! assert!(result.completed);
//! validate(&result.trace)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod app;
mod compile;
pub mod dsl;
pub mod lifecycle;
mod ui;

pub use app::{
    ActivityId, App, AppBuilder, AsyncTaskId, CallbackBodies, FragmentId, HandlerId,
    HandlerThreadId, IntentServiceId, Mutex, ReceiverId, ServiceId, Stmt, UiEventKind, Var,
    WidgetId, WorkerId,
};
pub use compile::{
    compile, compile_with_activity_plan, ActivityPlan, CompileError, CompiledApp, LifecycleTask,
    PlanTask,
};
pub use ui::{UiEvent, UiState};
