//! Durability tests for the result store: golden digest pins (cache keys
//! must never drift across refactors — a drift silently invalidates every
//! persisted cache in the fleet) and write-ahead-log recovery under a
//! torn tail at *every* byte offset.

use droidracer_core::{ExitClass, JobReport, JobSpec};
use droidracer_server::{job_key, wal_record_ranges, Fnv64, WalStore};

use proptest::prelude::*;

fn fnv(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// The published FNV-1a 64 test vectors plus this repo's own `job_key`
/// pins. These values are load-bearing: they key every persisted cache
/// entry and every WAL record checksum. If this test fails, the hash
/// changed — which means every deployed cache silently misses and every
/// WAL record fails its checksum. Do not re-pin without a migration story.
#[test]
fn digests_are_pinned_forever() {
    // Standard FNV-1a 64 vectors.
    assert_eq!(fnv(b""), 0xcbf2_9ce4_8422_2325);
    assert_eq!(fnv(b"a"), 0xaf63_dc4c_8601_ec8c);
    assert_eq!(fnv(b"foobar"), 0x8594_4171_f739_67e8);

    // job_key = fnv(spec ++ 0x00 ++ trace).
    assert_eq!(job_key("", b""), 0xaf63_bd4c_8601_b7df);
    assert_eq!(job_key("spec", b"trace"), 0xd09a_7dcf_fcbe_9967);

    // The everyday key: a default spec over a minimal trace header. This
    // also pins JobSpec::to_token — a token change is a key change.
    assert_eq!(
        JobSpec::default().to_token(),
        "v1:droidracer:merge:strict:ops=-:bits=-:dl=-"
    );
    assert_eq!(
        job_key(&JobSpec::default().to_token(), b"droidracer-trace v1\n"),
        0x4b21_1fe5_2059_9508
    );
}

fn report(tag: &str) -> JobReport {
    JobReport::aborted(ExitClass::Invalid, tag)
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("store-wal-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Writes `n` records through a real WalStore and returns the raw log.
fn build_wal(dir: &std::path::Path, n: usize) -> (std::path::PathBuf, Vec<u8>) {
    let snap = dir.join("cache.txt");
    {
        let (mut store, _) = WalStore::open(&snap).unwrap();
        for i in 0..n {
            store.insert(i as u64, report(&format!("record {i}"))).unwrap();
        }
    }
    let bytes = std::fs::read(WalStore::wal_path(&snap)).unwrap();
    (snap, bytes)
}

/// The contract `kill -9` holds the WAL to, checked exhaustively: truncate
/// the log at EVERY byte offset and replay. Whatever the offset, open
/// never fails, every record wholly before the cut is recovered, nothing
/// after the cut survives, and the store accepts appends afterwards.
#[test]
fn torn_tail_at_every_byte_offset_recovers_the_durable_prefix() {
    let dir = scratch("every-offset");
    let (_, full) = build_wal(&dir, 4);
    let ranges = wal_record_ranges(&full);
    assert_eq!(ranges.len(), 4);

    for cut in 0..=full.len() {
        let case = dir.join(format!("cut-{cut}"));
        std::fs::create_dir_all(&case).unwrap();
        let snap = case.join("cache.txt");
        std::fs::write(WalStore::wal_path(&snap), &full[..cut]).unwrap();

        let (mut store, _diags) = WalStore::open(&snap).unwrap_or_else(|e| {
            panic!("open must survive a tear at byte {cut}: {e}");
        });
        // A record survives iff its whole encoding — body plus the
        // trailing newline at `r.end` — fits under the cut.
        let expect: Vec<u64> = ranges
            .iter()
            .enumerate()
            .filter(|(_, r)| r.end < cut)
            .map(|(i, _)| i as u64)
            .collect();
        for i in 0..4u64 {
            let got = store.get(i);
            if expect.contains(&i) {
                assert_eq!(got, Some(&report(&format!("record {i}"))), "cut {cut} key {i}");
            } else {
                assert_eq!(got, None, "cut {cut} key {i} must not survive a tear before it");
            }
        }
        // The truncated log is a clean append point: insert, reopen, both
        // the old prefix and the new record are there.
        store.insert(99, report("post-tear")).unwrap();
        drop(store);
        let (reopened, diags) = WalStore::open(&snap).unwrap();
        assert!(diags.is_empty(), "cut {cut}: second open must be clean: {diags:?}");
        assert_eq!(reopened.len(), expect.len() + 1, "cut {cut}");
        assert_eq!(reopened.get(99), Some(&report("post-tear")), "cut {cut}");
        std::fs::remove_dir_all(&case).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random junk (not just a truncation — arbitrary garbage) appended to
    /// a healthy log: open never fails or panics, and every whole record
    /// is still recovered. The garbage can at worst masquerade as the
    /// start of one more record; it can never corrupt the replayed prefix.
    #[test]
    fn junk_tails_never_break_replay(
        junk in proptest::collection::vec(any::<u8>(), 1..120),
        n in 1usize..4,
    ) {
        let dir = scratch(&format!("junk-{n}-{}", junk.len()));
        let (snap, mut bytes) = build_wal(&dir, n);
        bytes.extend_from_slice(&junk);
        std::fs::write(WalStore::wal_path(&snap), &bytes).unwrap();
        let (store, _diags) = WalStore::open(&snap).unwrap();
        for i in 0..n as u64 {
            // All original records recovered — unless the junk happened to
            // parse as a structurally-valid record that overwrote a key,
            // which requires forging a 16-hex-digit checksum; with random
            // bytes that is out of reach.
            prop_assert_eq!(store.get(i), Some(&report(&format!("record {i}"))));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Store round-trip under tearing, driven by proptest: random record
    /// sets, random cut, the durable prefix survives.
    #[test]
    fn random_cuts_recover_a_prefix(
        tags in proptest::collection::vec("[a-z]{1,12}", 1..5),
        cut_frac in 0u32..1001,
    ) {
        let dir = scratch(&format!("cutprop-{}-{cut_frac}", tags.len()));
        let snap = dir.join("cache.txt");
        {
            let (mut store, _) = WalStore::open(&snap).unwrap();
            for (i, tag) in tags.iter().enumerate() {
                store.insert(i as u64, report(tag)).unwrap();
            }
        }
        let wal = WalStore::wal_path(&snap);
        let full = std::fs::read(&wal).unwrap();
        let ranges = wal_record_ranges(&full);
        let cut = (full.len() as u64 * u64::from(cut_frac) / 1000) as usize;
        std::fs::write(&wal, &full[..cut]).unwrap();
        let (store, _) = WalStore::open(&snap).unwrap();
        let survivors = ranges.iter().filter(|r| r.end < cut).count();
        prop_assert_eq!(store.len(), survivors);
        for (i, tag) in tags.iter().enumerate().take(survivors) {
            prop_assert_eq!(store.get(i as u64), Some(&report(tag)));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
