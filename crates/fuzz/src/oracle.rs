//! The differential oracle stack.
//!
//! Every feasible trace produced by the fuzzer passes through four layers
//! (plus the separately-invoked streaming differential, [`check_stream`]):
//!
//! 1. **Closure differential** — the incremental worklist engine
//!    ([`HappensBefore::compute`]) against the retained naive saturation
//!    ([`HappensBefore::compute_reference`]). The closed `st`/`mt` matrices
//!    must be bit-identical and the semantic counters (base edges,
//!    FIFO/NOPRE firings, TRANS-ST/TRANS-MT deltas, rounds, relation size)
//!    must match exactly; only the perf counters (`word_ops`,
//!    `worklist_pops`, …) may differ.
//! 2. **Detector differential** — `vc::detect_multithreaded` (DJIT⁺) vs
//!    `fasttrack::detect`: two independent implementations of the
//!    multi-threaded restriction must flag the same racy locations.
//! 3. **Internal invariants** — the relation is irreflexive, never orders an
//!    op before a trace-earlier op, and classification partitions the race
//!    set (category totals equal the race count).
//!
//! The incremental and reference engines take *separate* configurations so
//! the mutation self-test can flip one rule on one side and prove the
//! harness notices (ISSUE 4 acceptance criterion).

use std::collections::BTreeSet;
use std::fmt;

use droidracer_core::{classify, fasttrack, find_races, vc, HappensBefore, HbConfig};
use droidracer_core::{CategoryCounts, Race, RaceCategory, StreamOptions, StreamingAnalysis};
use droidracer_trace::{validate, Trace};

/// The oracle layer a divergence was caught by. Discriminants double as the
/// shrinker's "same bug" predicate: a candidate reproduces a failure when it
/// triggers a divergence of the same kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DivergenceKind {
    /// The trace failed the Figure 5 feasibility checker.
    Infeasible,
    /// Incremental and reference closures disagree on a relation matrix.
    ClosureMatrix,
    /// Incremental and reference closures disagree on a semantic counter.
    ClosureStats,
    /// DJIT⁺ and FastTrack flag different racy-location sets.
    VcVsFastTrack,
    /// `op ≺ op` holds for some operation.
    Irreflexivity,
    /// The relation orders an operation before a trace-earlier one.
    TraceOrder,
    /// Classification does not partition the race set.
    Partition,
    /// Replaying a recorded decision vector produced a different trace.
    Replay,
    /// The streaming engine disagrees with the batch engine on the race
    /// set, the classification, or (unsummarized) a relation matrix.
    StreamedVsBatch,
}

impl fmt::Display for DivergenceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DivergenceKind::Infeasible => "infeasible-trace",
            DivergenceKind::ClosureMatrix => "closure-matrix",
            DivergenceKind::ClosureStats => "closure-stats",
            DivergenceKind::VcVsFastTrack => "vc-vs-fasttrack",
            DivergenceKind::Irreflexivity => "irreflexivity",
            DivergenceKind::TraceOrder => "trace-order",
            DivergenceKind::Partition => "partition",
            DivergenceKind::Replay => "replay",
            DivergenceKind::StreamedVsBatch => "streamed-vs-batch",
        };
        f.write_str(s)
    }
}

/// One oracle failure: the layer that fired plus a human-readable detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Which oracle layer fired.
    pub kind: DivergenceKind,
    /// What exactly disagreed.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.kind, self.detail)
    }
}

/// The oracle verdict for one trace: any divergences plus the artifacts the
/// witnessing and coverage stages reuse (the stripped trace, the closed
/// relation, classified races).
#[derive(Debug)]
pub struct OracleReport {
    /// Divergences found, empty on a clean pass.
    pub divergences: Vec<Divergence>,
    /// The cancellation-stripped trace race indices refer to.
    pub stripped: Trace,
    /// The incremental-engine relation over `stripped`.
    pub hb: HappensBefore,
    /// Races with their §4.3 categories.
    pub races: Vec<(Race, RaceCategory)>,
    /// Category totals.
    pub counts: CategoryCounts,
}

impl OracleReport {
    /// Whether every oracle layer passed.
    pub fn clean(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// Runs the full oracle stack over `trace`.
///
/// `incremental` configures the worklist engine, `reference` the naive
/// saturation; production callers pass the same configuration twice, the
/// mutation self-test flips one rule on the incremental side.
pub fn check_trace(trace: &Trace, incremental: HbConfig, reference: HbConfig) -> OracleReport {
    let mut divergences = Vec::new();

    if let Err(e) = validate(trace) {
        divergences.push(Divergence {
            kind: DivergenceKind::Infeasible,
            detail: format!("{e}"),
        });
    }

    let stripped = trace.without_cancelled();
    let hb = HappensBefore::compute(&stripped, incremental);
    let refc = HappensBefore::compute_reference(&stripped, reference);
    divergences.extend(closure_differential(&hb, &refc));
    divergences.extend(detector_differential(&stripped));
    divergences.extend(relation_invariants(&stripped, &hb));

    let index = stripped.index();
    let races = find_races(&stripped, &hb);
    let mut counts = CategoryCounts::default();
    let races: Vec<(Race, RaceCategory)> = races
        .into_iter()
        .map(|r| {
            let cat = classify(&stripped, &index, &hb, &r);
            counts.add(cat, 1);
            (r, cat)
        })
        .collect();
    if counts.total() != races.len() {
        divergences.push(Divergence {
            kind: DivergenceKind::Partition,
            detail: format!(
                "category totals {} != race count {}",
                counts.total(),
                races.len()
            ),
        });
    }

    OracleReport {
        divergences,
        stripped,
        hb,
        races,
        counts,
    }
}


/// Layer 5: the streaming differential. Streams the *original* trace
/// (cancels included, so the replay machinery is exercised) through
/// [`StreamingAnalysis`] in `chunk`-sized pieces under the same engine
/// configuration as `expected`, and demands the batch result: identical
/// classified race set, and — when not summarizing — bit-identical
/// relation matrices.
pub fn check_stream(
    trace: &Trace,
    config: HbConfig,
    chunk: usize,
    summarize: bool,
    expected: &OracleReport,
) -> Vec<Divergence> {
    let mut out = Vec::new();
    let mut session = StreamingAnalysis::new(
        config,
        StreamOptions {
            summarize,
            window: 16,
            budget: None,
        },
    );
    for piece in trace.ops().chunks(chunk.max(1)) {
        if let Err(e) = session.push_chunk(piece) {
            return vec![Divergence {
                kind: DivergenceKind::StreamedVsBatch,
                detail: format!("unbudgeted session exhausted mid-stream: {e}"),
            }];
        }
    }
    let outcome = match session.finish(trace.names()) {
        Ok(o) => o,
        Err(e) => {
            return vec![Divergence {
                kind: DivergenceKind::StreamedVsBatch,
                detail: format!("unbudgeted session exhausted at finish: {e}"),
            }]
        }
    };
    if outcome.stats.degenerate {
        out.push(Divergence {
            kind: DivergenceKind::StreamedVsBatch,
            detail: "degenerate fallback on a feasible trace".to_owned(),
        });
    }
    let streamed: Vec<(Race, RaceCategory)> = outcome
        .races
        .iter()
        .map(|cr| (cr.race, cr.category))
        .collect();
    if streamed != expected.races {
        out.push(Divergence {
            kind: DivergenceKind::StreamedVsBatch,
            detail: format!(
                "race sets differ at chunk={chunk} summarize={summarize}: \
                 streamed {} race(s), batch {}",
                streamed.len(),
                expected.races.len()
            ),
        });
    }
    if !summarize {
        let (bst, bmt) = expected.hb.relation_matrices();
        match outcome.matrices.as_ref() {
            Some((st, mt)) => {
                if st != bst {
                    out.push(Divergence {
                        kind: DivergenceKind::StreamedVsBatch,
                        detail: format!(
                            "st matrix differs at chunk={chunk}: streamed {} set bits, batch {}",
                            st.count_ones(),
                            bst.count_ones()
                        ),
                    });
                }
                if mt.as_ref() != bmt {
                    out.push(Divergence {
                        kind: DivergenceKind::StreamedVsBatch,
                        detail: format!(
                            "mt matrix differs at chunk={chunk}: streamed {:?} set bits, batch {:?}",
                            mt.as_ref().map(|m| m.count_ones()),
                            bmt.map(|m| m.count_ones())
                        ),
                    });
                }
            }
            // The degenerate fallback under no budget still returns
            // matrices; reaching here means the contract broke.
            None => out.push(Divergence {
                kind: DivergenceKind::StreamedVsBatch,
                detail: "unsummarized session returned no matrices".to_owned(),
            }),
        }
    }
    out
}

/// Layer 1: incremental vs reference closure, bit for bit.
fn closure_differential(inc: &HappensBefore, refc: &HappensBefore) -> Vec<Divergence> {
    let mut out = Vec::new();
    let (ip, im) = inc.relation_matrices();
    let (rp, rm) = refc.relation_matrices();
    if ip != rp {
        out.push(Divergence {
            kind: DivergenceKind::ClosureMatrix,
            detail: format!(
                "st/plain matrix differs: incremental has {} set bits, reference {}",
                ip.count_ones(),
                rp.count_ones()
            ),
        });
    }
    if im != rm {
        out.push(Divergence {
            kind: DivergenceKind::ClosureMatrix,
            detail: format!(
                "mt matrix differs: incremental has {:?} set bits, reference {:?}",
                im.map(|m| m.count_ones()),
                rm.map(|m| m.count_ones())
            ),
        });
    }
    let (i, r) = (inc.stats(), refc.stats());
    let counters = [
        ("base_edges", i.base_edges, r.base_edges),
        ("fifo_fired", i.fifo_fired, r.fifo_fired),
        ("nopre_fired", i.nopre_fired, r.nopre_fired),
        ("trans_st_edges", i.trans_st_edges, r.trans_st_edges),
        ("trans_mt_edges", i.trans_mt_edges, r.trans_mt_edges),
        ("ordered_pairs", inc.ordered_pairs(), refc.ordered_pairs()),
    ];
    for (name, a, b) in counters {
        if a != b {
            out.push(Divergence {
                kind: DivergenceKind::ClosureStats,
                detail: format!("{name}: incremental {a} != reference {b}"),
            });
        }
    }
    out
}

/// Layer 2: DJIT⁺ vs FastTrack on the multi-threaded restriction. The two
/// detectors report representative races differently (DJIT⁺ one per
/// location, FastTrack per epoch check), so they are compared on the set of
/// racy *locations*, which both guarantee to flag.
fn detector_differential(stripped: &Trace) -> Vec<Divergence> {
    let djit: BTreeSet<_> = vc::detect_multithreaded(stripped)
        .into_iter()
        .map(|r| r.loc)
        .collect();
    let ft: BTreeSet<_> = fasttrack::detect(stripped)
        .into_iter()
        .map(|r| r.loc)
        .collect();
    if djit != ft {
        let names = stripped.names();
        let only_djit: Vec<String> = djit.difference(&ft).map(|l| names.loc_name(*l)).collect();
        let only_ft: Vec<String> = ft.difference(&djit).map(|l| names.loc_name(*l)).collect();
        return vec![Divergence {
            kind: DivergenceKind::VcVsFastTrack,
            detail: format!(
                "racy locations disagree: only DJIT+ {only_djit:?}, only FastTrack {only_ft:?}"
            ),
        }];
    }
    Vec::new()
}

/// Layer 3: irreflexivity and trace-order consistency. `ordered` is
/// deliberately reflexive at the *op* level (as in the paper), so strict
/// irreflexivity is checked on the closed matrices: a set diagonal bit
/// would mean the closure derived a cycle. Every happens-before edge points
/// forward in the trace, so `j ≺ i` with `j` after `i` indicates a closure
/// bug too.
fn relation_invariants(stripped: &Trace, hb: &HappensBefore) -> Vec<Divergence> {
    let mut out = Vec::new();
    let (primary, mt) = hb.relation_matrices();
    for (name, matrix) in [("st/plain", Some(primary)), ("mt", mt)] {
        let Some(matrix) = matrix else { continue };
        if let Some(a) = (0..matrix.len()).find(|&a| matrix.get(a, a)) {
            out.push(Divergence {
                kind: DivergenceKind::Irreflexivity,
                detail: format!("{name} matrix has node {a} ≺ itself"),
            });
        }
    }
    let n = stripped.len();
    'outer: for i in 0..n {
        for j in i + 1..n {
            if hb.ordered(j, i) {
                out.push(Divergence {
                    kind: DivergenceKind::TraceOrder,
                    detail: format!("op {j} ≺ op {i} against trace order"),
                });
                break 'outer;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use droidracer_core::RuleSet;
    use droidracer_trace::{ThreadKind, TraceBuilder};

    fn racy_trace() -> Trace {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg = b.thread("bg", ThreadKind::App, false);
        let loc = b.loc("obj", "C.state");
        b.thread_init(main);
        b.fork(main, bg);
        b.thread_init(bg);
        b.write(bg, loc);
        b.read(main, loc);
        b.finish_validated().expect("feasible")
    }

    #[test]
    fn clean_trace_passes_all_layers() {
        let report = check_trace(&racy_trace(), HbConfig::new(), HbConfig::new());
        assert!(report.clean(), "{:?}", report.divergences);
        assert_eq!(report.races.len(), 1);
        assert_eq!(report.counts.total(), 1);
    }

    #[test]
    fn rule_flip_is_caught_by_closure_differential() {
        let mutated = HbConfig {
            rules: RuleSet {
                fork: false,
                ..RuleSet::full()
            },
            merge_accesses: true,
        };
        let report = check_trace(&racy_trace(), mutated, HbConfig::new());
        assert!(
            report
                .divergences
                .iter()
                .any(|d| matches!(d.kind, DivergenceKind::ClosureMatrix | DivergenceKind::ClosureStats)),
            "{:?}",
            report.divergences
        );
    }

    #[test]
    fn infeasible_trace_is_flagged() {
        let mut b = TraceBuilder::new();
        let t = b.thread("main", ThreadKind::Main, true);
        let task = b.task("T");
        b.thread_init(t);
        b.begin(t, task);
        let trace = b.finish();
        let report = check_trace(&trace, HbConfig::new(), HbConfig::new());
        assert!(report
            .divergences
            .iter()
            .any(|d| d.kind == DivergenceKind::Infeasible));
    }
}
