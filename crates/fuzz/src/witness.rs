//! Schedule-replay race witnessing.
//!
//! A reported race is only fully trustworthy once a concrete schedule
//! *manifests* it (cf. APEChecker): for every race the engine classifies as
//! *co-enabled* or *delayed* — the single-threaded categories whose accesses
//! could run in either order depending on how the looper dequeues tasks —
//! the witnesser searches for a schedule executing the two accesses in the
//! **opposite** order from the observed run.
//!
//! The search is built on the simulator's decision vectors: replaying a
//! recorded vector through a [`ScriptedScheduler`] reproduces a trace
//! exactly, so permuting a prefix of the vector explores neighbouring
//! schedules. Before searching, the witnesser replays the original vector
//! verbatim and checks the trace is bit-identical (the replay oracle); it
//! then tries targeted single-decision mutations from the back of the
//! vector, then fully random schedules, all seeded from the master RNG.

use droidracer_core::Race;
use droidracer_sim::{run, Program, RandomScheduler, Scheduler, ScriptedScheduler, SimConfig};
use droidracer_trace::{OpKind, Trace};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::oracle::{Divergence, DivergenceKind};

/// Identifies "the same access" across different schedules of one program:
/// the `ordinal`-th operation by `thread` (running `task`, if any) touching
/// `loc` with the same read/write polarity. Names are stable across runs
/// (the simulator derives them from the program), while raw trace indices
/// are schedule-dependent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessKey {
    thread: String,
    task: Option<String>,
    loc: String,
    is_write: bool,
    ordinal: usize,
}

/// Computes the [`AccessKey`] of the access at `index` in `trace`, or
/// `None` when the op is not a read/write.
pub fn access_key(trace: &Trace, index: usize) -> Option<AccessKey> {
    let tidx = trace.index();
    let key_of = |i: usize| -> Option<(String, Option<String>, String, bool)> {
        let op = trace.op(i);
        let (loc, is_write) = match op.kind {
            OpKind::Read { loc } => (loc, false),
            OpKind::Write { loc } => (loc, true),
            _ => return None,
        };
        let names = trace.names();
        Some((
            names.thread_name(op.thread),
            tidx.task_of(i).map(|t| names.task_name(t)),
            names.loc_name(loc),
            is_write,
        ))
    };
    let target = key_of(index)?;
    let ordinal = (0..index).filter(|&i| key_of(i).as_ref() == Some(&target)).count();
    let (thread, task, loc, is_write) = target;
    Some(AccessKey {
        thread,
        task,
        loc,
        is_write,
        ordinal,
    })
}

/// Finds the trace index matching `key` in `trace`, if the schedule reached
/// that access at all.
pub fn find_key(trace: &Trace, key: &AccessKey) -> Option<usize> {
    (0..trace.len()).find(|&i| access_key(trace, i).as_ref() == Some(key))
}

/// The outcome of one witnessing attempt.
#[derive(Debug, Clone)]
pub struct WitnessOutcome {
    /// Whether a reordering schedule was found.
    pub witnessed: bool,
    /// Schedules executed during the search.
    pub attempts: usize,
    /// The decision vector of the witnessing run, when found.
    pub script: Option<Vec<usize>>,
}

/// Searches for a schedule of `program` executing the two accesses of
/// `race` (indices into `stripped`, the cancellation-stripped trace of the
/// run recorded by `decisions`) in the opposite order.
///
/// # Errors
///
/// Returns a [`DivergenceKind::Replay`] divergence when replaying the
/// original `decisions` verbatim fails to reproduce `original` — a
/// determinism bug in the simulator, reported before any search happens.
pub fn witness_race(
    program: &Program,
    original: &Trace,
    stripped: &Trace,
    decisions: &[usize],
    race: &Race,
    rng: &mut SmallRng,
    budget: usize,
) -> Result<WitnessOutcome, Divergence> {
    let sim_config = SimConfig::default();

    // Replay oracle: the recorded vector must reproduce the trace exactly.
    let mut replayer = ScriptedScheduler::new(decisions.to_vec());
    let replayed = run(program, &mut replayer, &sim_config).map_err(|e| Divergence {
        kind: DivergenceKind::Replay,
        detail: format!("replay of recorded decisions errored: {e:?}"),
    })?;
    if &replayed.trace != original {
        return Err(Divergence {
            kind: DivergenceKind::Replay,
            detail: format!(
                "replay of recorded decisions produced a different trace \
                 ({} ops vs {})",
                replayed.trace.len(),
                original.len()
            ),
        });
    }

    let (Some(first), Some(second)) = (
        access_key(stripped, race.first),
        access_key(stripped, race.second),
    ) else {
        return Ok(WitnessOutcome {
            witnessed: false,
            attempts: 0,
            script: None,
        });
    };

    let reordered = |trace: &Trace| -> bool {
        let stripped = trace.without_cancelled();
        match (find_key(&stripped, &first), find_key(&stripped, &second)) {
            (Some(a), Some(b)) => b < a,
            _ => false,
        }
    };

    let mut attempts = 0usize;

    // Phase 1: targeted single-decision mutations, back to front. Flipping
    // a late decision perturbs exactly the suffix where the racing pair is
    // scheduled; the clamp in [`ScriptedScheduler`] keeps mutated entries
    // in range and round-robin completes the schedule past the script.
    let positions: Vec<usize> = (0..decisions.len()).rev().collect();
    for &k in positions.iter().take(budget / 2) {
        let mut script: Vec<usize> = decisions[..k].to_vec();
        script.push(decisions[k] + 1 + rng.random_range(0..3));
        let mut sched = ScriptedScheduler::new(script);
        attempts += 1;
        if let Ok(result) = run(program, &mut sched, &sim_config) {
            if reordered(&result.trace) {
                return Ok(confirm(program, &result.decisions, &sim_config, reordered, attempts));
            }
        }
    }

    // Phase 2: independent random schedules seeded from the master RNG.
    while attempts < budget {
        let seed = rng.next_u64();
        let mut sched = RandomScheduler::from_rng(SmallRng::seed_from_u64(seed));
        attempts += 1;
        if let Ok(result) = run(program, &mut sched, &sim_config) {
            if reordered(&result.trace) {
                return Ok(confirm(program, &result.decisions, &sim_config, reordered, attempts));
            }
        }
    }

    Ok(WitnessOutcome {
        witnessed: false,
        attempts,
        script: None,
    })
}

/// Replays a found witnessing schedule through a [`ScriptedScheduler`] to
/// confirm the reordering is reproducible from its decision vector alone.
fn confirm(
    program: &Program,
    decisions: &[usize],
    sim_config: &SimConfig,
    reordered: impl Fn(&Trace) -> bool,
    attempts: usize,
) -> WitnessOutcome {
    let mut sched = ScriptedScheduler::new(decisions.to_vec());
    let confirmed = run(program, &mut sched, sim_config)
        .map(|r| reordered(&r.trace))
        .unwrap_or(false);
    WitnessOutcome {
        witnessed: confirmed,
        attempts,
        script: confirmed.then(|| decisions.to_vec()),
    }
}

/// A scheduler adapter that records the choice-set size alongside every
/// decision — kept for schedule-space diagnostics in the CLI's verbose
/// profile output.
#[derive(Debug)]
pub struct RecordingScheduler<S> {
    inner: S,
    /// `(available choices, picked index)` per step.
    pub log: Vec<(usize, usize)>,
}

impl<S: Scheduler> RecordingScheduler<S> {
    /// Wraps `inner`, recording every decision it makes.
    pub fn new(inner: S) -> Self {
        RecordingScheduler {
            inner,
            log: Vec::new(),
        }
    }
}

impl<S: Scheduler> Scheduler for RecordingScheduler<S> {
    fn choose(&mut self, choices: &[droidracer_sim::Choice]) -> usize {
        let pick = self.inner.choose(choices);
        self.log.push((choices.len(), pick));
        pick
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use droidracer_core::{find_races, HappensBefore, HbConfig};
    use droidracer_sim::{Action, ProgramBuilder, RoundRobinScheduler, ThreadSpec};
    use droidracer_trace::PostKind;

    /// Two tasks posted to the same looper from two different threads —
    /// their accesses are co-enabled, so some schedule runs them in either
    /// order.
    fn co_enabled_program() -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.thread(ThreadSpec::app("main").initial().with_queue());
        let bg = b.thread(ThreadSpec::app("bg").initial());
        let loc = b.loc("obj", "C.x");
        let t1 = b.task("t1", vec![Action::Write(loc)]);
        let t2 = b.task("t2", vec![Action::Write(loc)]);
        b.set_thread_body(
            main,
            vec![Action::Post {
                task: t1,
                target: main,
                kind: PostKind::Plain,
            }],
        );
        b.set_thread_body(
            bg,
            vec![Action::Post {
                task: t2,
                target: main,
                kind: PostKind::Plain,
            }],
        );
        b.finish().expect("valid program")
    }

    #[test]
    fn access_keys_are_stable_across_schedules() {
        let program = co_enabled_program();
        let a = run(&program, &mut RoundRobinScheduler::new(), &SimConfig::default()).unwrap();
        let b = run(
            &program,
            &mut RandomScheduler::new(5),
            &SimConfig::default(),
        )
        .unwrap();
        let idx = (0..a.trace.len())
            .find(|&i| matches!(a.trace.op(i).kind, OpKind::Write { .. }))
            .unwrap();
        let key = access_key(&a.trace, idx).unwrap();
        assert!(find_key(&b.trace, &key).is_some());
    }

    #[test]
    fn co_enabled_race_is_witnessed() {
        let program = co_enabled_program();
        let result = run(
            &program,
            &mut RandomScheduler::new(1),
            &SimConfig::default(),
        )
        .unwrap();
        let stripped = result.trace.without_cancelled();
        let hb = HappensBefore::compute(&stripped, HbConfig::new());
        let races = find_races(&stripped, &hb);
        assert!(!races.is_empty(), "the co-enabled program must race");
        let mut rng = SmallRng::seed_from_u64(9);
        let outcome = witness_race(
            &program,
            &result.trace,
            &stripped,
            &result.decisions,
            &races[0],
            &mut rng,
            64,
        )
        .expect("replay must be deterministic");
        assert!(outcome.witnessed, "search must find a reordering schedule");
        assert!(outcome.script.is_some());
    }

    #[test]
    fn recording_scheduler_logs_choice_counts() {
        let program = co_enabled_program();
        let mut sched = RecordingScheduler::new(RoundRobinScheduler::new());
        let result = run(&program, &mut sched, &SimConfig::default()).unwrap();
        assert_eq!(sched.log.len(), result.steps);
        assert!(sched.log.iter().all(|&(n, pick)| pick < n));
    }
}
