//! The chaos soak as a test: every fault scenario, zero violations.
//!
//! This is the same seeded soak the pipeline bench exports counters from;
//! here the invariants are hard assertions. Two different seeds guard
//! against a fault plan that happens to miss the interesting byte offsets.

use droidracer_server::{run_soak, ChaosPlan, Scenario};

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("droidracer-chaos-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn full_soak_has_zero_violations() {
    for seed in [0xC4A05u64, 0x00D1CE] {
        let dir = scratch(&format!("full-{seed:x}"));
        let plan = ChaosPlan::full(seed, &dir);
        let report = run_soak(&plan).expect("soak infrastructure");
        assert_eq!(report.violations(), 0, "seed {seed:#x}: {report:?}");
        assert_eq!(report.scenarios, Scenario::ALL.len() as u64, "{report:?}");
        assert!(
            report.faults_injected >= Scenario::ALL.len() as u64,
            "every scenario must inject at least one fault: {report:?}"
        );
        assert!(report.jobs_completed > 0, "{report:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn soak_is_deterministic_for_a_seed() {
    let dir_a = scratch("det-a");
    let dir_b = scratch("det-b");
    // Wall-clock-dependent scenarios (stalls, supervisor timing) aside,
    // the *fault plan* and its accounting must replay exactly: same seed,
    // same scenarios, same faults, same completions, same (zero)
    // violations.
    let plan_a = ChaosPlan::full(0x5EED, &dir_a);
    let plan_b = ChaosPlan::full(0x5EED, &dir_b);
    let a = run_soak(&plan_a).expect("soak a");
    let b = run_soak(&plan_b).expect("soak b");
    assert_eq!(a.faults_injected, b.faults_injected);
    assert_eq!(a.jobs_completed, b.jobs_completed);
    assert_eq!(a.violations(), 0);
    assert_eq!(b.violations(), 0);
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

#[test]
fn disk_scenarios_alone_recover_every_acked_entry() {
    // A focused, heavier run of just the durability scenarios: more jobs,
    // so the torn tail and the corruption land in a bigger log.
    let dir = scratch("disk");
    let plan = ChaosPlan {
        seed: 0xBADD15C,
        scenarios: vec![Scenario::TornWalTail, Scenario::CorruptWalRecord],
        jobs_per_scenario: 6,
        scratch_dir: dir.clone(),
    };
    let report = run_soak(&plan).expect("soak infrastructure");
    assert_eq!(report.violations(), 0, "{report:?}");
    assert_eq!(report.faults_injected, 2, "{report:?}");
    // populate + verify both count completions for both scenarios.
    assert!(report.jobs_completed >= 24, "{report:?}");
    std::fs::remove_dir_all(&dir).ok();
}
