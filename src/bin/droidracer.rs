//! The `droidracer` command-line tool: offline race detection over trace
//! files in the text format of `droidracer_trace`.
//!
//! ```text
//! droidracer analyze <trace-file> [--mode MODE] [--no-merge] [--all]
//!                                  [--validate] [--lenient] [--explain]
//!                                  [--dot FILE] [--coverage] [--profile FILE]
//!                                  [--max-ops N] [--max-matrix-bits N]
//!                                  [--deadline-ms N]
//! droidracer validate <trace-file>
//! droidracer stats <trace-file>
//! droidracer corpus <app-name> [--out FILE]   # dump a corpus trace
//! droidracer corpus --analyze [--threads N] [--fail-fast] [budget flags]
//! droidracer explore <app-name> [depth] [--profile FILE]
//! droidracer fuzz [--seed N] [--iters N] [--time-budget SECS]
//!                 [--profile FILE] [--regressions DIR] [--save-failures DIR]
//! droidracer stream [<trace-file>|-] [--mode MODE] [--no-merge]
//!                   [--chunk-ops N] [--summarize] [--window N] [--quiet]
//!                   [--profile FILE] [budget flags]
//! droidracer serve [--listen ADDR|--socket PATH] [--shards N]
//!                  [--tenants a,b,c] [--max-trace-bytes N] [--cache FILE]
//!                  [--tenant-quota-ops N] [--max-job-ops N]
//!                  [--max-job-matrix-bits N] [--queue-depth N]
//!                  [--conn-timeout-ms MS]
//! droidracer submit <trace-file> [--connect ADDR|--socket PATH]
//!                   [--tenant NAME] [--stream] [--chunk-ops N]
//!                   [--mode MODE] [--no-merge] [--validate] [--lenient]
//!                   [--retries N] [--retry-timeout-ms MS] [budget flags]
//! droidracer submit --status|--shutdown [--connect ADDR|--socket PATH]
//! ```
//!
//! `serve` runs the sharded multi-tenant analysis daemon; `submit` sends a
//! trace to it and exits with the job's own exit class, so a remote
//! submission scripts exactly like a local `analyze`.
//!
//! `stream` analyzes a trace online: operations are parsed and ingested
//! incrementally (from a file or stdin) and races print the moment they
//! become derivable, ahead of end-of-input.
//!
//! Modes: full (default), mt-only, async-only, naive-combined,
//! events-as-threads. `--profile` writes a Chrome `trace_event` JSON
//! profile of the run (load it in `chrome://tracing` or Perfetto) and
//! prints the span tree.
//!
//! Exit codes: 0 — clean; 1 — races found; 2 — inputs quarantined or a
//! budget exhausted; 3 — fatal (usage error, unreadable input, internal
//! failure).

use std::process::ExitCode;

use droidracer::apps;
use droidracer::core::{
    AnalysisBuilder, AnalysisError, Budget, HbConfig, HbMode, RaceEvent, StreamEvent,
    StreamOptions,
};
use droidracer::fuzz::{corpus::replay_regressions, corpus::save_regression, FuzzConfig};
use droidracer::core::JobSpec;
use droidracer::obs::{chrome_trace, render_span_tree, MetricsRegistry, Recorder};
use droidracer::server::{Client, RetryPolicy, Server, ServerConfig, Submission};
use droidracer::trace::{
    from_text, from_text_lenient, to_text, validate, ChunkedReader, Names, Trace, TraceStats,
};
use droidracer::Error;

/// Exit-code taxonomy (see the module docs): nothing to report.
const EXIT_CLEAN: u8 = 0;
/// Races were found in the analyzed input(s).
const EXIT_RACES: u8 = 1;
/// One or more inputs were quarantined (panic, typed error, blown budget).
const EXIT_QUARANTINE: u8 = 2;
/// The run itself failed: bad usage, unreadable input, internal error.
const EXIT_FATAL: u8 = 3;

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  droidracer analyze <trace-file> [options]
      --mode full|mt-only|async-only|naive-combined|events-as-threads
      --no-merge        disable §6 node merging
      --all             also print the raw block-pair race count
      --validate        reject semantically invalid traces before analyzing
      --lenient         repair malformed traces, printing each diagnostic
      --explain         print a happens-before explanation per representative
      --dot FILE        write the happens-before graph in Graphviz format
      --coverage        print root causes vs covered reports
      --profile FILE    write a Chrome trace_event profile; print the span tree
      --max-ops N       cap analysis work units (exhaustion exits 2)
      --max-matrix-bits N  cap relation-matrix allocation in bits
      --deadline-ms N   wall-clock budget for the analysis
  droidracer validate <trace-file>
  droidracer stats <trace-file>
  droidracer corpus <app-name> [--out FILE]
  droidracer corpus --analyze [options]
      --threads N       fan the corpus out over N workers (default 1)
      --keep-going      quarantine faulty entries, keep analyzing (default)
      --fail-fast       stop at the first quarantined entry
      --max-ops / --max-matrix-bits / --deadline-ms   per-entry budget
  droidracer explore <app-name> [depth] [--profile FILE]
  droidracer stream [<trace-file>|-] [options]
      --mode / --no-merge   as for analyze
      --chunk-ops N     ops ingested per incremental boundary (default 64)
      --summarize       retire closed matrix columns into digests
      --window N        live-column window when summarizing (default 128)
      --quiet           suppress live race events, print only the summary
      --profile FILE    write a Chrome trace_event profile; print span tree
      --max-ops / --max-matrix-bits / --deadline-ms   session budget
  droidracer serve [options]
      --listen ADDR     TCP listen address (default 127.0.0.1:7911)
      --socket PATH     listen on a Unix socket instead of TCP
      --shards N        shard worker threads (default 2)
      --tenants a,b,c   tenant allowlist (default: any tenant)
      --max-trace-bytes N  reject larger submissions (default 8 MiB)
      --tenant-quota-ops N cumulative word-ops quota per tenant
      --max-job-ops N   per-job analysis work cap
      --max-job-matrix-bits N  per-job matrix allocation cap
      --queue-depth N   per-shard admission queue; full queues shed load
                        with a typed Overloaded response (default 64)
      --conn-timeout-ms MS  per-connection read/write deadline; slow or
                        stalled peers are disconnected (default: none)
      --cache FILE      persist the result cache across restarts
                        (crash-safe: appends to FILE.wal, compacts on
                        shutdown)
  droidracer submit <trace-file> [options]
      --connect ADDR    server TCP address (default 127.0.0.1:7911)
      --socket PATH     connect over a Unix socket instead
      --tenant NAME     tenant identity (default `cli`)
      --stream          drive the server's streaming engine
      --chunk-ops N     streaming chunk size in ops (default 64)
      --retries N       retry transient failures and shed load up to N
                        times with jittered exponential backoff;
                        exhausted retries exit 3 (default 0: fail fast)
      --retry-timeout-ms MS  wall-clock budget across all attempts
      --mode / --no-merge / --validate / --lenient   as for analyze
      --max-ops / --max-matrix-bits / --deadline-ms  job budget
  droidracer submit --status|--shutdown [--connect|--socket|--tenant]
  droidracer fuzz [options]
      --seed N          master seed (decimal or 0x-hex; default 0xD201D)
      --iters N         fuzz iterations (default 200)
      --time-budget S   wall-clock cutoff in seconds
      --regressions DIR regression corpus to replay
                        (default tests/data/fuzz_regressions when present)
      --save-failures DIR  write shrunk failing traces into DIR
      --profile FILE    write a Chrome trace_event profile of the session

exit codes: 0 clean, 1 races found, 2 quarantines/budget, 3 fatal"
    );
    ExitCode::from(EXIT_FATAL)
}

fn load(path: &str) -> Result<Trace, Error> {
    let text = std::fs::read_to_string(path)?;
    Ok(from_text(&text)?)
}

fn parse_mode(s: &str) -> Option<HbMode> {
    Some(match s {
        "full" | "droidracer" => HbMode::Full,
        "mt-only" => HbMode::MultithreadedOnly,
        "async-only" => HbMode::AsyncOnly,
        "naive-combined" => HbMode::NaiveCombined,
        "events-as-threads" => HbMode::EventsAsThreads,
        _ => return None,
    })
}

fn find_entry(name: &str) -> Result<apps::CorpusEntry, ExitCode> {
    apps::corpus()
        .into_iter()
        .find(|e| e.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            eprintln!(
                "unknown app `{name}`; available: {}",
                apps::corpus()
                    .iter()
                    .map(|e| e.name)
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            ExitCode::from(EXIT_FATAL)
        })
}

struct AnalyzeOpts {
    mode: HbMode,
    merge: bool,
    show_all: bool,
    validate_first: bool,
    lenient: bool,
    explain_races: bool,
    coverage: bool,
    dot_file: Option<String>,
    profile_file: Option<String>,
    budget: Budget,
}

/// Consumes one budget flag at `args[i]` if present, updating `budget`.
/// Returns the new cursor, or `None` on a malformed value, or `Some(i)`
/// unchanged when the flag is not a budget flag.
fn parse_budget_flag(args: &[String], i: usize, budget: &mut Budget) -> Option<usize> {
    match args[i].as_str() {
        "--max-ops" => {
            *budget = budget.with_max_ops(args.get(i + 1).and_then(|s| parse_u64(s))?);
            Some(i + 2)
        }
        "--max-matrix-bits" => {
            *budget = budget.with_max_matrix_bits(args.get(i + 1).and_then(|s| parse_u64(s))?);
            Some(i + 2)
        }
        "--deadline-ms" => {
            let ms = args.get(i + 1).and_then(|s| parse_u64(s))?;
            *budget = budget.with_timeout(std::time::Duration::from_millis(ms));
            Some(i + 2)
        }
        _ => Some(i),
    }
}

fn parse_analyze_opts(args: &[String]) -> Option<AnalyzeOpts> {
    let mut opts = AnalyzeOpts {
        mode: HbMode::Full,
        merge: true,
        show_all: false,
        validate_first: false,
        lenient: false,
        explain_races: false,
        coverage: false,
        dot_file: None,
        profile_file: None,
        budget: Budget::unlimited(),
    };
    let mut i = 0;
    while i < args.len() {
        let advanced = parse_budget_flag(args, i, &mut opts.budget)?;
        if advanced != i {
            i = advanced;
            continue;
        }
        match args[i].as_str() {
            "--mode" => {
                opts.mode = args.get(i + 1).and_then(|s| parse_mode(s))?;
                i += 2;
            }
            "--no-merge" => {
                opts.merge = false;
                i += 1;
            }
            "--lenient" => {
                opts.lenient = true;
                i += 1;
            }
            "--all" => {
                opts.show_all = true;
                i += 1;
            }
            "--validate" => {
                opts.validate_first = true;
                i += 1;
            }
            "--explain" => {
                opts.explain_races = true;
                i += 1;
            }
            "--coverage" => {
                opts.coverage = true;
                i += 1;
            }
            "--dot" => {
                opts.dot_file = Some(args.get(i + 1)?.clone());
                i += 2;
            }
            "--profile" => {
                opts.profile_file = Some(args.get(i + 1)?.clone());
                i += 2;
            }
            _ => return None,
        }
    }
    Some(opts)
}

fn cmd_analyze(path: &str, opts: &AnalyzeOpts) -> Result<ExitCode, Error> {
    let mut rec = Recorder::new();
    rec.start("analyze");

    rec.start("parse");
    let trace = if opts.lenient {
        let text = std::fs::read_to_string(path)?;
        let (trace, diags) = from_text_lenient(&text)?;
        for d in &diags {
            eprintln!("repair: {d}");
        }
        if !diags.is_empty() {
            eprintln!("{} repair(s) applied to {path}", diags.len());
        }
        trace
    } else {
        load(path)?
    };
    rec.counter("ops", trace.len() as u64);
    rec.end();

    let result = AnalysisBuilder::new()
        .mode(opts.mode)
        .merge_accesses(opts.merge)
        .validate_first(opts.validate_first)
        .with_coverage(opts.coverage)
        .with_explanations(opts.explain_races)
        .budget(opts.budget)
        .clock_origin(rec.origin())
        .analyze(&trace);
    let analysis = match result {
        Ok(a) => a,
        Err(AnalysisError::BudgetExhausted(e)) => {
            eprintln!("{e}");
            return Ok(ExitCode::from(EXIT_QUARANTINE));
        }
        Err(e) => return Err(e.into()),
    };
    rec.adopt(analysis.spans().clone());

    rec.start("report");
    let mut out = format!(
        "mode={} nodes={} ({:.1}% of {} ops), {} fixpoint round(s)\n",
        opts.mode,
        analysis.hb().graph().node_count(),
        analysis.hb().graph().reduction_ratio() * 100.0,
        analysis.trace().len(),
        analysis.hb().rounds(),
    );
    out.push_str(&analysis.render());
    if opts.show_all {
        out.push_str(&format!("all block-pair races: {}\n", analysis.races().len()));
    }
    for explanation in analysis.explanations() {
        out.push_str(explanation);
    }
    if let Some(report) = analysis.coverage() {
        out.push_str(&format!(
            "race coverage: {} root cause(s), {} covered report(s)\n",
            report.roots.len(),
            report.covered.len()
        ));
        let names = analysis.trace().names();
        for (k, root) in report.roots.iter().enumerate() {
            out.push_str(&format!(
                "  root #{k}: [{}] {}\n",
                root.category,
                names.loc_name(root.race.loc)
            ));
        }
        for (cr, by) in &report.covered {
            let attribution = by
                .map(|k| format!("root #{k}"))
                .unwrap_or_else(|| "a coverage chain".to_owned());
            out.push_str(&format!(
                "  covered: [{}] {} — by {attribution}\n",
                cr.category,
                names.loc_name(cr.race.loc)
            ));
        }
    }
    rec.counter("races", analysis.representatives().len() as u64);
    rec.end();
    rec.end();
    print!("{out}");

    if let Some(file) = &opts.dot_file {
        std::fs::write(file, droidracer::core::to_dot(&analysis))?;
        println!("happens-before graph written to {file}");
    }
    if let Some(file) = &opts.profile_file {
        let root = rec.finish_root();
        std::fs::write(file, chrome_trace(std::slice::from_ref(&root), &analysis.metrics()))?;
        print!("{}", render_span_tree(&root));
        println!("profile written to {file}");
    }
    Ok(if analysis.races().is_empty() {
        ExitCode::from(EXIT_CLEAN)
    } else {
        ExitCode::from(EXIT_RACES)
    })
}

struct CorpusAnalyzeOpts {
    threads: usize,
    fail_fast: bool,
    budget: Budget,
}

fn parse_corpus_analyze_opts(args: &[String]) -> Option<CorpusAnalyzeOpts> {
    let mut opts = CorpusAnalyzeOpts {
        threads: 1,
        fail_fast: false,
        budget: Budget::unlimited(),
    };
    let mut i = 0;
    while i < args.len() {
        let advanced = parse_budget_flag(args, i, &mut opts.budget)?;
        if advanced != i {
            i = advanced;
            continue;
        }
        match args[i].as_str() {
            "--threads" => {
                opts.threads = args.get(i + 1).and_then(|s| s.parse().ok())?;
                i += 2;
            }
            // Keep-going is the default for corpus mode; the flag is
            // accepted for explicitness.
            "--keep-going" => {
                opts.fail_fast = false;
                i += 1;
            }
            "--fail-fast" => {
                opts.fail_fast = true;
                i += 1;
            }
            _ => return None,
        }
    }
    Some(opts)
}

/// Runs the fault-isolated analysis over the whole corpus: every entry is
/// compiled, simulated and analyzed under the given budget inside a panic
/// boundary; faulty entries are quarantined and reported, not fatal.
fn cmd_corpus_analyze(opts: &CorpusAnalyzeOpts) -> ExitCode {
    let entries = apps::corpus();
    let results = apps::analyze_corpus_isolated(&entries, opts.threads, &opts.budget);
    let mut races = 0usize;
    let mut quarantines = 0usize;
    for (entry, result) in entries.iter().zip(&results) {
        match result {
            Ok(report) => {
                let found = report.analysis.representatives().len();
                races += found;
                println!("{:<16} ok: {} representative race(s), reported {}", entry.name, found, report.reported);
            }
            Err(q) => {
                quarantines += 1;
                eprintln!("{q}");
                println!("{:<16} QUARANTINED [{}]", entry.name, q.cause);
                if opts.fail_fast {
                    break;
                }
            }
        }
    }
    println!(
        "corpus: {} entries, {races} race(s), {quarantines} quarantined",
        results.len()
    );
    if quarantines > 0 {
        ExitCode::from(EXIT_QUARANTINE)
    } else if races > 0 {
        ExitCode::from(EXIT_RACES)
    } else {
        ExitCode::from(EXIT_CLEAN)
    }
}

/// Parses a decimal or `0x`-prefixed hexadecimal integer.
fn parse_u64(s: &str) -> Option<u64> {
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

struct FuzzOpts {
    config: FuzzConfig,
    regressions: Option<String>,
    save_failures: Option<String>,
    profile_file: Option<String>,
}

fn parse_fuzz_opts(args: &[String]) -> Option<FuzzOpts> {
    let mut opts = FuzzOpts {
        config: FuzzConfig::default(),
        regressions: None,
        save_failures: None,
        profile_file: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                opts.config.seed = args.get(i + 1).and_then(|s| parse_u64(s))?;
                i += 2;
            }
            "--iters" => {
                opts.config.iters = args.get(i + 1).and_then(|s| parse_u64(s))?;
                i += 2;
            }
            "--time-budget" => {
                let secs = args.get(i + 1).and_then(|s| parse_u64(s))?;
                opts.config.time_budget = Some(std::time::Duration::from_secs(secs));
                i += 2;
            }
            "--regressions" => {
                opts.regressions = Some(args.get(i + 1)?.clone());
                i += 2;
            }
            "--save-failures" => {
                opts.save_failures = Some(args.get(i + 1)?.clone());
                i += 2;
            }
            "--profile" => {
                opts.profile_file = Some(args.get(i + 1)?.clone());
                i += 2;
            }
            _ => return None,
        }
    }
    Some(opts)
}

/// Default regression corpus location, used when it exists and no explicit
/// `--regressions` directory was given.
const DEFAULT_REGRESSIONS: &str = "tests/data/fuzz_regressions";

fn cmd_fuzz(opts: &FuzzOpts) -> Result<ExitCode, Error> {
    let mut failed = false;

    // Replay the committed regression corpus first: fast, deterministic,
    // and exactly what the CI smoke job gates on.
    let regression_dir = opts
        .regressions
        .clone()
        .or_else(|| {
            std::path::Path::new(DEFAULT_REGRESSIONS)
                .is_dir()
                .then(|| DEFAULT_REGRESSIONS.to_owned())
        });
    if let Some(dir) = &regression_dir {
        let replays = replay_regressions(std::path::Path::new(dir), HbConfig::new())?;
        let mut clean = 0usize;
        for (path, divergences) in &replays {
            if divergences.is_empty() {
                clean += 1;
            } else {
                failed = true;
                eprintln!("regression {} DIVERGES:", path.display());
                for d in divergences {
                    eprintln!("  {d}");
                }
            }
        }
        println!(
            "regressions: {clean}/{} clean ({dir})",
            replays.len()
        );
    }

    let mut rec = Recorder::new();
    rec.start("fuzz");
    let report = droidracer::fuzz::run_fuzz(&opts.config);
    rec.counter("iterations", report.iterations);
    rec.counter("trace_ops", report.total_ops);
    rec.counter("races", report.races_found);
    rec.end();
    print!("{}", report.render());
    if report.oracle_divergences() > 0 {
        failed = true;
    }

    if let Some(dir) = &opts.save_failures {
        for f in &report.failures {
            if let Some(shrunk) = &f.shrunk {
                let name = format!("seed_{:x}_iter_{}", f.master_seed, f.iteration);
                let path = save_regression(std::path::Path::new(dir), &name, shrunk)?;
                println!("shrunk failing trace written to {}", path.display());
            }
        }
    }

    if let Some(file) = &opts.profile_file {
        let mut metrics = MetricsRegistry::new();
        report.export_metrics(&mut metrics);
        let root = rec.finish_root();
        std::fs::write(file, chrome_trace(std::slice::from_ref(&root), &metrics))?;
        print!("{}", render_span_tree(&root));
        println!("profile written to {file}");
    }

    Ok(if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn cmd_explore(entry: &apps::CorpusEntry, depth: usize, profile: Option<&str>) -> Result<ExitCode, Error> {
    let (summary, span) = entry.explore_profiled(depth, 64, 1)?;
    println!(
        "{}: {} tests (depth {depth}), {} manifested races; {} racy locations; union {}",
        entry.name, summary.tests, summary.racy_tests, summary.racy_locations, summary.union
    );
    if let Some(file) = profile {
        let mut metrics = MetricsRegistry::new();
        metrics.counter_add("explore.tests", summary.tests as u64);
        metrics.counter_add("explore.racy_tests", summary.racy_tests as u64);
        metrics.counter_add("explore.racy_locations", summary.racy_locations as u64);
        std::fs::write(file, chrome_trace(std::slice::from_ref(&span), &metrics))?;
        print!("{}", render_span_tree(&span));
        println!("profile written to {file}");
    }
    Ok(ExitCode::SUCCESS)
}

struct StreamOpts {
    mode: HbMode,
    merge: bool,
    chunk_ops: usize,
    summarize: bool,
    window: usize,
    quiet: bool,
    profile_file: Option<String>,
    budget: Budget,
}

fn parse_stream_opts(args: &[String]) -> Option<StreamOpts> {
    let mut opts = StreamOpts {
        mode: HbMode::Full,
        merge: true,
        chunk_ops: 64,
        summarize: false,
        window: 128,
        quiet: false,
        profile_file: None,
        budget: Budget::unlimited(),
    };
    let mut i = 0;
    while i < args.len() {
        let advanced = parse_budget_flag(args, i, &mut opts.budget)?;
        if advanced != i {
            i = advanced;
            continue;
        }
        match args[i].as_str() {
            "--mode" => {
                opts.mode = args.get(i + 1).and_then(|s| parse_mode(s))?;
                i += 2;
            }
            "--no-merge" => {
                opts.merge = false;
                i += 1;
            }
            "--chunk-ops" => {
                opts.chunk_ops = args.get(i + 1).and_then(|s| s.parse().ok()).filter(|&n| n > 0)?;
                i += 2;
            }
            "--summarize" => {
                opts.summarize = true;
                i += 1;
            }
            "--window" => {
                opts.window = args.get(i + 1).and_then(|s| s.parse().ok()).filter(|&n| n > 0)?;
                i += 2;
            }
            "--quiet" => {
                opts.quiet = true;
                i += 1;
            }
            "--profile" => {
                opts.profile_file = Some(args.get(i + 1)?.clone());
                i += 2;
            }
            _ => return None,
        }
    }
    Some(opts)
}

/// Renders one live stream event; `+` marks an emission, `-` a retraction.
fn render_stream_event(sign: char, ev: &RaceEvent, names: &Names) -> String {
    format!(
        "{sign} [{}] {} on {} (ops {}, {}) at op {}\n",
        ev.category,
        ev.race.kind,
        names.loc_name(ev.race.loc),
        ev.race.first,
        ev.race.second,
        ev.at,
    )
}

fn cmd_stream(path: &str, opts: &StreamOpts) -> Result<ExitCode, Error> {
    use std::io::BufRead;

    let rec = Recorder::new();
    let builder = AnalysisBuilder::new()
        .mode(opts.mode)
        .merge_accesses(opts.merge)
        .budget(opts.budget)
        .clock_origin(rec.origin());
    let mut session = builder.streaming(StreamOptions {
        summarize: opts.summarize,
        window: opts.window,
        budget: None,
    });

    let stdin = std::io::stdin();
    let mut reader: Box<dyn BufRead> = if path == "-" {
        Box::new(stdin.lock())
    } else {
        Box::new(std::io::BufReader::new(std::fs::File::open(path)?))
    };
    let mut chunked = ChunkedReader::new();
    let mut pending: Vec<droidracer::trace::Op> = Vec::new();
    let mut line = String::new();

    let flush = |session: &mut droidracer::core::StreamingSession,
                     pending: &mut Vec<droidracer::trace::Op>,
                     names: &Names|
     -> Result<Option<ExitCode>, Error> {
        match session.push_chunk(pending) {
            Ok(events) => {
                if !opts.quiet {
                    for ev in &events {
                        match ev {
                            StreamEvent::Emitted(e) => print!("{}", render_stream_event('+', e, names)),
                            StreamEvent::Retracted(e) => print!("{}", render_stream_event('-', e, names)),
                        }
                    }
                }
                pending.clear();
                Ok(None)
            }
            Err(AnalysisError::BudgetExhausted(e)) => {
                eprintln!("{e}");
                Ok(Some(ExitCode::from(EXIT_QUARANTINE)))
            }
            Err(e) => Err(e.into()),
        }
    };

    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        pending.extend(chunked.push_text(&line)?);
        if pending.len() >= opts.chunk_ops {
            if let Some(code) = flush(&mut session, &mut pending, chunked.names())? {
                return Ok(code);
            }
        }
    }
    let (names, rest, diags) = chunked.finish()?;
    pending.extend(rest);
    for d in &diags {
        eprintln!("repair: {d}");
    }
    if !diags.is_empty() {
        eprintln!("{} malformed line(s) skipped", diags.len());
    }
    if !pending.is_empty() {
        if let Some(code) = flush(&mut session, &mut pending, &names)? {
            return Ok(code);
        }
    }

    let report = match session.finish(&names) {
        Ok(r) => r,
        Err(AnalysisError::BudgetExhausted(e)) => {
            eprintln!("{e}");
            return Ok(ExitCode::from(EXIT_QUARANTINE));
        }
        Err(e) => return Err(e.into()),
    };
    if !opts.quiet {
        for ev in &report.outcome.events {
            match ev {
                StreamEvent::Emitted(e) => print!("{}", render_stream_event('+', e, &names)),
                StreamEvent::Retracted(e) => print!("{}", render_stream_event('-', e, &names)),
            }
        }
    }
    let s = report.outcome.stats;
    println!(
        "{} race(s) in {} op(s), {} chunk(s); emitted={} retracted={} late={} rebuilds={} retired_rows={}{}",
        report.outcome.races.len(),
        s.ops,
        s.chunks,
        s.races_emitted,
        s.retractions,
        s.late_emissions,
        s.rebuilds,
        s.retired_rows,
        if s.degenerate { " (degenerate: batch fallback)" } else { "" },
    );
    for cat in droidracer::core::RaceCategory::all() {
        let n = report.outcome.counts.get(cat);
        if n > 0 {
            println!("  {cat}: {n}");
        }
    }
    if let Some(file) = &opts.profile_file {
        std::fs::write(
            file,
            chrome_trace(std::slice::from_ref(&report.spans), &report.metrics),
        )?;
        print!("{}", render_span_tree(&report.spans));
        println!("profile written to {file}");
    }
    Ok(if report.outcome.races.is_empty() {
        ExitCode::from(EXIT_CLEAN)
    } else {
        ExitCode::from(EXIT_RACES)
    })
}

struct ServeOpts {
    listen: String,
    socket: Option<String>,
    config: ServerConfig,
}

fn parse_serve_opts(args: &[String]) -> Option<ServeOpts> {
    let mut opts = ServeOpts {
        listen: "127.0.0.1:7911".to_owned(),
        socket: None,
        config: ServerConfig {
            shards: 2,
            ..ServerConfig::default()
        },
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--listen" => {
                opts.listen = args.get(i + 1)?.clone();
                i += 2;
            }
            "--socket" => {
                opts.socket = Some(args.get(i + 1)?.clone());
                i += 2;
            }
            "--shards" => {
                opts.config.shards = args.get(i + 1).and_then(|s| s.parse().ok()).filter(|&n| n > 0)?;
                i += 2;
            }
            "--tenants" => {
                let list = args.get(i + 1)?;
                opts.config.allowed_tenants =
                    Some(list.split(',').map(str::to_owned).collect());
                i += 2;
            }
            "--max-trace-bytes" => {
                opts.config.max_trace_bytes = args.get(i + 1).and_then(|s| s.parse().ok())?;
                i += 2;
            }
            "--tenant-quota-ops" => {
                opts.config.tenant_quota_ops = Some(args.get(i + 1).and_then(|s| parse_u64(s))?);
                i += 2;
            }
            "--max-job-ops" => {
                opts.config.max_job_ops = Some(args.get(i + 1).and_then(|s| parse_u64(s))?);
                i += 2;
            }
            "--max-job-matrix-bits" => {
                opts.config.max_job_matrix_bits = Some(args.get(i + 1).and_then(|s| parse_u64(s))?);
                i += 2;
            }
            "--cache" => {
                opts.config.cache_path = Some(args.get(i + 1)?.into());
                i += 2;
            }
            "--queue-depth" => {
                opts.config.queue_depth =
                    args.get(i + 1).and_then(|s| s.parse().ok()).filter(|&n| n > 0)?;
                i += 2;
            }
            "--conn-timeout-ms" => {
                opts.config.conn_timeout_ms =
                    Some(args.get(i + 1).and_then(|s| parse_u64(s)).filter(|&n| n > 0)?);
                i += 2;
            }
            _ => return None,
        }
    }
    Some(opts)
}

fn cmd_serve(opts: ServeOpts) -> ExitCode {
    let bound = match &opts.socket {
        Some(path) => Server::bind_unix(std::path::Path::new(path), opts.config.clone())
            .map(|s| (s, path.clone())),
        None => Server::bind_tcp(&opts.listen, opts.config.clone()).map(|s| {
            let addr = s
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|| opts.listen.clone());
            (s, addr)
        }),
    };
    match bound {
        Ok((server, addr)) => {
            println!(
                "listening on {addr} ({} shard(s))",
                opts.config.shards.max(1)
            );
            match server.run() {
                Ok(()) => ExitCode::from(EXIT_CLEAN),
                Err(e) => {
                    eprintln!("server failed: {e}");
                    ExitCode::from(EXIT_FATAL)
                }
            }
        }
        Err(e) => {
            eprintln!("cannot bind: {e}");
            ExitCode::from(EXIT_FATAL)
        }
    }
}

/// What a `submit` invocation asks the server to do.
enum SubmitAction {
    Job(String),
    Status,
    Shutdown,
}

struct SubmitOpts {
    action: SubmitAction,
    connect: String,
    socket: Option<String>,
    tenant: String,
    spec: JobSpec,
    stream: bool,
    chunk_ops: usize,
    retries: u32,
    retry_timeout_ms: Option<u64>,
}

impl SubmitOpts {
    /// The retry policy these flags ask for: fail-fast by default, the
    /// standard backoff schedule (with an optional overall deadline) when
    /// `--retries` is given.
    fn retry_policy(&self) -> RetryPolicy {
        if self.retries == 0 && self.retry_timeout_ms.is_none() {
            return RetryPolicy::none();
        }
        RetryPolicy {
            max_retries: self.retries,
            deadline_ms: self.retry_timeout_ms,
            ..RetryPolicy::standard()
        }
    }
}

fn parse_submit_opts(args: &[String]) -> Option<SubmitOpts> {
    let mut opts = SubmitOpts {
        action: SubmitAction::Job(String::new()),
        connect: "127.0.0.1:7911".to_owned(),
        socket: None,
        tenant: "cli".to_owned(),
        spec: JobSpec::default(),
        stream: false,
        chunk_ops: 64,
        retries: 0,
        retry_timeout_ms: None,
    };
    let mut path: Option<String> = None;
    let mut status = false;
    let mut shutdown = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--status" => {
                status = true;
                i += 1;
            }
            "--shutdown" => {
                shutdown = true;
                i += 1;
            }
            "--connect" => {
                opts.connect = args.get(i + 1)?.clone();
                i += 2;
            }
            "--socket" => {
                opts.socket = Some(args.get(i + 1)?.clone());
                i += 2;
            }
            "--tenant" => {
                opts.tenant = args.get(i + 1)?.clone();
                i += 2;
            }
            "--stream" => {
                opts.stream = true;
                i += 1;
            }
            "--chunk-ops" => {
                opts.chunk_ops = args.get(i + 1).and_then(|s| s.parse().ok()).filter(|&n| n > 0)?;
                i += 2;
            }
            "--retries" => {
                opts.retries = args.get(i + 1).and_then(|s| s.parse().ok())?;
                i += 2;
            }
            "--retry-timeout-ms" => {
                opts.retry_timeout_ms =
                    Some(args.get(i + 1).and_then(|s| parse_u64(s)).filter(|&n| n > 0)?);
                i += 2;
            }
            "--mode" => {
                opts.spec.mode = args.get(i + 1).and_then(|s| parse_mode(s))?;
                i += 2;
            }
            "--no-merge" => {
                opts.spec.merge_accesses = false;
                i += 1;
            }
            "--validate" => {
                opts.spec.validate = true;
                i += 1;
            }
            "--lenient" => {
                opts.spec.lenient = true;
                i += 1;
            }
            "--max-ops" => {
                opts.spec.max_ops = Some(args.get(i + 1).and_then(|s| parse_u64(s))?);
                i += 2;
            }
            "--max-matrix-bits" => {
                opts.spec.max_matrix_bits = Some(args.get(i + 1).and_then(|s| parse_u64(s))?);
                i += 2;
            }
            "--deadline-ms" => {
                opts.spec.deadline_ms = Some(args.get(i + 1).and_then(|s| parse_u64(s))?);
                i += 2;
            }
            flag if flag.starts_with("--") => return None,
            file => {
                if path.is_some() {
                    return None;
                }
                path = Some(file.to_owned());
                i += 1;
            }
        }
    }
    opts.action = match (status, shutdown, path) {
        (true, false, None) => SubmitAction::Status,
        (false, true, None) => SubmitAction::Shutdown,
        (false, false, Some(p)) => SubmitAction::Job(p),
        _ => return None,
    };
    Some(opts)
}

fn cmd_submit(opts: &SubmitOpts) -> Result<ExitCode, Error> {
    // Lazy construction: the first dial happens inside the retry loop, so
    // `--retries` also covers a server that is briefly down or restarting.
    let mut client = match &opts.socket {
        Some(path) => Client::lazy_unix(std::path::Path::new(path), opts.tenant.clone()),
        None => Client::lazy_tcp(&opts.connect, opts.tenant.clone()),
    }
    .with_retry_policy(opts.retry_policy())?;
    let path = match &opts.action {
        SubmitAction::Status => {
            print!("{}", client.status()?);
            return Ok(ExitCode::from(EXIT_CLEAN));
        }
        SubmitAction::Shutdown => {
            client.shutdown()?;
            println!("server shut down");
            return Ok(ExitCode::from(EXIT_CLEAN));
        }
        SubmitAction::Job(path) => path,
    };
    let text = std::fs::read_to_string(path)?;
    let submission = if opts.stream {
        client.submit_stream(&opts.spec, &text, 4096, opts.chunk_ops as u32)?
    } else {
        client.submit_trace(&opts.spec, &text)?
    };
    match submission {
        Submission::Done { cache_hit, report } => {
            println!("cache {}", if cache_hit { "hit" } else { "miss" });
            print!("{}", report.render());
            Ok(ExitCode::from(report.exit.code()))
        }
        Submission::Rejected { reason } => {
            eprintln!("rejected: {reason}");
            Ok(ExitCode::from(EXIT_FATAL))
        }
        // Load shedding that outlasted the retry budget (or was met with
        // `--retries 0`): a transient refusal, reported as fatal so scripts
        // distinguish "try again later" from a clean/raced/quarantined job.
        Submission::Overloaded { retry_after_ms } => {
            eprintln!("server overloaded; retry after {retry_after_ms} ms");
            Ok(ExitCode::from(EXIT_FATAL))
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    match command.as_str() {
        "analyze" => {
            let Some(path) = args.get(1) else { return usage() };
            let Some(opts) = parse_analyze_opts(&args[2..]) else {
                return usage();
            };
            match cmd_analyze(path, &opts) {
                Ok(code) => code,
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::from(EXIT_FATAL)
                }
            }
        }
        "validate" => {
            let Some(path) = args.get(1) else { return usage() };
            match load(path).map(|t| validate(&t)) {
                Ok(Ok(())) => {
                    println!("ok: trace satisfies the concurrency semantics");
                    ExitCode::from(EXIT_CLEAN)
                }
                Ok(Err(e)) => {
                    eprintln!("invalid: {e}");
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::from(EXIT_FATAL)
                }
            }
        }
        "stats" => {
            let Some(path) = args.get(1) else { return usage() };
            match load(path) {
                Ok(t) => {
                    println!("{}", TraceStats::of(&t));
                    ExitCode::from(EXIT_CLEAN)
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::from(EXIT_FATAL)
                }
            }
        }
        "corpus" => {
            let Some(name) = args.get(1) else { return usage() };
            if name == "--analyze" {
                let Some(opts) = parse_corpus_analyze_opts(&args[2..]) else {
                    return usage();
                };
                return cmd_corpus_analyze(&opts);
            }
            let entry = match find_entry(name) {
                Ok(e) => e,
                Err(code) => return code,
            };
            let trace = match entry.generate_trace() {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("{}", Error::from(e));
                    return ExitCode::from(EXIT_FATAL);
                }
            };
            let text = to_text(&trace);
            match args.get(2).map(String::as_str) {
                Some("--out") => {
                    let Some(file) = args.get(3) else { return usage() };
                    if let Err(e) = std::fs::write(file, text) {
                        eprintln!("cannot write {file}: {e}");
                        return ExitCode::from(EXIT_FATAL);
                    }
                    println!("wrote {} ops to {file}", trace.len());
                }
                None => print!("{text}"),
                _ => return usage(),
            }
            ExitCode::from(EXIT_CLEAN)
        }
        "explore" => {
            let Some(name) = args.get(1) else { return usage() };
            let mut depth = 2usize;
            let mut profile: Option<String> = None;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--profile" => {
                        let Some(f) = args.get(i + 1) else { return usage() };
                        profile = Some(f.clone());
                        i += 2;
                    }
                    d => {
                        let Ok(parsed) = d.parse() else { return usage() };
                        depth = parsed;
                        i += 1;
                    }
                }
            }
            let entry = match find_entry(name) {
                Ok(e) => e,
                Err(code) => return code,
            };
            match cmd_explore(&entry, depth, profile.as_deref()) {
                Ok(code) => code,
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::from(EXIT_FATAL)
                }
            }
        }
        "stream" => {
            let (path, rest) = match args.get(1) {
                Some(a) if !a.starts_with("--") => (a.as_str(), &args[2..]),
                _ => ("-", &args[1..]),
            };
            let Some(opts) = parse_stream_opts(rest) else {
                return usage();
            };
            match cmd_stream(path, &opts) {
                Ok(code) => code,
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::from(EXIT_FATAL)
                }
            }
        }
        "serve" => {
            let Some(opts) = parse_serve_opts(&args[1..]) else {
                return usage();
            };
            cmd_serve(opts)
        }
        "submit" => {
            let Some(opts) = parse_submit_opts(&args[1..]) else {
                return usage();
            };
            match cmd_submit(&opts) {
                Ok(code) => code,
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::from(EXIT_FATAL)
                }
            }
        }
        "fuzz" => {
            let Some(opts) = parse_fuzz_opts(&args[1..]) else {
                return usage();
            };
            match cmd_fuzz(&opts) {
                Ok(code) => code,
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::from(EXIT_FATAL)
                }
            }
        }
        _ => usage(),
    }
}
