//! Fault injection: seeded trace corruption, injected panics, and budget
//! starvation.
//!
//! The robustness contract under test: *no corrupted input or injected
//! fault ever panics the process or poisons sibling results*. Corrupted
//! trace text must parse to either a diagnosed repair
//! ([`droidracer_trace::from_text_lenient`]) or a clean
//! [`droidracer_trace::ParseTraceError`]; a fault injected into one input
//! of an isolated batch ([`analyze_isolated`]) must quarantine exactly
//! that input, leaving every sibling's report bit-identical to a
//! fault-free run.
//!
//! Everything here is deterministic: corruption is a pure function of
//! `(text, seed)`, and batches fan out through
//! [`droidracer_core::par_try_map`], whose merge is index-ordered.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use droidracer_core::{
    par_try_map, AnalysisBuilder, AnalysisError, Budget, ItemError, QuarantineCause, Quarantined,
};
use droidracer_trace::{from_text, from_text_lenient, to_text};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// The byte-level corruption a seed maps to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorruptionKind {
    /// One bit of one byte flipped.
    BitFlip,
    /// The tail of the file cut off mid-record.
    Truncate,
    /// One record (line) duplicated in place.
    DuplicateRecord,
    /// One whitespace-separated field of one record replaced with junk.
    ScrambleField,
}

impl CorruptionKind {
    /// All kinds, in the order seeds select them.
    pub fn all() -> [CorruptionKind; 4] {
        [
            CorruptionKind::BitFlip,
            CorruptionKind::Truncate,
            CorruptionKind::DuplicateRecord,
            CorruptionKind::ScrambleField,
        ]
    }
}

impl fmt::Display for CorruptionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CorruptionKind::BitFlip => "bit-flip",
            CorruptionKind::Truncate => "truncate",
            CorruptionKind::DuplicateRecord => "duplicate-record",
            CorruptionKind::ScrambleField => "scramble-field",
        })
    }
}

/// Applies one seeded corruption to `text`, returning the corrupted bytes
/// (lossily re-decoded, as an ingestion boundary would) and the kind
/// applied. Pure function of `(text, seed)`.
pub fn corrupt(text: &str, seed: u64) -> (String, CorruptionKind) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let kind = CorruptionKind::all()[(rng.next_u64() % 4) as usize];
    let mut bytes = text.as_bytes().to_vec();
    match kind {
        CorruptionKind::BitFlip => {
            if !bytes.is_empty() {
                let at = (rng.next_u64() as usize) % bytes.len();
                let bit = (rng.next_u64() % 8) as u8;
                bytes[at] ^= 1 << bit;
            }
        }
        CorruptionKind::Truncate => {
            if !bytes.is_empty() {
                let at = (rng.next_u64() as usize) % bytes.len();
                bytes.truncate(at);
            }
        }
        CorruptionKind::DuplicateRecord => {
            let lines: Vec<&[u8]> = split_records(&bytes);
            if !lines.is_empty() {
                let at = (rng.next_u64() as usize) % lines.len();
                let mut out = Vec::with_capacity(bytes.len() + lines[at].len());
                for (i, l) in lines.iter().enumerate() {
                    out.extend_from_slice(l);
                    if i == at {
                        out.extend_from_slice(l);
                    }
                }
                bytes = out;
            }
        }
        CorruptionKind::ScrambleField => {
            let line_count = bytes.split(|&b| b == b'\n').count();
            let target = (rng.next_u64() as usize) % line_count.max(1);
            let junk = [b"xyzzy".as_slice(), b"-1", b"t9999999999", b"\"", b"9 9"]
                [(rng.next_u64() % 5) as usize];
            let mut out = Vec::with_capacity(bytes.len());
            for (i, line) in bytes.split(|&b| b == b'\n').enumerate() {
                if i > 0 {
                    out.push(b'\n');
                }
                if i == target {
                    let fields: Vec<&[u8]> = line.split(|&b| b == b' ').collect();
                    if fields.is_empty() {
                        out.extend_from_slice(junk);
                    } else {
                        let f = (rng.next_u64() as usize) % fields.len();
                        for (j, field) in fields.iter().enumerate() {
                            if j > 0 {
                                out.push(b' ');
                            }
                            out.extend_from_slice(if j == f { junk } else { field });
                        }
                    }
                } else {
                    out.extend_from_slice(line);
                }
            }
            bytes = out;
        }
    }
    (String::from_utf8_lossy(&bytes).into_owned(), kind)
}

/// Splits `bytes` into newline-terminated records (terminators kept).
fn split_records(bytes: &[u8]) -> Vec<&[u8]> {
    let mut out = Vec::new();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            out.push(&bytes[start..=i]);
            start = i + 1;
        }
    }
    if start < bytes.len() {
        out.push(&bytes[start..]);
    }
    out
}

/// Outcome tally of a corruption storm ([`storm`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StormReport {
    /// Corruptions applied.
    pub total: u64,
    /// Inputs that parsed with zero diagnostics (the corruption landed in
    /// an already-ignored spot, or cancelled itself out).
    pub clean: u64,
    /// Inputs salvaged by the lenient parser with ≥ 1 repair diagnostic.
    pub repaired: u64,
    /// Inputs rejected with a clean typed `ParseTraceError` (no consistent
    /// prefix — e.g. a corrupted header).
    pub parse_errors: u64,
    /// Parses that panicked. The contract is that this is always zero.
    pub panics: u64,
}

/// Runs `count` seeded corruptions of `text` through the lenient parser,
/// each inside a panic boundary, and tallies the outcomes. For every
/// salvaged input the repair must be a *fixed point*: re-parsing the
/// repaired trace's serialization yields zero further diagnostics. A
/// non-converging repair counts as a panic (contract violation).
pub fn storm(text: &str, base_seed: u64, count: u64) -> StormReport {
    let mut report = StormReport::default();
    for i in 0..count {
        report.total += 1;
        let (bad, _kind) = corrupt(text, base_seed.wrapping_add(i));
        let outcome = catch_unwind(AssertUnwindSafe(|| match from_text_lenient(&bad) {
            Ok((trace, diags)) => {
                match from_text_lenient(&to_text(&trace)) {
                    Ok((again, rediags)) if rediags.is_empty() && again.ops() == trace.ops() => {}
                    _ => return None, // repair must be a fixed point
                }
                Some(if diags.is_empty() { (1u8, 0u8, 0u8) } else { (0, 1, 0) })
            }
            Err(_) => Some((0, 0, 1)),
        }));
        match outcome {
            Ok(Some((c, r, p))) => {
                report.clean += u64::from(c);
                report.repaired += u64::from(r);
                report.parse_errors += u64::from(p);
            }
            _ => report.panics += 1,
        }
    }
    report
}

/// A fault to inject into exactly one input of an isolated batch.
#[derive(Debug, Clone)]
pub enum InjectedFault {
    /// Panic from the session's fault hook when the named phase starts
    /// (`"prepare"`, `"graph"`, `"closure"`, `"detect"`, …).
    PanicAtPhase(&'static str),
    /// Starve the analysis: a zero-op budget, exhausted on first poll.
    Starvation,
}

/// Analyzes a batch of named trace texts with per-item fault isolation,
/// optionally injecting `fault` into the input at index `fault_at.0`.
///
/// Returns, per input in order, either a deterministic result fingerprint
/// (engine counters + classified races — bit-identical across runs and
/// thread counts) or the [`Quarantined`] verdict. Parse failures quarantine
/// with [`QuarantineCause::Error`]; repairs are applied silently (the
/// fingerprint covers the repaired trace).
pub fn analyze_isolated(
    inputs: &[(String, String)],
    threads: usize,
    fault_at: Option<(usize, InjectedFault)>,
) -> Vec<Result<String, Quarantined>> {
    let results = par_try_map(inputs, threads, |(name, text)| {
        let (trace, _diags) =
            from_text_lenient(text).map_err(|e| AnalysisErrorLike::Parse(e.to_string()))?;
        let mut builder = AnalysisBuilder::new();
        if let Some((at, fault)) = &fault_at {
            if inputs[*at].0 == *name {
                match fault {
                    InjectedFault::PanicAtPhase(phase) => {
                        let phase = *phase;
                        builder = builder.fault_hook(Arc::new(move |p: &str| {
                            assert!(p != phase, "injected fault at phase `{p}`");
                        }));
                    }
                    InjectedFault::Starvation => {
                        builder = builder.budget(Budget::unlimited().with_max_ops(0));
                    }
                }
            }
        }
        let analysis = builder.analyze(&trace).map_err(AnalysisErrorLike::Analysis)?;
        let races: Vec<String> = analysis
            .representatives()
            .iter()
            .map(|cr| format!("{}@{:?}", cr.category.label(), cr.race.loc))
            .collect();
        Ok(format!("{:?}|{}", analysis.hb().stats(), races.join(",")))
    });
    results
        .into_iter()
        .zip(inputs)
        .map(|(result, (name, _))| {
            result.map_err(|err| {
                let (cause, payload) = match err {
                    ItemError::Panic(msg) => (QuarantineCause::Panic, msg),
                    ItemError::Err(AnalysisErrorLike::Analysis(AnalysisError::BudgetExhausted(
                        e,
                    ))) => (QuarantineCause::BudgetExhausted(e.reason), e.to_string()),
                    ItemError::Err(AnalysisErrorLike::Analysis(e)) => {
                        (QuarantineCause::Error, e.to_string())
                    }
                    ItemError::Err(AnalysisErrorLike::Parse(msg)) => {
                        (QuarantineCause::Error, msg)
                    }
                };
                Quarantined {
                    input: name.clone(),
                    cause,
                    payload,
                }
            })
        })
        .collect()
}

/// The per-item error of [`analyze_isolated`]: a parse rejection or a
/// session failure.
#[derive(Debug)]
enum AnalysisErrorLike {
    Parse(String),
    Analysis(AnalysisError),
}

/// Sanity check used by tests and the CI smoke: strict parsing of a clean
/// text round-trips (no repairs, identical ops).
pub fn roundtrips_clean(text: &str) -> bool {
    match (from_text(text), from_text_lenient(text)) {
        (Ok(strict), Ok((lenient, diags))) => {
            diags.is_empty() && strict.ops() == lenient.ops()
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use droidracer_trace::{to_text, ThreadKind, Trace, TraceBuilder};

    fn sample_trace() -> Trace {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg = b.thread("bg", ThreadKind::App, true);
        let l = b.lock("m");
        let loc = b.loc("o", "C.f");
        b.thread_init(main);
        b.attach_q(main);
        b.loop_on_q(main);
        b.thread_init(bg);
        for k in 0..6 {
            let t = b.task(format!("T{k}"));
            b.post(bg, t, main);
            b.begin(main, t);
            b.write(main, loc);
            b.end(main, t);
            b.acquire(bg, l);
            b.write(bg, loc);
            b.release(bg, l);
        }
        b.finish()
    }

    fn inputs() -> Vec<(String, String)> {
        (0..4)
            .map(|i| (format!("in{i}"), to_text(&sample_trace())))
            .collect()
    }

    #[test]
    fn corruption_is_deterministic() {
        let text = to_text(&sample_trace());
        for seed in 0..32 {
            assert_eq!(corrupt(&text, seed), corrupt(&text, seed));
        }
    }

    #[test]
    fn all_corruption_kinds_are_reachable() {
        let text = to_text(&sample_trace());
        let mut seen = std::collections::HashSet::new();
        for seed in 0..64 {
            seen.insert(corrupt(&text, seed).1);
        }
        assert_eq!(seen.len(), 4, "{seen:?}");
    }

    #[test]
    fn corruption_storm_never_panics() {
        let report = storm(&to_text(&sample_trace()), 0xFA_17, 300);
        assert_eq!(report.panics, 0, "{report:?}");
        assert_eq!(
            report.clean + report.repaired + report.parse_errors,
            report.total,
            "{report:?}"
        );
        // A storm this size must exercise both salvage and rejection.
        assert!(report.repaired > 0, "{report:?}");
        assert!(report.parse_errors > 0, "{report:?}");
    }

    #[test]
    fn clean_text_roundtrips_without_repairs() {
        assert!(roundtrips_clean(&to_text(&sample_trace())));
    }

    #[test]
    fn injected_panic_quarantines_only_the_target() {
        let inputs = inputs();
        for threads in [1, 4] {
            let clean = analyze_isolated(&inputs, threads, None);
            assert!(clean.iter().all(Result::is_ok));
            for phase in ["prepare", "closure", "detect"] {
                let faulty = analyze_isolated(
                    &inputs,
                    threads,
                    Some((2, InjectedFault::PanicAtPhase(phase))),
                );
                for (i, (a, b)) in clean.iter().zip(&faulty).enumerate() {
                    if i == 2 {
                        let q = b.as_ref().expect_err("target must be quarantined");
                        assert_eq!(q.cause, QuarantineCause::Panic, "phase {phase}");
                        assert!(q.payload.contains(phase), "payload: {}", q.payload);
                    } else {
                        // Sibling bit-identity: with and without the faulty
                        // sibling, byte-for-byte the same fingerprint.
                        assert_eq!(a, b, "sibling {i} poisoned at phase {phase}");
                    }
                }
            }
        }
    }

    #[test]
    fn budget_starvation_quarantines_only_the_target() {
        let inputs = inputs();
        let clean = analyze_isolated(&inputs, 4, None);
        let starved = analyze_isolated(&inputs, 4, Some((1, InjectedFault::Starvation)));
        for (i, (a, b)) in clean.iter().zip(&starved).enumerate() {
            if i == 1 {
                let q = b.as_ref().expect_err("starved input must be quarantined");
                assert!(
                    matches!(q.cause, QuarantineCause::BudgetExhausted(_)),
                    "{q}"
                );
            } else {
                assert_eq!(a, b, "sibling {i} poisoned by starvation");
            }
        }
    }

    #[test]
    fn corrupt_input_quarantines_as_error_when_unsalvageable() {
        let mut inputs = inputs();
        // Destroy the header: no consistent prefix exists.
        inputs[0].1 = format!("garbage\n{}", inputs[0].1);
        let results = analyze_isolated(&inputs, 2, None);
        let q = results[0].as_ref().expect_err("bad header must quarantine");
        assert_eq!(q.cause, QuarantineCause::Error);
        assert!(results[1..].iter().all(Result::is_ok));
    }
}
