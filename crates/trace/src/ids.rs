//! Identifier newtypes for the entities appearing in execution traces.
//!
//! Every entity in a trace — threads, asynchronous tasks, locks, events and
//! memory locations — is referred to by a small integer id. Human-readable
//! names live in [`crate::Names`] and are only consulted for display.
//! Newtypes keep the different id spaces statically apart (C-NEWTYPE).

use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index of this id.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                $name(raw)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_newtype!(
    /// A thread of control (`t0`, `t1`, … in the paper's traces).
    ThreadId,
    "t"
);
id_newtype!(
    /// One *instance* of an asynchronously posted procedure.
    ///
    /// The paper assumes every procedure occurs at most once per trace by
    /// uniquely renaming occurrences; a `TaskId` is exactly that unique name.
    TaskId,
    "p"
);
id_newtype!(
    /// A lock object.
    LockId,
    "l"
);
id_newtype!(
    /// An environment event (a UI event or a lifecycle transition) whose
    /// handler gets enabled and later posted.
    EventId,
    "e"
);
id_newtype!(
    /// A field declaration (`Class.field`), shared by all objects of a class.
    FieldId,
    "f"
);
id_newtype!(
    /// A heap object instance.
    ObjectId,
    "o"
);

/// A memory location: a field of a particular heap object.
///
/// Table 2 of the paper counts distinct *fields*, while races on the same
/// field of different objects are reported separately; keeping both
/// components supports both granularities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MemLoc {
    /// The object whose field is accessed.
    pub object: ObjectId,
    /// The field being accessed.
    pub field: FieldId,
}

impl MemLoc {
    /// Creates a memory location from an object and a field.
    pub fn new(object: ObjectId, field: FieldId) -> Self {
        MemLoc { object, field }
    }
}

impl fmt::Display for MemLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.object, self.field)
    }
}

/// The role a thread plays in the Android runtime.
///
/// Table 2 of the paper excludes binder and other system threads from its
/// thread counts; tagging threads with their kind lets statistics do the
/// same.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ThreadKind {
    /// The application's main (UI) thread; owns the main looper.
    Main,
    /// A binder thread relaying calls from the system process.
    Binder,
    /// A thread created by the application or the framework on its behalf.
    #[default]
    App,
    /// Any other runtime-internal thread.
    System,
}

impl ThreadKind {
    /// Whether Table 2-style statistics count this thread.
    pub fn counts_in_stats(self) -> bool {
        matches!(self, ThreadKind::Main | ThreadKind::App)
    }
}

impl fmt::Display for ThreadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ThreadKind::Main => "main",
            ThreadKind::Binder => "binder",
            ThreadKind::App => "app",
            ThreadKind::System => "system",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_paper_prefixes() {
        assert_eq!(ThreadId(1).to_string(), "t1");
        assert_eq!(TaskId(7).to_string(), "p7");
        assert_eq!(LockId(0).to_string(), "l0");
        assert_eq!(EventId(3).to_string(), "e3");
        assert_eq!(MemLoc::new(ObjectId(2), FieldId(5)).to_string(), "o2.f5");
    }

    #[test]
    fn ids_order_by_raw_value() {
        assert!(ThreadId(0) < ThreadId(1));
        assert!(TaskId(3) > TaskId(2));
    }

    #[test]
    fn thread_kind_stat_filter_excludes_system_threads() {
        assert!(ThreadKind::Main.counts_in_stats());
        assert!(ThreadKind::App.counts_in_stats());
        assert!(!ThreadKind::Binder.counts_in_stats());
        assert!(!ThreadKind::System.counts_in_stats());
    }

    #[test]
    fn from_u32_roundtrips() {
        let t: ThreadId = 9u32.into();
        assert_eq!(t.index(), 9);
    }
}
