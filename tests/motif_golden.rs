//! Golden regression test pinning the component-corpus race counts — the
//! sibling of `table3_golden` for the 7 component-automaton applications.
//!
//! The committed snapshot in `tests/data/motif_counts.txt` records, for
//! every component-corpus entry, the reported and ground-truth-verified
//! race counts per §4.3 category. Any change to the detector, the
//! classifier, the component automata or the motifs that shifts a single
//! cell fails here and must be reviewed deliberately.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! BLESS=1 cargo test --test motif_golden
//! ```

use std::fmt::Write as _;

use droidracer::apps::{analyze_corpus_parallel, component_corpus, RaceCategory};
use droidracer::core::{default_threads, CategoryCounts};

const SNAPSHOT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/motif_counts.txt");
const SNAPSHOT: &str = include_str!("data/motif_counts.txt");

const CATEGORIES: [(RaceCategory, &str); 5] = [
    (RaceCategory::Multithreaded, "mt"),
    (RaceCategory::CrossPosted, "cross"),
    (RaceCategory::CoEnabled, "co"),
    (RaceCategory::Delayed, "delayed"),
    (RaceCategory::Unknown, "unknown"),
];

fn fmt_counts(c: &CategoryCounts) -> String {
    CATEGORIES
        .iter()
        .map(|(cat, label)| format!("{label}={}", c.get(*cat)))
        .collect::<Vec<_>>()
        .join(" ")
}

fn render_snapshot() -> String {
    let entries = component_corpus();
    let reports = analyze_corpus_parallel(&entries, default_threads());
    let mut out = String::from(
        "# Per-application component-corpus category counts (reported | verified true positives).\n\
         # Regenerate with: BLESS=1 cargo test --test motif_golden\n",
    );
    for (entry, report) in entries.iter().zip(reports) {
        let report = report.expect("component entries analyze");
        writeln!(
            out,
            "{:<16} reported: {:<48} verified: {}",
            entry.name,
            fmt_counts(&report.reported),
            fmt_counts(&report.verified),
        )
        .expect("string write");
    }
    out
}

#[test]
fn component_corpus_counts_match_golden_snapshot() {
    let current = render_snapshot();
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(SNAPSHOT_PATH, &current).expect("snapshot written");
        return;
    }
    assert_eq!(
        current, SNAPSHOT,
        "component-corpus category counts drifted from tests/data/motif_counts.txt; \
         if the change is intentional, regenerate with `BLESS=1 cargo test --test motif_golden`"
    );
}
