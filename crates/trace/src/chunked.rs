//! Incremental reading of the text format from arbitrarily-split chunks.
//!
//! The streaming analysis ingests traces as they are produced — from a
//! pipe, a socket, or a file that is still being written. Chunks of text
//! arrive at arbitrary boundaries, so a record (one line) may be torn
//! across two or more chunks. [`ChunkedReader`] buffers the torn tail,
//! yields only syntactically complete operations, and reuses the lenient
//! parser's per-line recovery: malformed lines become [`Diagnostic`]s with
//! a [`Repair::SkipOp`] repair instead of hard errors, exactly as
//! [`from_text_lenient`](crate::from_text_lenient) treats them.
//!
//! Semantic repairs (synthesized closes, truncated infeasible tasks) need
//! the whole trace and are *not* applied here; a streaming consumer that
//! needs them falls back to a batch re-analysis, which the core crate's
//! streaming session does automatically for structurally invalid streams.

use crate::format::{parse_line, Diagnostic, ParseTraceError, Repair, HEADER};
use crate::names::Names;
use crate::op::Op;

/// Reads the droidracer text format incrementally.
///
/// Push text in any-sized pieces with [`ChunkedReader::push_text`]; each
/// call returns the operations whose lines completed. Call
/// [`ChunkedReader::finish`] at end of input to flush a final unterminated
/// line and collect the accumulated name table and diagnostics.
///
/// ```
/// use droidracer_trace::ChunkedReader;
///
/// let text = "droidracer-trace v1\nthread t0 main initial \"main\"\nop threadinit t0\n";
/// let (a, b) = text.split_at(27); // mid-record split
/// let mut r = ChunkedReader::new();
/// let mut ops = r.push_text(a).unwrap();
/// ops.extend(r.push_text(b).unwrap());
/// let (names, rest, diags) = r.finish().unwrap();
/// ops.extend(rest);
/// assert_eq!(ops.len(), 1);
/// assert_eq!(names.thread_name(droidracer_trace::ThreadId(0)), "main");
/// assert!(diags.is_empty());
/// ```
#[derive(Debug)]
pub struct ChunkedReader {
    /// Unconsumed text after the last newline — at most one torn line.
    tail: String,
    names: Names,
    header_seen: bool,
    /// 1-based number of the last consumed line.
    line: usize,
    /// Absolute byte offset of the start of `tail` in the whole stream.
    offset: usize,
    diags: Vec<Diagnostic>,
}

impl ChunkedReader {
    /// An empty reader, expecting the format header first.
    pub fn new() -> Self {
        ChunkedReader {
            tail: String::new(),
            names: Names::new(),
            header_seen: false,
            line: 0,
            offset: 0,
            diags: Vec::new(),
        }
    }

    /// Feeds the next piece of text and returns the operations from every
    /// line it completed. The trailing partial line (if any) stays
    /// buffered for the next push.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] when the first complete line is not the
    /// format header — the one unrecoverable condition, matching
    /// [`from_text_lenient`](crate::from_text_lenient).
    pub fn push_text(&mut self, text: &str) -> Result<Vec<Op>, ParseTraceError> {
        self.tail.push_str(text);
        let mut ops = Vec::new();
        while let Some(nl) = self.tail.find('\n') {
            let raw: String = self.tail[..nl].to_string();
            self.tail.drain(..=nl);
            let start = self.offset;
            self.offset += nl + 1;
            self.line += 1;
            self.consume_line(&raw, start, &mut ops)?;
        }
        Ok(ops)
    }

    /// Ends the input: parses a final unterminated line if one is
    /// buffered, then returns the accumulated name table, any last
    /// operations, and the diagnostics for every skipped line.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] when the stream never produced the
    /// format header (including the empty stream).
    pub fn finish(mut self) -> Result<(Names, Vec<Op>, Vec<Diagnostic>), ParseTraceError> {
        let mut ops = Vec::new();
        if !self.tail.is_empty() {
            let raw = std::mem::take(&mut self.tail);
            let start = self.offset;
            self.line += 1;
            self.consume_line(&raw, start, &mut ops)?;
        }
        if !self.header_seen {
            return Err(ParseTraceError {
                line: 1,
                message: format!("missing header `{HEADER}`, got None"),
            });
        }
        Ok((self.names, ops, self.diags))
    }

    /// The name table accumulated from declaration lines so far.
    pub fn names(&self) -> &Names {
        &self.names
    }

    /// Diagnostics for malformed lines skipped so far.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Number of complete lines consumed so far.
    pub fn lines_consumed(&self) -> usize {
        self.line
    }

    fn consume_line(
        &mut self,
        raw: &str,
        start: usize,
        ops: &mut Vec<Op>,
    ) -> Result<(), ParseTraceError> {
        let content = raw.strip_suffix('\r').unwrap_or(raw);
        if !self.header_seen {
            if content.trim() == HEADER {
                self.header_seen = true;
                return Ok(());
            }
            return Err(ParseTraceError {
                line: self.line,
                message: format!("missing header `{HEADER}`, got {content:?}"),
            });
        }
        let l = content.trim();
        if l.is_empty() || l.starts_with('#') {
            return Ok(());
        }
        match parse_line(l, &mut self.names) {
            Ok(Some(op)) => ops.push(op),
            Ok(None) => {}
            Err(message) => self.diags.push(Diagnostic {
                line: self.line,
                span: (start, start + content.len()),
                message,
                repair: Repair::SkipOp,
            }),
        }
        Ok(())
    }
}

impl Default for ChunkedReader {
    fn default() -> Self {
        ChunkedReader::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::format::{from_text, to_text};
    use crate::ids::ThreadKind;

    fn sample_text() -> String {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg = b.thread("bg thread", ThreadKind::App, false);
        let t = b.task("work");
        let loc = b.loc("o", "C.f");
        b.thread_init(main);
        b.attach_q(main);
        b.loop_on_q(main);
        b.fork(main, bg);
        b.thread_init(bg);
        b.post(bg, t, main);
        b.begin(main, t);
        b.write(main, loc);
        b.end(main, t);
        b.read(bg, loc);
        to_text(&b.finish())
    }

    fn read_chunked(pieces: &[&str]) -> (Names, Vec<Op>, Vec<Diagnostic>) {
        let mut r = ChunkedReader::new();
        let mut ops = Vec::new();
        for p in pieces {
            ops.extend(r.push_text(p).expect("valid header"));
        }
        let (names, rest, diags) = r.finish().expect("valid header");
        ops.extend(rest);
        (names, ops, diags)
    }

    #[test]
    fn every_split_point_yields_the_batch_parse() {
        let text = sample_text();
        let batch = from_text(&text).expect("valid text");
        for k in 0..=text.len() {
            if !text.is_char_boundary(k) {
                continue;
            }
            let (names, ops, diags) = read_chunked(&[&text[..k], &text[k..]]);
            assert_eq!(ops, batch.ops(), "split at byte {k}");
            assert_eq!(&names, batch.names(), "split at byte {k}");
            assert!(diags.is_empty());
        }
    }

    #[test]
    fn one_byte_at_a_time_matches_batch() {
        let text = sample_text();
        let batch = from_text(&text).expect("valid text");
        let mut r = ChunkedReader::new();
        let mut ops = Vec::new();
        for c in text.chars() {
            ops.extend(r.push_text(&c.to_string()).unwrap());
        }
        let (names, rest, diags) = r.finish().unwrap();
        ops.extend(rest);
        assert_eq!(ops, batch.ops());
        assert_eq!(&names, batch.names());
        assert!(diags.is_empty());
    }

    #[test]
    fn unterminated_last_line_is_flushed_at_finish() {
        let text = sample_text();
        let trimmed = text.trim_end_matches('\n');
        let batch = from_text(&text).expect("valid text");
        let (_, ops, diags) = read_chunked(&[trimmed]);
        assert_eq!(ops, batch.ops());
        assert!(diags.is_empty());
    }

    #[test]
    fn malformed_lines_become_skip_diagnostics() {
        let text = "droidracer-trace v1\nthread t0 main initial \"m\"\nop threadinit t0\nop frobnicate t0\nop read t0 bogus\n";
        let (_, ops, diags) = read_chunked(&[text]);
        assert_eq!(ops.len(), 1, "only threadinit parses");
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.repair == Repair::SkipOp));
        assert_eq!(diags[0].line, 4);
    }

    #[test]
    fn missing_header_is_an_error() {
        let mut r = ChunkedReader::new();
        assert!(r.push_text("garbage\n").is_err());
        let r2 = ChunkedReader::new();
        assert!(r2.finish().is_err(), "empty stream has no header");
    }

    #[test]
    fn crlf_line_endings_are_accepted() {
        let text = sample_text().replace('\n', "\r\n");
        let batch = from_text(&sample_text()).expect("valid text");
        let (_, ops, diags) = read_chunked(&[&text]);
        assert_eq!(ops, batch.ops());
        assert!(diags.is_empty());
    }
}
