//! The serving contract over the real corpus: a report served over the
//! wire is the report `AnalysisBuilder` computes directly — for every
//! corpus trace, under concurrent multi-tenant load, and with a hostile
//! tenant attacking its own shard.

use std::sync::Arc;

use droidracer::apps::corpus;
use droidracer::core::{AnalysisBuilder, AnalysisService, ExitClass, JobReport, JobSpec};
use droidracer::server::{status_counter, Client, Server, ServerConfig};
use droidracer::trace::to_text;

/// Corpus trace texts with their directly-computed reference reports.
fn corpus_reports() -> Vec<(&'static str, String, JobReport)> {
    corpus()
        .into_iter()
        .map(|entry| {
            let trace = entry.generate_trace().expect("corpus generates");
            let analysis = AnalysisBuilder::new().analyze(&trace).expect("infallible");
            (
                entry.name,
                to_text(&trace),
                JobReport::from_analysis(&analysis, Vec::new()),
            )
        })
        .collect()
}

#[test]
fn served_corpus_reports_equal_direct_analysis() {
    let server = Server::bind_tcp("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || server.run());

    let spec = JobSpec::default();
    let mut client = Client::connect_tcp(&addr, "corpus").expect("connect");
    let expected = corpus_reports();
    for (name, text, want) in &expected {
        let sub = client.submit_trace(&spec, text).expect("submit");
        assert!(!sub.cache_hit(), "{name}: cache hit on first submission");
        assert_eq!(sub.report(), Some(want), "{name}: served report diverged");
    }

    // Second pass: all answered from the cache, reports bit-identical, and
    // the tenant's word-ops counter unchanged — the hits did zero work.
    let before = client.status().expect("status");
    for (name, text, want) in &expected {
        let sub = client.submit_trace(&spec, text).expect("submit");
        assert!(sub.cache_hit(), "{name}: second submission missed the cache");
        assert_eq!(sub.report(), Some(want), "{name}: cached report diverged");
    }
    let after = client.status().expect("status");
    let key = "tenant.corpus.hb.word_ops";
    assert_eq!(
        status_counter(&before, key),
        status_counter(&after, key),
        "cache hits must not spend analysis work\nbefore:\n{before}\nafter:\n{after}"
    );
    assert_eq!(
        status_counter(&after, "srv.cache_hits"),
        Some(expected.len() as u64)
    );

    client.shutdown().expect("shutdown");
    drop(client);
    handle.join().expect("join").expect("clean run");
}

#[test]
fn concurrent_tenants_with_a_hostile_sibling_stay_bit_identical() {
    // Hostile jobs panic inside the shard worker; everyone else's traffic
    // must come back bit-identical to the direct analysis anyway.
    let config = ServerConfig {
        shards: 3,
        fault_hook: Some(Arc::new(|phase: &str| {
            if phase == "job.hostile" {
                panic!("soak-injected fault");
            }
        })),
        ..ServerConfig::default()
    };
    let server = Server::bind_tcp("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || server.run());

    let expected = Arc::new(corpus_reports());
    let rounds = 3usize;

    std::thread::scope(|scope| {
        // Three well-behaved tenants hammer the corpus concurrently.
        for tenant in ["alpha", "beta", "gamma"] {
            let addr = addr.clone();
            let expected = Arc::clone(&expected);
            scope.spawn(move || {
                let spec = JobSpec::default();
                let mut client = Client::connect_tcp(&addr, tenant).expect("connect");
                for round in 0..rounds {
                    for (name, text, want) in expected.iter() {
                        let sub = client.submit_trace(&spec, text).expect("submit");
                        assert_eq!(
                            sub.report(),
                            Some(want),
                            "{tenant}/{name} round {round}: report diverged under load"
                        );
                    }
                }
            });
        }
        // The hostile tenant's every job panics in the worker. Distinct
        // specs per round dodge the shared content-addressed cache so the
        // fault hook actually fires each time.
        let addr = addr.clone();
        let expected = Arc::clone(&expected);
        scope.spawn(move || {
            let mut client = Client::connect_tcp(&addr, "hostile").expect("connect");
            for round in 0..rounds {
                let spec = JobSpec {
                    max_matrix_bits: Some(u64::MAX - round as u64),
                    ..JobSpec::default()
                };
                let (_, text, _) = &expected[round % expected.len()];
                let report = client
                    .submit_trace(&spec, text)
                    .expect("transport survives")
                    .report()
                    .expect("quarantined report")
                    .clone();
                assert_eq!(report.exit, ExitClass::Resource);
                assert!(
                    report.diagnostics.iter().any(|d| d.contains("quarantined")),
                    "round {round}: {:?}",
                    report.diagnostics
                );
            }
        });
    });

    let mut client = Client::connect_tcp(&addr, "alpha").expect("connect");
    let status = client.status().expect("status");
    assert_eq!(
        status_counter(&status, "srv.quarantined"),
        Some(rounds as u64),
        "{status}"
    );
    client.shutdown().expect("shutdown");
    drop(client);
    handle.join().expect("join").expect("clean run");
}

#[test]
fn client_is_an_analysis_service() {
    // Code written against the trait cannot tell a remote client from the
    // in-process service.
    let server = Server::bind_tcp("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || server.run());

    fn run(service: &mut dyn AnalysisService, text: &str) -> JobReport {
        service
            .submit(&JobSpec::default(), text)
            .expect("submission succeeds")
    }

    let (_, text, want) = corpus_reports().into_iter().next().expect("corpus nonempty");
    let mut remote = Client::connect_tcp(&addr, "trait").expect("connect");
    let mut local = droidracer::core::LocalService::new();
    assert_eq!(run(&mut remote, &text), want);
    assert_eq!(run(&mut local, &text), want);

    remote.shutdown().expect("shutdown");
    drop(remote);
    handle.join().expect("join").expect("clean run");
}
