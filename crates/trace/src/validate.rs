//! A checker for the operational semantics of Figure 5.
//!
//! [`validate`] replays a trace through the transition system of §3 and
//! reports the first operation whose antecedents do not hold. The simulator's
//! output is validated in tests (experiment E6 of DESIGN.md), and hand-built
//! traces can be checked for feasibility before analysis.
//!
//! The checker extends Figure 5 with the §4.2 task-management features:
//! delayed posts (a delayed task may be overtaken by non-delayed tasks and by
//! delayed tasks with smaller timeouts), cancellation, and front-of-queue
//! posts (an extension beyond the paper).

use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

use crate::ids::{LockId, TaskId, ThreadId};
use crate::op::{Op, OpKind, PostKind};
use crate::trace::Trace;

/// Why a trace failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateErrorKind {
    /// The thread executing the op is not in the running set `R`.
    ThreadNotRunning(ThreadId),
    /// `threadinit` for a thread that was never created (not in `C`).
    ThreadNotCreated(ThreadId),
    /// `fork` of a thread id that already exists.
    ThreadNotFresh(ThreadId),
    /// `join` of a thread that has not finished (not in `F`).
    JoinBeforeExit(ThreadId),
    /// `attachQ` on a thread that already has a queue.
    QueueAlreadyAttached(ThreadId),
    /// `loopOnQ` without an attached queue, or repeated `loopOnQ`.
    LoopWithoutQueue(ThreadId),
    /// `post` targeting a thread without an attached queue.
    PostWithoutQueue(ThreadId),
    /// A task was posted twice.
    DuplicatePost(TaskId),
    /// `begin` on a thread that never executed `loopOnQ`.
    BeginWithoutLoop(ThreadId),
    /// `begin` while another task is still executing on the thread.
    ThreadNotIdle(ThreadId),
    /// `begin` of a task that is not in the thread's queue.
    TaskNotQueued(TaskId),
    /// `begin` of a task while an older task must run first (FIFO / delay
    /// ordering violated).
    QueueOrderViolated {
        /// The task that was begun.
        begun: TaskId,
        /// The queued task that should have run first.
        blocked_by: TaskId,
    },
    /// `end` of a task that is not the one currently executing.
    EndMismatch(TaskId),
    /// `acquire` of a lock held by another thread.
    LockHeldElsewhere(LockId, ThreadId),
    /// `release` of a lock the thread does not hold.
    LockNotHeld(LockId),
    /// `cancel` of a task that is not pending in any queue.
    CancelNotPending(TaskId),
    /// `enable` appearing after the task's `post`.
    EnableAfterPost(TaskId),
}

impl fmt::Display for ValidateErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use ValidateErrorKind::*;
        match self {
            ThreadNotRunning(t) => write!(f, "thread {t} is not running"),
            ThreadNotCreated(t) => write!(f, "thread {t} was never created"),
            ThreadNotFresh(t) => write!(f, "forked thread {t} already exists"),
            JoinBeforeExit(t) => write!(f, "joined thread {t} has not exited"),
            QueueAlreadyAttached(t) => write!(f, "thread {t} already has a task queue"),
            LoopWithoutQueue(t) => write!(f, "thread {t} loops without an attached queue"),
            PostWithoutQueue(t) => write!(f, "post targets thread {t} which has no queue"),
            DuplicatePost(p) => write!(f, "task {p} posted more than once"),
            BeginWithoutLoop(t) => write!(f, "thread {t} begins a task before loopOnQ"),
            ThreadNotIdle(t) => write!(f, "thread {t} begins a task while another is executing"),
            TaskNotQueued(p) => write!(f, "task {p} is not pending in the queue"),
            QueueOrderViolated { begun, blocked_by } => {
                write!(f, "task {begun} begun before {blocked_by} in violation of queue order")
            }
            EndMismatch(p) => write!(f, "end of task {p} which is not executing"),
            LockHeldElsewhere(l, t) => write!(f, "lock {l} is held by thread {t}"),
            LockNotHeld(l) => write!(f, "lock {l} is not held by the releasing thread"),
            CancelNotPending(p) => write!(f, "cancelled task {p} is not pending"),
            EnableAfterPost(p) => write!(f, "enable of task {p} appears after its post"),
        }
    }
}

/// A validation failure: the offending op, its index, and the violated rule.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidateError {
    /// Index of the offending operation in the trace.
    pub index: usize,
    /// The offending operation.
    pub op: Op,
    /// The violated antecedent.
    pub kind: ValidateErrorKind,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid trace at op {} `{}`: {}", self.index, self.op, self.kind)
    }
}

impl Error for ValidateError {}

#[derive(Debug, Clone, Copy)]
pub(crate) struct QueueEntry {
    pub(crate) task: TaskId,
    pub(crate) kind: PostKind,
}

/// Whether queue entry `earlier` (at a smaller queue position) must execute
/// before `later` under the §4.2-refined FIFO semantics.
fn must_precede(earlier: &QueueEntry, later: &QueueEntry) -> bool {
    crate::op::queue_must_precede(earlier.kind, later.kind)
}

/// The Figure 5 machine state, shared with the lenient parser's semantic
/// repair pass (`recover`), which replays ops through [`step`] to decide
/// which repairs restore consistency.
#[derive(Debug, Default)]
pub(crate) struct State {
    pub(crate) created: HashSet<ThreadId>,
    pub(crate) running: HashSet<ThreadId>,
    pub(crate) finished: HashSet<ThreadId>,
    pub(crate) looping: HashSet<ThreadId>,
    pub(crate) executing: HashMap<ThreadId, TaskId>,
    /// `Some(entries)` iff a queue is attached.
    pub(crate) queues: HashMap<ThreadId, Vec<QueueEntry>>,
    pub(crate) lock_holders: HashMap<LockId, (ThreadId, u32)>,
    pub(crate) posted: HashSet<TaskId>,
}

impl State {
    fn known(&self, t: ThreadId) -> bool {
        self.created.contains(&t) || self.running.contains(&t) || self.finished.contains(&t)
    }
}

/// Replays `trace` through the transition system of Figure 5 (extended per
/// §4.2) and returns the first violation, if any.
///
/// # Errors
///
/// Returns a [`ValidateError`] pinpointing the first operation whose
/// antecedents do not hold in the state reached by the prefix before it.
///
/// # Examples
///
/// ```
/// use droidracer_trace::{TraceBuilder, ThreadKind, validate};
///
/// let mut b = TraceBuilder::new();
/// let t = b.thread("main", ThreadKind::Main, true);
/// b.loop_on_q(t); // loops without init or queue: invalid
/// assert!(validate(&b.finish()).is_err());
/// ```
pub fn validate(trace: &Trace) -> Result<(), ValidateError> {
    let mut st = State::default();
    for (id, decl) in trace.names().threads() {
        if decl.initial {
            st.created.insert(id);
        }
    }
    for (index, op) in trace.iter() {
        step(&mut st, op).map_err(|kind| ValidateError { index, op, kind })?;
    }
    Ok(())
}

pub(crate) fn step(st: &mut State, op: Op) -> Result<(), ValidateErrorKind> {
    use ValidateErrorKind::*;
    let t = op.thread;
    // Every rule except INIT requires the executing thread to be running.
    if !matches!(op.kind, OpKind::ThreadInit) && !st.running.contains(&t) {
        return Err(ThreadNotRunning(t));
    }
    match op.kind {
        OpKind::ThreadInit => {
            if !st.created.remove(&t) {
                return Err(ThreadNotCreated(t));
            }
            st.running.insert(t);
        }
        OpKind::ThreadExit => {
            st.running.remove(&t);
            st.finished.insert(t);
        }
        OpKind::Fork { child } => {
            if st.known(child) {
                return Err(ThreadNotFresh(child));
            }
            st.created.insert(child);
        }
        OpKind::Join { child } => {
            if !st.finished.contains(&child) {
                return Err(JoinBeforeExit(child));
            }
        }
        OpKind::AttachQ => {
            if st.queues.contains_key(&t) {
                return Err(QueueAlreadyAttached(t));
            }
            st.queues.insert(t, Vec::new());
        }
        OpKind::LoopOnQ => {
            if !st.queues.contains_key(&t) || st.looping.contains(&t) {
                return Err(LoopWithoutQueue(t));
            }
            st.looping.insert(t);
        }
        OpKind::Post { task, target, kind, .. } => {
            if !st.running.contains(&target) {
                return Err(ThreadNotRunning(target));
            }
            if !st.posted.insert(task) {
                return Err(DuplicatePost(task));
            }
            let Some(queue) = st.queues.get_mut(&target) else {
                return Err(PostWithoutQueue(target));
            };
            let entry = QueueEntry { task, kind };
            if matches!(kind, PostKind::Front) {
                queue.insert(0, entry);
            } else {
                queue.push(entry);
            }
        }
        OpKind::Begin { task } => {
            if !st.looping.contains(&t) {
                return Err(BeginWithoutLoop(t));
            }
            if st.executing.contains_key(&t) {
                return Err(ThreadNotIdle(t));
            }
            // invariant: LoopOnQ only succeeds when a queue is attached, and
            // queues are never detached, so a looping thread always has one.
            let queue = st.queues.get_mut(&t).expect("looping thread has a queue");
            let Some(pos) = queue.iter().position(|e| e.task == task) else {
                return Err(TaskNotQueued(task));
            };
            let chosen = queue[pos];
            if let Some(blocker) = queue[..pos].iter().find(|e| must_precede(e, &chosen)) {
                return Err(QueueOrderViolated {
                    begun: task,
                    blocked_by: blocker.task,
                });
            }
            queue.remove(pos);
            st.executing.insert(t, task);
        }
        OpKind::End { task } => {
            if st.executing.get(&t) != Some(&task) {
                return Err(EndMismatch(task));
            }
            st.executing.remove(&t);
        }
        OpKind::Cancel { task } => {
            let mut found = false;
            for queue in st.queues.values_mut() {
                if let Some(pos) = queue.iter().position(|e| e.task == task) {
                    queue.remove(pos);
                    found = true;
                    break;
                }
            }
            if !found {
                return Err(CancelNotPending(task));
            }
        }
        OpKind::Acquire { lock } => match st.lock_holders.get_mut(&lock) {
            Some((holder, count)) => {
                if *holder != t {
                    return Err(LockHeldElsewhere(lock, *holder));
                }
                *count += 1;
            }
            None => {
                st.lock_holders.insert(lock, (t, 1));
            }
        },
        OpKind::Release { lock } => match st.lock_holders.get_mut(&lock) {
            Some((holder, count)) if *holder == t => {
                *count -= 1;
                if *count == 0 {
                    st.lock_holders.remove(&lock);
                }
            }
            _ => return Err(LockNotHeld(lock)),
        },
        OpKind::Enable { task } => {
            if st.posted.contains(&task) {
                return Err(EnableAfterPost(task));
            }
        }
        OpKind::Read { .. } | OpKind::Write { .. } => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::ids::ThreadKind;

    fn looping_main(b: &mut TraceBuilder) -> ThreadId {
        let main = b.thread("main", ThreadKind::Main, true);
        b.thread_init(main);
        b.attach_q(main);
        b.loop_on_q(main);
        main
    }

    #[test]
    fn valid_fifo_trace_passes() {
        let mut b = TraceBuilder::new();
        let main = looping_main(&mut b);
        let a = b.task("A");
        let c = b.task("B");
        b.post(main, a, main);
        b.post(main, c, main);
        b.begin(main, a);
        b.end(main, a);
        b.begin(main, c);
        b.end(main, c);
        b.thread_exit(main);
        assert_eq!(validate(&b.finish()), Ok(()));
    }

    #[test]
    fn fifo_violation_is_rejected() {
        let mut b = TraceBuilder::new();
        let main = looping_main(&mut b);
        let a = b.task("A");
        let c = b.task("B");
        b.post(main, a, main);
        b.post(main, c, main);
        b.begin(main, c); // B overtakes A: invalid
        let err = validate(&b.finish()).unwrap_err();
        assert!(matches!(err.kind, ValidateErrorKind::QueueOrderViolated { .. }));
    }

    #[test]
    fn delayed_post_may_be_overtaken() {
        let mut b = TraceBuilder::new();
        let main = looping_main(&mut b);
        let slow = b.task("slow");
        let fast = b.task("fast");
        b.post_delayed(main, slow, main, 1000);
        b.post(main, fast, main);
        b.begin(main, fast); // overtakes the delayed task: fine
        b.end(main, fast);
        b.begin(main, slow);
        b.end(main, slow);
        assert_eq!(validate(&b.finish()), Ok(()));
    }

    #[test]
    fn delayed_posts_order_by_timeout() {
        let mut b = TraceBuilder::new();
        let main = looping_main(&mut b);
        let short = b.task("short");
        let long = b.task("long");
        b.post_delayed(main, long, main, 1000);
        b.post_delayed(main, short, main, 10);
        b.begin(main, short); // shorter timeout fires first even if posted later
        b.end(main, short);
        b.begin(main, long);
        b.end(main, long);
        assert_eq!(validate(&b.finish()), Ok(()));

        // But a longer timeout cannot overtake a shorter, earlier one.
        let mut b = TraceBuilder::new();
        let main = looping_main(&mut b);
        let short = b.task("short");
        let long = b.task("long");
        b.post_delayed(main, short, main, 10);
        b.post_delayed(main, long, main, 1000);
        b.begin(main, long);
        assert!(validate(&b.finish()).is_err());
    }

    #[test]
    fn front_post_overtakes_fifo() {
        let mut b = TraceBuilder::new();
        let main = looping_main(&mut b);
        let a = b.task("A");
        let urgent = b.task("urgent");
        b.post(main, a, main);
        b.post_front(main, urgent, main);
        b.begin(main, urgent);
        b.end(main, urgent);
        b.begin(main, a);
        b.end(main, a);
        assert_eq!(validate(&b.finish()), Ok(()));
    }

    #[test]
    fn begin_requires_loop_and_idle() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let a = b.task("A");
        b.thread_init(main);
        b.attach_q(main);
        b.post(main, a, main);
        b.begin(main, a); // no loopOnQ yet
        let err = validate(&b.finish()).unwrap_err();
        assert!(matches!(err.kind, ValidateErrorKind::BeginWithoutLoop(_)));

        let mut b = TraceBuilder::new();
        let main = looping_main(&mut b);
        let a = b.task("A");
        let c = b.task("B");
        b.post(main, a, main);
        b.post(main, c, main);
        b.begin(main, a);
        b.begin(main, c); // A still executing
        let err = validate(&b.finish()).unwrap_err();
        assert!(matches!(err.kind, ValidateErrorKind::ThreadNotIdle(_)));
    }

    #[test]
    fn fork_join_lifecycle() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg = b.thread("bg", ThreadKind::App, false);
        b.thread_init(main);
        b.fork(main, bg);
        b.thread_init(bg);
        b.thread_exit(bg);
        b.join(main, bg);
        assert_eq!(validate(&b.finish()), Ok(()));

        // Join before exit is invalid.
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg = b.thread("bg", ThreadKind::App, false);
        b.thread_init(main);
        b.fork(main, bg);
        b.thread_init(bg);
        b.join(main, bg);
        let err = validate(&b.finish()).unwrap_err();
        assert!(matches!(err.kind, ValidateErrorKind::JoinBeforeExit(_)));
    }

    #[test]
    fn init_of_unforked_thread_is_rejected() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let ghost = b.thread("ghost", ThreadKind::App, false); // not initial, never forked
        b.thread_init(main);
        b.thread_init(ghost);
        let err = validate(&b.finish()).unwrap_err();
        assert!(matches!(err.kind, ValidateErrorKind::ThreadNotCreated(_)));
    }

    #[test]
    fn lock_discipline() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg = b.thread("bg", ThreadKind::App, false);
        let l = b.lock("m");
        b.thread_init(main);
        b.fork(main, bg);
        b.thread_init(bg);
        b.acquire(main, l);
        b.acquire(main, l); // re-entrant: ok
        b.release(main, l);
        b.release(main, l);
        b.acquire(bg, l);
        b.release(bg, l);
        assert_eq!(validate(&b.finish()), Ok(()));

        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg = b.thread("bg", ThreadKind::App, false);
        let l = b.lock("m");
        b.thread_init(main);
        b.fork(main, bg);
        b.thread_init(bg);
        b.acquire(main, l);
        b.acquire(bg, l); // held by main
        let err = validate(&b.finish()).unwrap_err();
        assert!(matches!(err.kind, ValidateErrorKind::LockHeldElsewhere(..)));
    }

    #[test]
    fn release_without_hold_is_rejected() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let l = b.lock("m");
        b.thread_init(main);
        b.release(main, l);
        let err = validate(&b.finish()).unwrap_err();
        assert!(matches!(err.kind, ValidateErrorKind::LockNotHeld(_)));
    }

    #[test]
    fn cancel_removes_pending_task() {
        let mut b = TraceBuilder::new();
        let main = looping_main(&mut b);
        let a = b.task("A");
        let c = b.task("B");
        b.post(main, a, main);
        b.post(main, c, main);
        b.cancel(main, a);
        b.begin(main, c); // fine: A was cancelled
        b.end(main, c);
        assert_eq!(validate(&b.finish()), Ok(()));
    }

    #[test]
    fn cancel_of_unposted_task_is_rejected() {
        let mut b = TraceBuilder::new();
        let main = looping_main(&mut b);
        let a = b.task("A");
        b.cancel(main, a);
        let err = validate(&b.finish()).unwrap_err();
        assert!(matches!(err.kind, ValidateErrorKind::CancelNotPending(_)));
    }

    #[test]
    fn enable_must_precede_post() {
        let mut b = TraceBuilder::new();
        let main = looping_main(&mut b);
        let a = b.task("A");
        b.post(main, a, main);
        b.enable(main, a);
        let err = validate(&b.finish()).unwrap_err();
        assert!(matches!(err.kind, ValidateErrorKind::EnableAfterPost(_)));
    }

    #[test]
    fn post_to_queueless_thread_is_rejected() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg = b.thread("bg", ThreadKind::App, false);
        let a = b.task("A");
        b.thread_init(main);
        b.fork(main, bg);
        b.thread_init(bg);
        b.post(main, a, bg);
        let err = validate(&b.finish()).unwrap_err();
        assert!(matches!(err.kind, ValidateErrorKind::PostWithoutQueue(_)));
    }

    #[test]
    fn error_display_mentions_op_and_rule() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        b.loop_on_q(main);
        let err = validate(&b.finish()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("op 0"), "got: {msg}");
        assert!(msg.contains("not running"), "got: {msg}");
    }
}
