//! Golden and schema tests for the observability layer (PR 3).
//!
//! Pins three contracts end to end, through the public facade:
//!
//! 1. the span-tree text renderer's exact output on a fixed-time tree
//!    (golden — any formatting change must update the expectation here);
//! 2. the Chrome `trace_event` export is valid JSON with the documented
//!    event schema, and the `droidracer analyze --profile` binary emits a
//!    profile covering all five pipeline phases for every corpus app;
//! 3. determinism: the exported profile of a corpus analysis is
//!    bit-identical at 1, 2 and 8 worker threads once wall-clock fields
//!    are stripped, and the `MetricsRegistry` view of the engine counters
//!    matches the raw `EngineStats` exactly.

use droidracer::apps::corpus;
use droidracer::core::{analyze_all_profiled, HbConfig};
use droidracer::obs::json::Json;
use droidracer::obs::{chrome_trace, render_span_tree, strip_wall_clock, MetricsRegistry, SpanRecord};
use droidracer::trace::{to_text, Trace};

/// A synthetic profile with pinned times: the CLI's `analyze` shape.
fn fixed_tree() -> SpanRecord {
    let mut root = SpanRecord::leaf("analyze");
    root.dur_ns = 3_210_000;
    let mut parse = SpanRecord::leaf("parse");
    parse.start_ns = 10_000;
    parse.dur_ns = 520_000;
    parse.counters.push(("ops".to_owned(), 1355));
    let mut analysis = SpanRecord::leaf("analysis");
    analysis.start_ns = 540_000;
    analysis.dur_ns = 2_400_000;
    let mut prepare = SpanRecord::leaf("prepare");
    prepare.start_ns = 550_000;
    prepare.dur_ns = 110_000;
    prepare.counters.push(("ops".to_owned(), 1355));
    let mut closure = SpanRecord::leaf("closure");
    closure.start_ns = 700_000;
    closure.dur_ns = 1_800_000;
    closure.counters.push(("word_ops".to_owned(), 12803));
    analysis.children.push(prepare);
    analysis.children.push(closure);
    root.children.push(parse);
    root.children.push(analysis);
    root
}

#[test]
fn span_tree_renders_golden_output() {
    let expected = "\
analyze           3.21 ms
├─ parse         520.0 µs  ops=1355
└─ analysis       2.40 ms
   ├─ prepare    110.0 µs  ops=1355
   └─ closure     1.80 ms  word_ops=12803
";
    assert_eq!(render_span_tree(&fixed_tree()), expected);
}

#[test]
fn chrome_trace_export_matches_schema() {
    let mut metrics = MetricsRegistry::new();
    metrics.counter_add("hb.word_ops", 12803);
    metrics.observe("trace.ops", 1355);
    metrics.gauge_set("time.total_ms", 3.21);
    let tree = fixed_tree();
    let doc = chrome_trace(std::slice::from_ref(&tree), &metrics);
    let json = Json::parse(&doc).expect("export is valid JSON");
    assert_eq!(
        json.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms")
    );
    let events = json
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    // Every span becomes one "X" event; counter + histogram become "C"
    // events; the gauge is deliberately excluded (wall-clock by convention).
    let spans: Vec<_> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .collect();
    let counters: Vec<_> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
        .collect();
    assert_eq!(spans.len(), tree.span_count());
    assert_eq!(counters.len(), 2);
    for event in events {
        assert!(event.get("name").and_then(Json::as_str).is_some());
        assert!(event.get("cat").and_then(Json::as_str).is_some());
        assert!(event.get("ts").and_then(Json::as_f64).is_some());
        assert!(event.get("pid").and_then(Json::as_f64).is_some());
        assert!(event.get("tid").and_then(Json::as_f64).is_some());
        assert!(event.get("args").is_some());
    }
    let closure = spans
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("closure"))
        .expect("closure span exported");
    assert_eq!(
        closure.get("args").unwrap().get("word_ops").unwrap().as_f64(),
        Some(12803.0)
    );
}

/// `droidracer analyze <trace> --profile out.json` emits a valid Chrome
/// trace-event profile covering all five pipeline phases, for every one of
/// the 15 corpus apps (the PR's acceptance criterion, also enforced in CI
/// on one app).
#[test]
fn cli_profile_covers_five_phases_on_every_corpus_app() {
    let bin = env!("CARGO_BIN_EXE_droidracer");
    let dir = std::env::temp_dir();
    let entries = corpus();
    assert_eq!(entries.len(), 15);
    for entry in entries {
        let trace = entry.generate_trace().expect("corpus entries generate");
        let slug: String = entry
            .name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        let trace_path = dir.join(format!("dr_obs_{slug}.trace"));
        let profile_path = dir.join(format!("dr_obs_{slug}.profile.json"));
        std::fs::write(&trace_path, to_text(&trace)).expect("write trace file");
        let out = std::process::Command::new(bin)
            .arg("analyze")
            .arg(&trace_path)
            .arg("--profile")
            .arg(&profile_path)
            .output()
            .expect("binary runs");
        // Exit 1 = races found (expected on the corpus); anything else is a
        // real failure.
        assert!(
            matches!(out.status.code(), Some(0) | Some(1)),
            "{}: exit {:?}\n{}",
            entry.name,
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        );
        let doc = std::fs::read_to_string(&profile_path).expect("profile written");
        let json = Json::parse(&doc).expect("profile is valid JSON");
        let events = json
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("name")?.as_str())
            .collect();
        for phase in ["parse", "graph", "closure", "detect", "report"] {
            assert!(
                names.contains(&phase),
                "{}: profile missing the `{phase}` phase span; has {names:?}",
                entry.name
            );
        }
        let _ = std::fs::remove_file(&trace_path);
        let _ = std::fs::remove_file(&profile_path);
    }
}

/// Traces small enough to analyze three times over in a debug build; the
/// release-mode pipeline bench runs the same check on the full corpus.
fn small_corpus_traces() -> Vec<Trace> {
    let traces: Vec<Trace> = corpus()
        .iter()
        .filter_map(|e| e.generate_trace().ok())
        .filter(|t| t.len() <= 25_000)
        .collect();
    assert!(traces.len() >= 5, "determinism check needs several apps");
    traces
}

#[test]
fn profiled_corpus_export_is_thread_count_invariant() {
    let traces = small_corpus_traces();
    let (analyses1, span1) = analyze_all_profiled(&traces, 1, HbConfig::new());
    let mut registry1 = MetricsRegistry::new();
    for a in &analyses1 {
        registry1.absorb(&a.metrics());
    }
    let base = strip_wall_clock(&chrome_trace(std::slice::from_ref(&span1), &registry1));
    for threads in [2usize, 8] {
        let (analyses, span) = analyze_all_profiled(&traces, threads, HbConfig::new());
        assert_eq!(
            span.structure(),
            span1.structure(),
            "{threads}-thread span structure diverged"
        );
        let mut registry = MetricsRegistry::new();
        for a in &analyses {
            registry.absorb(&a.metrics());
        }
        let stripped = strip_wall_clock(&chrome_trace(std::slice::from_ref(&span), &registry));
        assert_eq!(stripped, base, "{threads}-thread export diverged");
    }
}

/// The `MetricsRegistry` view of the engine counters is the raw
/// `EngineStats`, unchanged — summed across apps by `absorb`.
#[test]
fn registry_mirrors_engine_stats_across_corpus() {
    let traces = small_corpus_traces();
    let (analyses, _) = analyze_all_profiled(&traces, 2, HbConfig::new());
    let mut registry = MetricsRegistry::new();
    for a in &analyses {
        registry.absorb(&a.metrics());
    }
    let word_ops: u64 = analyses.iter().map(|a| a.hb().stats().word_ops).sum();
    let base_edges: u64 = analyses
        .iter()
        .map(|a| a.hb().stats().base_edges as u64)
        .sum();
    let rounds: u64 = analyses.iter().map(|a| a.hb().stats().rounds as u64).sum();
    assert_eq!(registry.counter("hb.word_ops"), Some(word_ops));
    assert_eq!(registry.counter("hb.base_edges"), Some(base_edges));
    assert_eq!(registry.counter("hb.rounds"), Some(rounds));
}
