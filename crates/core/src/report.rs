//! End-to-end analysis: happens-before + detection + classification, with
//! Table 3-style reporting.

use std::collections::HashMap;
use std::fmt;
use std::time::{Duration, Instant};

use droidracer_trace::{MemLoc, Trace};

use crate::classify::{classify, RaceCategory};
use crate::engine::HappensBefore;
use crate::race::{detect, Race};
use crate::rules::{HbConfig, HbMode};

/// Wall-clock time spent in each stage of one [`Analysis`] run.
///
/// Timing is *observability only*: it is the single non-deterministic part
/// of an analysis and is deliberately excluded from equality, reports, and
/// the parallel pipeline's determinism contract (see `par`).
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalysisTiming {
    /// Stripping cancelled posts and building the trace index.
    pub prepare: Duration,
    /// Happens-before graph construction plus the fixpoint closure.
    pub happens_before: Duration,
    /// Race detection over unordered conflicting block pairs.
    pub detect: Duration,
    /// Race classification (§4.3 categories).
    pub classify: Duration,
}

impl AnalysisTiming {
    /// Total wall-clock time across all stages.
    pub fn total(&self) -> Duration {
        self.prepare + self.happens_before + self.detect + self.classify
    }
}

/// A race together with its §4.3 category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassifiedRace {
    /// The race.
    pub race: Race,
    /// Its category.
    pub category: RaceCategory,
}

/// The result of analyzing one trace: the (cancellation-stripped) trace, the
/// happens-before relation, and the classified races.
///
/// # Examples
///
/// ```
/// use droidracer_trace::{TraceBuilder, ThreadKind};
/// use droidracer_core::Analysis;
///
/// let mut b = TraceBuilder::new();
/// let main = b.thread("main", ThreadKind::Main, true);
/// let bg = b.thread("bg", ThreadKind::App, false);
/// let loc = b.loc("obj", "C.state");
/// b.thread_init(main);
/// b.fork(main, bg);
/// b.thread_init(bg);
/// b.write(bg, loc);
/// b.read(main, loc);
///
/// let analysis = Analysis::run(&b.finish());
/// assert_eq!(analysis.races().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Analysis {
    trace: Trace,
    hb: HappensBefore,
    races: Vec<ClassifiedRace>,
    timing: AnalysisTiming,
}

impl Analysis {
    /// Analyzes `trace` with the paper's full configuration.
    pub fn run(trace: &Trace) -> Self {
        Self::run_with(trace, HbConfig::new())
    }

    /// Analyzes `trace` under a baseline mode.
    pub fn run_mode(trace: &Trace, mode: HbMode) -> Self {
        Self::run_with(trace, HbConfig::for_mode(mode))
    }

    /// Analyzes `trace` with an explicit configuration. Cancelled posts are
    /// stripped first (§4.2); the race indices refer to the stripped trace,
    /// available as [`Analysis::trace`].
    pub fn run_with(trace: &Trace, config: HbConfig) -> Self {
        let mut timing = AnalysisTiming::default();
        let start = Instant::now();
        let trace = trace.without_cancelled();
        let index = trace.index();
        timing.prepare = start.elapsed();

        let start = Instant::now();
        let hb = HappensBefore::compute_with_index(&trace, &index, config);
        timing.happens_before = start.elapsed();

        let start = Instant::now();
        let raw = detect(&trace, &hb);
        timing.detect = start.elapsed();

        let start = Instant::now();
        let races = raw
            .into_iter()
            .map(|race| ClassifiedRace {
                category: classify(&trace, &index, &hb, &race),
                race,
            })
            .collect();
        timing.classify = start.elapsed();
        Analysis {
            trace,
            hb,
            races,
            timing,
        }
    }

    /// The analyzed trace (after cancellation stripping).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The happens-before relation.
    pub fn hb(&self) -> &HappensBefore {
        &self.hb
    }

    /// Per-stage wall-clock timing of this run (observability only; never
    /// part of report equality).
    pub fn timing(&self) -> &AnalysisTiming {
        &self.timing
    }

    /// All classified races (one per unordered conflicting block pair).
    pub fn races(&self) -> &[ClassifiedRace] {
        &self.races
    }

    /// One representative race per `(location, category)` pair — the
    /// reporting granularity of Table 3 ("if there are multiple races
    /// belonging to the same category on the same memory location,
    /// DroidRacer reports any one of them").
    pub fn representatives(&self) -> Vec<ClassifiedRace> {
        let mut seen: HashMap<(MemLoc, RaceCategory), ClassifiedRace> = HashMap::new();
        for cr in &self.races {
            seen.entry((cr.race.loc, cr.category)).or_insert(*cr);
        }
        let mut reps: Vec<ClassifiedRace> = seen.into_values().collect();
        reps.sort_by_key(|cr| (cr.race.loc, cr.category, cr.race.first, cr.race.second));
        reps
    }

    /// Number of representative races in `category`.
    pub fn count(&self, category: RaceCategory) -> usize {
        self.representatives()
            .iter()
            .filter(|cr| cr.category == category)
            .count()
    }

    /// Representative counts for every category, in presentation order.
    pub fn counts(&self) -> CategoryCounts {
        let mut counts = CategoryCounts::default();
        for cr in self.representatives() {
            counts.add(cr.category, 1);
        }
        counts
    }

    /// Renders a human-readable report using the trace's name table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let names = self.trace.names();
        let reps = self.representatives();
        out.push_str(&format!(
            "{} race report(s) on {} location(s)\n",
            reps.len(),
            reps.iter()
                .map(|cr| cr.race.loc)
                .collect::<std::collections::HashSet<_>>()
                .len()
        ));
        for cr in &reps {
            let r = &cr.race;
            out.push_str(&format!(
                "  [{}] {} on {}: op {} `{}` vs op {} `{}`\n",
                cr.category,
                r.kind,
                names.loc_name(r.loc),
                r.first,
                self.trace.op(r.first),
                r.second,
                self.trace.op(r.second),
            ));
        }
        out
    }
}

/// Race counts per category, in the shape of one row of Table 3.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CategoryCounts {
    /// Multi-threaded races.
    pub multithreaded: usize,
    /// Co-enabled single-threaded races.
    pub co_enabled: usize,
    /// Delayed single-threaded races.
    pub delayed: usize,
    /// Cross-posted single-threaded races.
    pub cross_posted: usize,
    /// Unclassified races.
    pub unknown: usize,
}

impl CategoryCounts {
    /// Adds `n` to `category`.
    pub fn add(&mut self, category: RaceCategory, n: usize) {
        match category {
            RaceCategory::Multithreaded => self.multithreaded += n,
            RaceCategory::CoEnabled => self.co_enabled += n,
            RaceCategory::Delayed => self.delayed += n,
            RaceCategory::CrossPosted => self.cross_posted += n,
            RaceCategory::Unknown => self.unknown += n,
        }
    }

    /// Count for `category`.
    pub fn get(&self, category: RaceCategory) -> usize {
        match category {
            RaceCategory::Multithreaded => self.multithreaded,
            RaceCategory::CoEnabled => self.co_enabled,
            RaceCategory::Delayed => self.delayed,
            RaceCategory::CrossPosted => self.cross_posted,
            RaceCategory::Unknown => self.unknown,
        }
    }

    /// Total across categories.
    pub fn total(&self) -> usize {
        self.multithreaded + self.co_enabled + self.delayed + self.cross_posted + self.unknown
    }

    /// Element-wise sum.
    pub fn merged(mut self, other: &CategoryCounts) -> CategoryCounts {
        for cat in RaceCategory::all() {
            self.add(cat, other.get(cat));
        }
        self
    }
}

impl fmt::Display for CategoryCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mt={} cross-posted={} co-enabled={} delayed={} unknown={}",
            self.multithreaded, self.cross_posted, self.co_enabled, self.delayed, self.unknown
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use droidracer_trace::{ThreadKind, TraceBuilder};

    fn racy_trace() -> Trace {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg = b.thread("bg", ThreadKind::App, false);
        let loc = b.loc("obj", "C.state");
        b.thread_init(main);
        b.fork(main, bg);
        b.thread_init(bg);
        b.write(bg, loc);
        b.read(main, loc);
        b.finish()
    }

    #[test]
    fn analysis_finds_and_classifies() {
        let analysis = Analysis::run(&racy_trace());
        assert_eq!(analysis.races().len(), 1);
        assert_eq!(analysis.count(RaceCategory::Multithreaded), 1);
        assert_eq!(analysis.counts().total(), 1);
    }

    #[test]
    fn representatives_dedup_by_location_and_category() {
        // Two bg accesses in separate blocks race with main's block on the
        // same location → 2 block-pair races, 1 representative.
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg = b.thread("bg", ThreadKind::App, false);
        let loc = b.loc("obj", "C.state");
        let l = b.lock("m");
        b.thread_init(main);
        b.fork(main, bg);
        b.thread_init(bg);
        b.write(bg, loc);
        b.acquire(bg, l); // splits bg's accesses into two blocks
        b.release(bg, l);
        b.write(bg, loc);
        b.read(main, loc);
        let trace = b.finish();
        let analysis = Analysis::run(&trace);
        assert_eq!(analysis.races().len(), 2);
        assert_eq!(analysis.representatives().len(), 1);
    }

    #[test]
    fn cancelled_posts_are_stripped_before_analysis() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let t1 = b.task("A");
        b.thread_init(main);
        b.attach_q(main);
        b.loop_on_q(main);
        b.post(main, t1, main);
        b.cancel(main, t1);
        let trace = b.finish();
        let analysis = Analysis::run(&trace);
        assert_eq!(analysis.trace().len(), 3);
        assert!(analysis.races().is_empty());
    }

    #[test]
    fn render_mentions_location_names() {
        let analysis = Analysis::run(&racy_trace());
        let text = analysis.render();
        assert!(text.contains("C.state"), "got: {text}");
        assert!(text.contains("multithreaded"), "got: {text}");
    }

    #[test]
    fn counts_arithmetic() {
        let mut a = CategoryCounts::default();
        a.add(RaceCategory::CoEnabled, 3);
        a.add(RaceCategory::Unknown, 1);
        let mut b = CategoryCounts::default();
        b.add(RaceCategory::CoEnabled, 2);
        let m = a.merged(&b);
        assert_eq!(m.co_enabled, 5);
        assert_eq!(m.total(), 6);
        assert_eq!(m.get(RaceCategory::Unknown), 1);
    }

    #[test]
    fn baseline_mode_analysis_runs() {
        let trace = racy_trace();
        for mode in HbMode::all() {
            let analysis = Analysis::run_mode(&trace, mode);
            // The mt race is visible to every mode that has fork edges; the
            // async-only baseline misses fork and reports it too (as a
            // "race") — either way analysis must not crash.
            let _ = analysis.counts();
        }
    }
}
