//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the surface the workspace uses: a seedable, cloneable
//! small PRNG ([`rngs::SmallRng`]) with uniform range sampling via
//! [`RngExt::random_range`]. The generator is xoshiro256** seeded through
//! SplitMix64 — the same construction the real `SmallRng` uses on 64-bit
//! targets — so schedules remain deterministic per seed.

#![forbid(unsafe_code)]

use std::ops::Range;

/// A random number generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling helpers over a raw `u64` source.
pub trait RngExt {
    /// The next 64 raw bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (Lemire-style rejection-free widening
    /// multiply; bias is negligible for the small ranges used here).
    fn random_range(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "cannot sample an empty range");
        let span = (range.end - range.start) as u64;
        let hi = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        range.start + hi as usize
    }
}

/// Small, fast generators.
pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// A xoshiro256** generator: 256 bits of state, seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngExt for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn range_sampling_stays_in_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = rng.random_range(0..5);
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit: {seen:?}");
        for _ in 0..100 {
            let v = rng.random_range(3..4);
            assert_eq!(v, 3);
        }
    }
}
