//! Integration test for experiment E4: the exact traces of Figures 3 and 4
//! and their happens-before analysis, plus the simulated §2 music player.

use droidracer::core::{AnalysisBuilder, RaceCategory};
use droidracer::framework::{compile, AppBuilder, Stmt, UiEvent, UiEventKind};
use droidracer::sim::{run, RandomScheduler, SimConfig};
use droidracer::trace::{ThreadKind, Trace, TraceBuilder};

/// Figure 3 / Figure 4 trace, with paper op `n` at index `n - 1` for
/// `n ≤ 4` and at index `n` afterwards (one extra `threadinit(t0)`).
fn paper_trace(back: bool) -> Trace {
    let mut b = TraceBuilder::new();
    let t0 = b.thread("binder", ThreadKind::Binder, true);
    let t1 = b.thread("main", ThreadKind::Main, true);
    let t2 = b.thread("background", ThreadKind::App, false);
    let launch = b.task("LAUNCH_ACTIVITY");
    let post_execute = b.task("onPostExecute");
    let on_destroy = b.task("onDestroy");
    let on_play = b.task("onPlayClick");
    let on_pause = b.task("onPause");
    let obj = b.loc("DwFileAct-obj", "DwFileAct.isActivityDestroyed");
    b.thread_init(t1); // paper op 1, index 0
    b.attach_q(t1); // 2
    b.loop_on_q(t1); // 3
    b.enable(t1, launch); // 4
    b.thread_init(t0); // (extra)
    b.post(t0, launch, t1); // 5, index 5
    b.begin(t1, launch); // 6
    b.write(t1, obj); // 7
    b.fork(t1, t2); // 8
    b.enable(t1, on_destroy); // 9
    b.end(t1, launch); // 10
    b.thread_init(t2); // 11
    b.read(t2, obj); // 12
    b.post(t2, post_execute, t1); // 13
    b.thread_exit(t2); // 14
    b.begin(t1, post_execute); // 15
    b.read(t1, obj); // 16
    b.enable(t1, on_play); // 17
    b.end(t1, post_execute); // 18
    if back {
        b.post(t0, on_destroy, t1); // 19
        b.begin(t1, on_destroy); // 20
        b.write(t1, obj); // 21
        b.end(t1, on_destroy); // 22
    } else {
        b.post(t1, on_play, t1); // 19
        b.begin(t1, on_play); // 20
        b.enable(t1, on_pause); // 21
        b.end(t1, on_play); // 22
        b.post(t0, on_pause, t1); // 23
    }
    b.finish_validated().expect("the Figure 3/4 trace is feasible")
}

#[test]
fn figure_3_trace_is_feasible_and_race_free() {
    let trace = paper_trace(false);
    let analysis = AnalysisBuilder::new().analyze(&trace).unwrap();

    // The figure's edges.
    let hb = analysis.hb();
    assert!(hb.ordered(8, 11), "edge a: fork ≺ threadinit");
    assert!(hb.ordered(13, 15), "edge b: post ≺ begin");
    assert!(hb.ordered(10, 15), "edge c: end(LAUNCH) ≺ begin(onPostExecute)");
    assert!(hb.ordered(17, 19), "edge d: enable(onPlayClick) ≺ post");
    assert!(hb.ordered(21, 23), "edge e: enable(onPause) ≺ post");

    // The §2.4 discussion: (7,12) and (7,16) are ordered, hence no race.
    assert!(hb.ordered(7, 12), "write ≺ background read (via edge a)");
    assert!(hb.ordered(7, 16), "write ≺ onPostExecute read (via edge c)");
    assert!(analysis.races().is_empty(), "{}", analysis.render());
}

#[test]
fn figure_4_trace_has_exactly_the_two_races() {
    let trace = paper_trace(true);
    let analysis = AnalysisBuilder::new().analyze(&trace).unwrap();
    let hb = analysis.hb();

    // The enable edge kills the (7,21) false positive.
    assert!(hb.ordered(9, 19), "enable(onDestroy) ≺ post(onDestroy)");
    assert!(hb.ordered(7, 21), "LAUNCH write ≺ onDestroy write — not a race");

    // The two real races.
    assert!(hb.concurrent(12, 21), "background read vs onDestroy write");
    assert!(hb.concurrent(16, 21), "onPostExecute read vs onDestroy write");
    assert_eq!(analysis.races().len(), 2, "{}", analysis.render());
    let mut categories: Vec<RaceCategory> =
        analysis.races().iter().map(|cr| cr.category).collect();
    categories.sort();
    assert_eq!(
        categories,
        vec![RaceCategory::Multithreaded, RaceCategory::CrossPosted]
    );
}

fn music_player_app() -> (droidracer::framework::App, droidracer::framework::WidgetId) {
    let mut b = AppBuilder::new("MusicPlayer");
    let act = b.activity("DwFileAct");
    let player = b.activity("MusicPlayActivity");
    let flag = b.var("DwFileAct-obj", "isActivityDestroyed");
    let dl = b.async_task(
        "FileDwTask",
        vec![],
        vec![Stmt::Read(flag), Stmt::PublishProgress],
        vec![],
        vec![Stmt::Read(flag)],
    );
    b.on_create(act, vec![Stmt::Write(flag)]);
    b.on_resume(act, vec![Stmt::ExecuteAsyncTask(dl)]);
    b.on_destroy(act, vec![Stmt::Write(flag)]);
    let play = b.button(act, "playBtn", vec![Stmt::StartActivity(player)]);
    (b.finish(), play)
}

#[test]
fn simulated_play_scenario_is_race_free_on_the_flag() {
    let (app, play) = music_player_app();
    let compiled = compile(&app, &[UiEvent::Widget(play, UiEventKind::Click)]).expect("compiles");
    for seed in 0..12 {
        let result = run(
            &compiled.program,
            &mut RandomScheduler::new(seed),
            &SimConfig::default(),
        )
        .expect("runs");
        assert!(result.completed, "seed {seed}");
        let analysis = AnalysisBuilder::new().analyze(&result.trace).unwrap();
        assert!(
            analysis.races().is_empty(),
            "seed {seed}: {}",
            analysis.render()
        );
    }
}

#[test]
fn simulated_back_scenario_reports_the_figure_4_races() {
    let (app, _) = music_player_app();
    let compiled = compile(&app, &[UiEvent::Back]).expect("compiles");
    let mut seen_mt = false;
    let mut seen_cross = false;
    for seed in 0..24 {
        let result = run(
            &compiled.program,
            &mut RandomScheduler::new(seed),
            &SimConfig::default(),
        )
        .expect("runs");
        let analysis = AnalysisBuilder::new().analyze(&result.trace).unwrap();
        seen_mt |= analysis.count(RaceCategory::Multithreaded) > 0;
        seen_cross |= analysis.count(RaceCategory::CrossPosted) > 0;
    }
    // Depending on how far the download progressed before BACK, the flag
    // race manifests on the background thread and/or in onPostExecute.
    assert!(
        seen_mt || seen_cross,
        "the lifecycle flag race must manifest in some schedule"
    );
}
