//! Per-rule ablation: for every happens-before rule of Figures 6 and 7 (and
//! the §4.2 delayed refinement), a minimal trace whose verdict flips when
//! exactly that rule is disabled — pinning each rule's individual
//! contribution to precision.

use droidracer_core::{AnalysisBuilder, HbConfig, RuleSet};
use droidracer_trace::{validate, ThreadKind, Trace, TraceBuilder};

fn races_with(trace: &Trace, rules: RuleSet) -> usize {
    assert_eq!(validate(trace), Ok(()), "ablation traces must be feasible");
    AnalysisBuilder::new()
        .config(HbConfig {
            rules,
            merge_accesses: true,
        })
        .analyze(trace)
        .unwrap()
        .representatives()
        .len()
}

/// Asserts the trace is race-free under full rules and racy once `mutate`
/// disables the rule under test.
fn rule_suppresses_race(trace: &Trace, mutate: impl FnOnce(&mut RuleSet)) {
    let full = RuleSet::full();
    assert_eq!(races_with(trace, full), 0, "full rules must order the pair");
    let mut ablated = full;
    mutate(&mut ablated);
    assert!(
        races_with(trace, ablated) > 0,
        "disabling the rule must expose the race"
    );
}

#[test]
fn no_q_po_orders_plain_thread_accesses() {
    // A single plain thread writing then reading: only program order
    // (NO-Q-PO) orders the pair.
    let mut b = TraceBuilder::new();
    let t = b.thread("t", ThreadKind::App, true);
    let loc = b.loc("o", "C.f");
    b.thread_init(t);
    b.write(t, loc);
    b.read(t, loc);
    // Node merging would fuse the two accesses (they are ordered within a
    // block regardless); split them with an intervening sync op.
    let mut b2 = TraceBuilder::new();
    let t = b2.thread("t", ThreadKind::App, true);
    let loc = b2.loc("o", "C.f");
    let l = b2.lock("m");
    b2.thread_init(t);
    b2.write(t, loc);
    b2.acquire(t, l);
    b2.release(t, l);
    b2.read(t, loc);
    rule_suppresses_race(&b2.finish(), |r| r.no_q_po = false);
    drop(b);
}

#[test]
fn async_po_orders_accesses_within_a_task() {
    let mut b = TraceBuilder::new();
    let main = b.thread("main", ThreadKind::Main, true);
    let loc = b.loc("o", "C.f");
    let l = b.lock("m");
    let task = b.task("T");
    b.thread_init(main);
    b.attach_q(main);
    b.loop_on_q(main);
    b.post(main, task, main);
    b.begin(main, task);
    b.write(main, loc);
    b.acquire(main, l); // splits the access block
    b.release(main, l);
    b.read(main, loc);
    b.end(main, task);
    rule_suppresses_race(&b.finish(), |r| r.async_po = false);
}

#[test]
fn post_rule_orders_poster_before_task() {
    // Write before a cross-thread post vs read inside the posted task:
    // ordered via POST(-MT) → begin, broken when `post` is disabled.
    let mut b = TraceBuilder::new();
    let main = b.thread("main", ThreadKind::Main, true);
    let bg = b.thread("bg", ThreadKind::App, true);
    let loc = b.loc("o", "C.f");
    let task = b.task("T");
    b.thread_init(main);
    b.attach_q(main);
    b.loop_on_q(main);
    b.thread_init(bg);
    b.write(bg, loc);
    b.post(bg, task, main);
    b.begin(main, task);
    b.read(main, loc);
    b.end(main, task);
    rule_suppresses_race(&b.finish(), |r| r.post = false);
}

#[test]
fn enable_rule_orders_enabler_before_gated_task() {
    // The Figure 4 shape: LAUNCH's write vs onDestroy's write, ordered only
    // through the enable edge.
    let mut b = TraceBuilder::new();
    let binder = b.thread("binder", ThreadKind::Binder, true);
    let main = b.thread("main", ThreadKind::Main, true);
    let loc = b.loc("o", "isDestroyed");
    let launch = b.task("LAUNCH");
    let destroy = b.task("onDestroy");
    b.thread_init(main);
    b.attach_q(main);
    b.loop_on_q(main);
    b.thread_init(binder);
    b.post(binder, launch, main);
    b.begin(main, launch);
    b.write(main, loc);
    b.enable(main, destroy);
    b.end(main, launch);
    b.post(binder, destroy, main);
    b.begin(main, destroy);
    b.write(main, loc);
    b.end(main, destroy);
    // Disabling `enable` also disables the NOPRE derivation through it, but
    // FIFO still needs post(launch) ≺ post(destroy), which holds via binder
    // program order… so FIFO must go too for the race to appear; instead
    // make the posts unordered by using a second binder thread.
    let mut b = TraceBuilder::new();
    let binder1 = b.thread("binder1", ThreadKind::Binder, true);
    let binder2 = b.thread("binder2", ThreadKind::Binder, true);
    let main = b.thread("main", ThreadKind::Main, true);
    let loc = b.loc("o", "isDestroyed");
    let launch = b.task("LAUNCH");
    let destroy = b.task("onDestroy");
    b.thread_init(main);
    b.attach_q(main);
    b.loop_on_q(main);
    b.thread_init(binder1);
    b.thread_init(binder2);
    b.post(binder1, launch, main);
    b.begin(main, launch);
    b.write(main, loc);
    b.enable(main, destroy);
    b.end(main, launch);
    b.post(binder2, destroy, main);
    b.begin(main, destroy);
    b.write(main, loc);
    b.end(main, destroy);
    rule_suppresses_race(&b.finish(), |r| r.enable = false);
    let _ = (binder, launch, destroy, loc, main);
}

#[test]
fn fifo_orders_same_poster_tasks() {
    let mut b = TraceBuilder::new();
    let binder = b.thread("binder", ThreadKind::Binder, true);
    let main = b.thread("main", ThreadKind::Main, true);
    let loc = b.loc("o", "C.f");
    let t1 = b.task("A");
    let t2 = b.task("B");
    b.thread_init(main);
    b.attach_q(main);
    b.loop_on_q(main);
    b.thread_init(binder);
    b.post(binder, t1, main);
    b.post(binder, t2, main);
    b.begin(main, t1);
    b.write(main, loc);
    b.end(main, t1);
    b.begin(main, t2);
    b.write(main, loc);
    b.end(main, t2);
    rule_suppresses_race(&b.finish(), |r| r.fifo = false);
}

#[test]
fn nopre_orders_task_before_its_posted_successor() {
    // The case where NOPRE is genuinely irreplaceable: the two posts to
    // `main` are issued from two *tasks of another looper* whose own posts
    // come from unrelated threads. The posts are then on one thread (the
    // looper) but in unordered tasks, so FIFO's premise `post(p1) ≺
    // post(p2)` is underivable — while an `enable` inside p1 still reaches
    // post(p2), which is exactly NOPRE's premise.
    let mut b = TraceBuilder::new();
    let main = b.thread("main", ThreadKind::Main, true);
    let looper = b.thread("dispatcher", ThreadKind::App, true);
    let w1 = b.thread("w1", ThreadKind::App, true);
    let w2 = b.thread("w2", ThreadKind::App, true);
    let loc = b.loc("o", "C.f");
    let q1 = b.task("q1");
    let q2 = b.task("q2");
    let p1 = b.task("p1");
    let p2 = b.task("p2");
    b.thread_init(main);
    b.attach_q(main);
    b.loop_on_q(main);
    b.thread_init(looper);
    b.attach_q(looper);
    b.loop_on_q(looper);
    b.thread_init(w1);
    b.thread_init(w2);
    b.post(w1, q1, looper);
    b.begin(looper, q1);
    b.post(looper, p1, main);
    b.end(looper, q1);
    b.begin(main, p1);
    b.write(main, loc);
    b.enable(main, p2);
    b.end(main, p1);
    b.post(w2, q2, looper);
    b.begin(looper, q2);
    b.post(looper, p2, main);
    b.end(looper, q2);
    b.begin(main, p2);
    b.write(main, loc);
    b.end(main, p2);
    rule_suppresses_race(&b.finish(), |r| r.nopre = false);
}

#[test]
fn fork_rule_orders_parent_prefix_before_child() {
    let mut b = TraceBuilder::new();
    let main = b.thread("main", ThreadKind::Main, true);
    let bg = b.thread("bg", ThreadKind::App, false);
    let loc = b.loc("o", "C.f");
    b.thread_init(main);
    b.write(main, loc);
    b.fork(main, bg);
    b.thread_init(bg);
    b.read(bg, loc);
    rule_suppresses_race(&b.finish(), |r| r.fork = false);
}

#[test]
fn join_rule_orders_child_before_parent_suffix() {
    let mut b = TraceBuilder::new();
    let main = b.thread("main", ThreadKind::Main, true);
    let bg = b.thread("bg", ThreadKind::App, false);
    let loc = b.loc("o", "C.f");
    b.thread_init(main);
    b.fork(main, bg);
    b.thread_init(bg);
    b.write(bg, loc);
    b.thread_exit(bg);
    b.join(main, bg);
    b.read(main, loc);
    rule_suppresses_race(&b.finish(), |r| r.join = false);
}

#[test]
fn lock_rule_orders_cross_thread_handoff() {
    let mut b = TraceBuilder::new();
    let a = b.thread("a", ThreadKind::App, true);
    let c = b.thread("c", ThreadKind::App, true);
    let l = b.lock("m");
    let loc = b.loc("o", "C.f");
    b.thread_init(a);
    b.thread_init(c);
    b.acquire(a, l);
    b.write(a, loc);
    b.release(a, l);
    b.acquire(c, l);
    b.write(c, loc);
    b.release(c, l);
    rule_suppresses_race(&b.finish(), |r| r.lock = false);
}

#[test]
fn delayed_fifo_refinement_unlocks_the_delayed_race() {
    // A delayed post followed by a plain post: with the refinement OFF the
    // naive FIFO rule orders the tasks (post order suffices) and misses the
    // race; with it ON the race is reported.
    let mut b = TraceBuilder::new();
    let binder = b.thread("binder", ThreadKind::Binder, true);
    let main = b.thread("main", ThreadKind::Main, true);
    let loc = b.loc("o", "C.f");
    let slow = b.task("slow");
    let fast = b.task("fast");
    b.thread_init(main);
    b.attach_q(main);
    b.loop_on_q(main);
    b.thread_init(binder);
    b.post_delayed(binder, slow, main, 500);
    b.post(binder, fast, main);
    b.begin(main, fast);
    b.write(main, loc);
    b.end(main, fast);
    b.begin(main, slow);
    b.write(main, loc);
    b.end(main, slow);
    let trace = b.finish();
    let full = RuleSet::full();
    assert_eq!(races_with(&trace, full), 1, "the delayed race is real");
    let mut unrefined = full;
    unrefined.delayed_fifo = false;
    // Without the refinement, FIFO requires post(slow) ≺ post(fast) to
    // order end(slow) before begin(fast) — but the trace ran `fast` FIRST,
    // so the applicable pair is end(fast) ≺ begin(slow) needing
    // post(fast) ≺ post(slow), which is false. The other direction ordered
    // begin... in this trace order the unrefined rule checks
    // end(fast)/begin(slow) with post(fast) ⊀ post(slow): no edge either —
    // so the unrefined semantics ALSO reports the race here. Construct the
    // missed-race direction instead: slow runs first.
    let mut b = TraceBuilder::new();
    let binder = b.thread("binder", ThreadKind::Binder, true);
    let main = b.thread("main", ThreadKind::Main, true);
    let loc = b.loc("o", "C.f");
    let slow = b.task("slow");
    let fast = b.task("fast");
    b.thread_init(main);
    b.attach_q(main);
    b.loop_on_q(main);
    b.thread_init(binder);
    b.post_delayed(binder, slow, main, 500);
    b.post(binder, fast, main);
    b.begin(main, slow); // timeout elapsed before fast was dequeued
    b.write(main, loc);
    b.end(main, slow);
    b.begin(main, fast);
    b.write(main, loc);
    b.end(main, fast);
    let trace2 = b.finish();
    assert_eq!(
        races_with(&trace2, full),
        1,
        "refined FIFO knows the delayed task does not gate the plain one"
    );
    assert_eq!(
        races_with(&trace2, unrefined),
        0,
        "unrefined FIFO spuriously orders slow ≺ fast via the post order"
    );
    let _ = binder;
}

#[test]
fn attach_q_rule_is_subsumed_but_present() {
    // ATTACH-Q-MT rarely decides a race alone (posts also have POST edges),
    // but it must exist: a write before attachQ on the looper vs a read in
    // a task posted by a thread with no other connection.
    let mut b = TraceBuilder::new();
    let main = b.thread("main", ThreadKind::Main, true);
    let bg = b.thread("bg", ThreadKind::App, true);
    let loc = b.loc("o", "C.f");
    let t1 = b.task("T");
    b.thread_init(bg); // bg exists first
    b.thread_init(main);
    b.write(main, loc); // before attachQ
    b.attach_q(main);
    b.loop_on_q(main);
    b.post(bg, t1, main);
    b.begin(main, t1);
    b.read(main, loc);
    b.end(main, t1);
    let trace = b.finish();
    // The write and the read are on the SAME thread: NO-Q-PO already orders
    // pre-loop ops before everything later, so this stays race-free even
    // without attach_q. The rule's observable effect: ordering the write
    // against the POST op on bg (cross-thread). Check the ordering itself.
    let full_hb = AnalysisBuilder::new()
        .rules(RuleSet::full())
        .merge_accesses(false)
        .analyze(&trace)
        .unwrap();
    assert!(full_hb.hb().ordered(3, 5), "attachQ ≺ post via ATTACH-Q-MT");
    let mut rules = RuleSet::full();
    rules.attach_q = false;
    let ablated = AnalysisBuilder::new()
        .rules(rules)
        .merge_accesses(false)
        .analyze(&trace)
        .unwrap();
    assert!(
        !ablated.hb().ordered(3, 5),
        "without the rule the pair is unordered"
    );
}
