//! The synthetic application corpus of the evaluation.
//!
//! Rebuilds the 15 applications of the paper's Tables 2 and 3 as framework
//! app models with *planted, ground-truthed* races:
//!
//! * [`corpus`] / [`catalog`] — one entry per application, scaled to its
//!   Table 2 row and planting exactly its Table 3 races;
//! * [`MotifBuilder`] — the reusable concurrency motifs (AsyncTask
//!   downloads, cursor swaps, lifecycle flags, delayed refreshes, custom
//!   task queues, untracked native threads);
//! * [`strip_untracked`] — reproduces the tracer's blind spots, turning the
//!   planted hidden orderings into the paper's false positives;
//! * [`verify_race`] — reordering-based true-positive validation (the DDMS
//!   substitute).
//!
//! # Examples
//!
//! ```
//! use droidracer_apps::{aard_dictionary, RaceCategory};
//!
//! let entry = aard_dictionary();
//! let report = entry.analyze()?;
//! // The dictionary-loading Service race is found and verified.
//! assert_eq!(report.reported.get(RaceCategory::Multithreaded), 1);
//! assert_eq!(report.verified.get(RaceCategory::Multithreaded), 1);
//! # Ok::<(), droidracer_apps::CorpusError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
mod corpus;
pub mod motifs;
mod strip;
mod verify;

pub use catalog::{
    adobe_reader, aard_dictionary, browser, component_corpus, corpus, download_manager, facebook,
    fbreader, feed_fragment, flipkart, gallery_fragment, k9_mail, messenger, music_player,
    my_tracks, net_monitor, open_source_corpus, open_sudoku, remind_me, rotating_gallery,
    sgtpuzzles, sync_service, tomdroid_notes, twitter, upload_queue,
};
pub use corpus::{
    analyze_corpus_isolated, analyze_corpus_parallel, analyze_corpus_profiled, CorpusEntry,
    CorpusError, EntryReport, ExplorationSummary, PaperRow,
};
pub use droidracer_core::RaceCategory;
pub use motifs::{GroundTruth, MotifBuilder, RaceTruth};
pub use strip::{strip_untracked, UNTRACKED_PREFIX};
pub use verify::{verify_race, VerifyOutcome};
