//! The full DroidRacer pipeline on a two-screen app: systematic UI
//! exploration, trace generation, replay, and race detection over every
//! enumerated test — the §5 architecture end-to-end.
//!
//! Run with `cargo run --example explorer_tour`.

use droidracer::core::AnalysisBuilder;
use droidracer::explorer::{run_campaign, ExplorerConfig};
use droidracer::framework::{AppBuilder, Stmt};
use droidracer::trace::validate;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A settings screen opened from the main screen; both mutate the same
    // preferences object, and a background flush thread reads it.
    let mut b = AppBuilder::new("ExplorerTour");
    let home = b.activity("HomeActivity");
    let settings = b.activity("SettingsActivity");
    let prefs = b.var("Prefs-obj", "volume");
    let flusher = b.worker("prefs-flusher", vec![Stmt::Read(prefs)]);
    b.on_create(home, vec![Stmt::Write(prefs), Stmt::ForkWorker(flusher)]);
    let open = b.button(home, "openSettings", vec![Stmt::StartActivity(settings)]);
    let louder = b.button(settings, "volumeUp", vec![Stmt::Write(prefs)]);
    let app = b.finish();
    let _ = (open, louder);

    // Depth-first exploration with k = 2, as the UI Explorer does.
    let config = ExplorerConfig {
        max_depth: 2,
        max_sequences: 64,
        seed: 17,
        max_steps: 100_000,
    };
    let campaign = run_campaign(&app, &config)?;
    println!("explored {} event sequences (k = {})", campaign.runs.len(), config.max_depth);

    let mut racy_tests = 0;
    for (events, result) in &campaign.runs {
        validate(&result.trace)?;
        let analysis = AnalysisBuilder::new().analyze(&result.trace).unwrap();
        if !analysis.races().is_empty() {
            racy_tests += 1;
        }
        println!(
            "  {:<40} {:>5} ops, {} race(s)",
            format!("{events:?}"),
            result.trace.len(),
            analysis.races().len()
        );
    }
    println!("{racy_tests}/{} tests manifested a race", campaign.runs.len());
    assert!(racy_tests > 0, "the flusher race appears in every test");

    // Replay the first recorded test bit-identically from the database.
    let replayed = campaign.db.replay(&app, 0).expect("entry 0 exists")?;
    assert_eq!(replayed.trace.ops(), campaign.runs[0].1.trace.ops());
    println!("replay of test #0 reproduced the trace exactly ({} ops)", replayed.trace.len());
    Ok(())
}
