//! Erasing "untracked" operations from traces.
//!
//! DroidRacer "only tracks operations due to Java code, whereas some
//! applications perform operations using C/C++ code too", misses
//! synchronization through custom task queues, and can miss `enable`
//! instrumentation sites (§6 "False positives and negatives"). The corpus
//! reproduces those blind spots deliberately: entities whose names begin
//! with the `untracked:` prefix represent native or otherwise invisible
//! mechanisms. [`strip_untracked`] removes their operations from a trace
//! before analysis, so the detector sees exactly what the real tool would
//! have seen — and reports the corresponding false positives.

use droidracer_trace::{OpKind, Trace};

/// The name prefix marking an entity as invisible to the tracer.
pub const UNTRACKED_PREFIX: &str = "untracked:";

/// Returns a copy of `trace` with all operations stripped that the real
/// tracer could not have observed:
///
/// * `fork`/`join` of threads named `untracked:*` (natively created threads
///   — the Browser false-positive source),
/// * `acquire`/`release` of locks named `untracked:*` (native
///   synchronization),
/// * `enable` of tasks whose name mentions `untracked:` (missing
///   instrumentation sites for enable operations).
///
/// The threads' own operations (including their posts) remain visible, just
/// as the posts of untracked native threads show up in DroidRacer's traces
/// without their synchronization context.
pub fn strip_untracked(trace: &Trace) -> Trace {
    let names = trace.names();
    let untracked_thread = |t: droidracer_trace::ThreadId| {
        names.thread_name(t).starts_with(UNTRACKED_PREFIX)
    };
    let ops = trace
        .ops()
        .iter()
        .copied()
        .filter(|op| match op.kind {
            OpKind::Fork { child } | OpKind::Join { child } => !untracked_thread(child),
            OpKind::Acquire { lock } | OpKind::Release { lock } => {
                !names.lock_name(lock).starts_with(UNTRACKED_PREFIX)
            }
            OpKind::Enable { task } => !names.task_name(task).contains(UNTRACKED_PREFIX),
            _ => true,
        })
        .collect();
    Trace::from_parts(names.clone(), ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use droidracer_trace::{ThreadKind, TraceBuilder};

    #[test]
    fn strips_untracked_forks_joins_locks_and_enables() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let native = b.thread("untracked:native", ThreadKind::App, false);
        let plain = b.thread("worker", ThreadKind::App, false);
        let hidden_lock = b.lock("untracked:mutex");
        let visible_lock = b.lock("mutex");
        let hidden_task = b.task("Act.untracked:dialogOk.onClick");
        let visible_task = b.task("Act.play.onClick");
        b.thread_init(main);
        b.fork(main, native); // stripped
        b.fork(main, plain); // kept
        b.thread_init(native); // kept (the thread itself is visible)
        b.thread_init(plain);
        b.acquire(main, hidden_lock); // stripped
        b.release(main, hidden_lock); // stripped
        b.acquire(main, visible_lock); // kept
        b.release(main, visible_lock); // kept
        b.enable(main, hidden_task); // stripped
        b.enable(main, visible_task); // kept
        b.thread_exit(native);
        b.join(main, native); // stripped
        b.thread_exit(plain);
        b.join(main, plain); // kept
        let trace = b.finish();
        let stripped = strip_untracked(&trace);
        assert_eq!(stripped.len(), trace.len() - 5);
        for op in stripped.ops() {
            match op.kind {
                droidracer_trace::OpKind::Fork { child }
                | droidracer_trace::OpKind::Join { child } => {
                    assert_eq!(stripped.names().thread_name(child), "worker");
                }
                droidracer_trace::OpKind::Acquire { lock }
                | droidracer_trace::OpKind::Release { lock } => {
                    assert_eq!(stripped.names().lock_name(lock), "mutex");
                }
                droidracer_trace::OpKind::Enable { task } => {
                    assert!(!stripped.names().task_name(task).contains("untracked"));
                }
                _ => {}
            }
        }
    }

    #[test]
    fn is_identity_without_untracked_entities() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let loc = b.loc("o", "C.f");
        b.thread_init(main);
        b.write(main, loc);
        let trace = b.finish();
        assert_eq!(strip_untracked(&trace), trace);
    }
}
