//! A blocking client for the analysis daemon, usable anywhere an
//! [`AnalysisService`] is expected.
//!
//! The client is deliberately thin: it frames requests, unframes
//! responses, and converts between the wire's text encodings and the
//! `core` types. One client owns one connection and one tenant identity;
//! requests on it are strictly sequential (the protocol has no pipelining).

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;

use droidracer_core::{AnalysisService, JobReport, JobSpec};

use crate::protocol::{read_frame, write_frame, Request, Response};

trait Conn: Read + Write + Send {}
impl Conn for TcpStream {}
impl Conn for UnixStream {}

/// A connected client bound to one tenant.
pub struct Client {
    conn: Box<dyn Conn>,
    tenant: String,
}

/// The server answered a job request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Submission {
    /// The job ran (or was answered from cache).
    Done {
        /// Whether the report came from the content-addressed cache.
        cache_hit: bool,
        /// The report.
        report: JobReport,
    },
    /// The server refused the request before running it.
    Rejected {
        /// Why.
        reason: String,
    },
}

impl Submission {
    /// The report of a completed job, or `None` if rejected.
    pub fn report(&self) -> Option<&JobReport> {
        match self {
            Submission::Done { report, .. } => Some(report),
            Submission::Rejected { .. } => None,
        }
    }

    /// Whether the submission was answered from the cache.
    pub fn cache_hit(&self) -> bool {
        matches!(self, Submission::Done { cache_hit: true, .. })
    }
}

impl Client {
    /// Connects over TCP, acting as `tenant`.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect_tcp(addr: &str, tenant: impl Into<String>) -> io::Result<Client> {
        Ok(Client {
            conn: Box::new(TcpStream::connect(addr)?),
            tenant: tenant.into(),
        })
    }

    /// Connects over a Unix socket, acting as `tenant`.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect_unix(path: &Path, tenant: impl Into<String>) -> io::Result<Client> {
        Ok(Client {
            conn: Box::new(UnixStream::connect(path)?),
            tenant: tenant.into(),
        })
    }

    fn roundtrip(&mut self, request: &Request) -> io::Result<Response> {
        write_frame(&mut self.conn, &request.encode())?;
        let payload = read_frame(&mut self.conn)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        Ok(Response::decode(&payload)?)
    }

    fn expect_report(response: Response) -> io::Result<Submission> {
        match response {
            Response::Report { cache_hit, record } => {
                let report = JobReport::from_record(&record).map_err(|e| {
                    io::Error::new(io::ErrorKind::InvalidData, format!("bad report record: {e}"))
                })?;
                Ok(Submission::Done { cache_hit, report })
            }
            Response::Rejected { reason } => Ok(Submission::Rejected { reason }),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response {other:?}"),
            )),
        }
    }

    /// Submits one whole trace and waits for the verdict.
    ///
    /// # Errors
    ///
    /// Transport failures only; job-level failures come back inside
    /// [`Submission`].
    pub fn submit_trace(&mut self, spec: &JobSpec, trace_text: &str) -> io::Result<Submission> {
        let response = self.roundtrip(&Request::Submit {
            tenant: self.tenant.clone(),
            spec: spec.to_token(),
            trace: trace_text.as_bytes().to_vec(),
        })?;
        Self::expect_report(response)
    }

    /// Uploads a trace in `chunk_bytes`-sized wire chunks and has the
    /// server run it through the *streaming* engine in `chunk_ops`-sized
    /// op chunks.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn submit_stream(
        &mut self,
        spec: &JobSpec,
        trace_text: &str,
        chunk_bytes: usize,
        chunk_ops: u32,
    ) -> io::Result<Submission> {
        let open = self.roundtrip(&Request::StreamOpen {
            tenant: self.tenant.clone(),
            spec: spec.to_token(),
            chunk_ops,
        })?;
        match open {
            Response::StreamAck { .. } => {}
            Response::Rejected { reason } => return Ok(Submission::Rejected { reason }),
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected response {other:?}"),
                ))
            }
        }
        for chunk in trace_text.as_bytes().chunks(chunk_bytes.max(1)) {
            let ack = self.roundtrip(&Request::StreamChunk { data: chunk.to_vec() })?;
            match ack {
                Response::StreamAck { .. } => {}
                Response::Rejected { reason } => return Ok(Submission::Rejected { reason }),
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected response {other:?}"),
                    ))
                }
            }
        }
        let done = self.roundtrip(&Request::StreamFinish)?;
        Self::expect_report(done)
    }

    /// Fetches the server's status snapshot (`key=value` lines; parse
    /// individual counters with
    /// [`status_counter`](crate::server::status_counter)).
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn status(&mut self) -> io::Result<String> {
        match self.roundtrip(&Request::Status)? {
            Response::Status { text } => Ok(text),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response {other:?}"),
            )),
        }
    }

    /// Asks the server to shut down cleanly.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response {other:?}"),
            )),
        }
    }
}

impl AnalysisService for Client {
    /// Remote submission. A server-side *rejection* (unknown tenant,
    /// oversized trace) is surfaced as an `InvalidInput` transport error —
    /// the job never ran, so there is no report to return; job-level
    /// failures (bad trace, blown budget) arrive as ordinary reports.
    fn submit(&mut self, spec: &JobSpec, trace_text: &str) -> io::Result<JobReport> {
        match self.submit_trace(spec, trace_text)? {
            Submission::Done { report, .. } => Ok(report),
            Submission::Rejected { reason } => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("rejected by server: {reason}"),
            )),
        }
    }
}
