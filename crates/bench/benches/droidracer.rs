//! Criterion benchmarks for the race detection pipeline.
//!
//! Groups:
//! * `graph_build` — HB-graph construction with and without node merging;
//! * `hb_closure` — the happens-before fixpoint per corpus application;
//! * `detection` — the end-to-end offline analysis (graph + closure + race
//!   detection + classification);
//! * `mt_baselines` — the graph-based multithreaded-only mode vs the
//!   vector-clock detector;
//! * `simulation` — trace generation throughput for a mid-size app.
//!
//! Run with `cargo bench -p droidracer-bench`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use droidracer_apps::{aard_dictionary, messenger, music_player, my_tracks};
use droidracer_core::{vc, AnalysisBuilder, HappensBefore, HbConfig, HbGraph, HbMode};
use droidracer_trace::Trace;

fn corpus_traces() -> Vec<(&'static str, Trace)> {
    [aard_dictionary(), music_player(), my_tracks(), messenger()]
        .into_iter()
        .map(|e| (e.name, e.generate_trace().expect("corpus entry runs")))
        .collect()
}

fn bench_graph_build(c: &mut Criterion) {
    let traces = corpus_traces();
    let mut group = c.benchmark_group("graph_build");
    for (name, trace) in &traces {
        let index = trace.index();
        group.bench_with_input(BenchmarkId::new("merged", name), trace, |b, t| {
            b.iter(|| black_box(HbGraph::build(t, &index, true).node_count()))
        });
        group.bench_with_input(BenchmarkId::new("unmerged", name), trace, |b, t| {
            b.iter(|| black_box(HbGraph::build(t, &index, false).node_count()))
        });
    }
    group.finish();
}

fn bench_hb_closure(c: &mut Criterion) {
    let traces = corpus_traces();
    let mut group = c.benchmark_group("hb_closure");
    group.sample_size(20);
    for (name, trace) in &traces {
        group.bench_with_input(BenchmarkId::from_parameter(name), trace, |b, t| {
            b.iter(|| black_box(HappensBefore::compute(t, HbConfig::new()).ordered_pairs()))
        });
    }
    group.finish();
}

fn bench_detection(c: &mut Criterion) {
    let traces = corpus_traces();
    let mut group = c.benchmark_group("detection");
    group.sample_size(20);
    for (name, trace) in &traces {
        group.bench_with_input(BenchmarkId::from_parameter(name), trace, |b, t| {
            b.iter(|| black_box(AnalysisBuilder::new().analyze(t).unwrap().races().len()))
        });
    }
    group.finish();
}

fn bench_mt_baselines(c: &mut Criterion) {
    let trace = messenger().generate_trace().expect("messenger runs");
    let mut group = c.benchmark_group("mt_baselines");
    group.sample_size(20);
    group.bench_function("graph_mt_only", |b| {
        b.iter(|| black_box(AnalysisBuilder::new().mode(HbMode::MultithreadedOnly).analyze(&trace).unwrap().races().len()))
    });
    group.bench_function("vector_clock", |b| {
        b.iter(|| black_box(vc::detect_multithreaded(&trace).len()))
    });
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let entry = music_player();
    let mut group = c.benchmark_group("simulation");
    group.sample_size(20);
    group.bench_function("music_player_trace", |b| {
        b.iter(|| black_box(entry.generate_trace().expect("runs").len()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_graph_build,
    bench_hb_closure,
    bench_detection,
    bench_mt_baselines,
    bench_simulation
);
criterion_main!(benches);
