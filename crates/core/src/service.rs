//! The unified analysis front door: [`JobSpec`], [`JobReport`], and the
//! [`AnalysisService`] trait.
//!
//! The batch session API ([`AnalysisBuilder`]) and the streaming session
//! API ([`AnalysisBuilder::streaming`]) grew independently and return
//! different result shapes (`Analysis` vs `StreamReport`). A serving layer
//! needs one shape for both: a client submits a *job* — trace text plus a
//! [`JobSpec`] describing how to analyze it — and receives a [`JobReport`]
//! whatever path the work took (whole-trace batch, incremental stream,
//! budget cutoff, rejected input). The report carries the representative
//! races with resolved location names, the §4.3 classification counts, the
//! deterministic engine counters, repair diagnostics, and an [`ExitClass`]
//! mirroring the CLI exit taxonomy — and it is self-contained: no `Names`
//! table or trace is needed to read, persist, or ship it.
//!
//! Both the spec and the report have stable single-line text encodings
//! ([`JobSpec::to_token`], [`JobReport::to_record`]): the spec token keys
//! the content-addressed result cache (same spec + same trace bytes ⇒ same
//! report), and the record is what the cache persists and the wire carries.
//!
//! [`LocalService`] is the in-process implementation; the analysis server
//! (`droidracer-server`) exposes the same trait over a socket, so `fn
//! f(svc: &mut impl AnalysisService)` code cannot tell whether races are
//! computed in-process or by a remote shard.
//!
//! # Examples
//!
//! ```
//! use droidracer_core::{AnalysisService, ExitClass, JobSpec, LocalService};
//!
//! let text = "\
//! droidracer-trace v1
//! thread t0 main initial \"main\"
//! thread t1 app \"bg\"
//! object o0 \"obj\"
//! field f0 \"C.state\"
//! op threadinit t0
//! op fork t0 t1
//! op threadinit t1
//! op write t1 o0.f0
//! op read t0 o0.f0
//! ";
//! let report = LocalService::new()
//!     .submit(&JobSpec::default(), text)
//!     .expect("local submission is infallible");
//! assert_eq!(report.exit, ExitClass::Races);
//! assert_eq!(report.races.len(), 1);
//! assert_eq!(report.races[0].loc, "obj.C.state");
//! // The report round-trips through its cache/wire record.
//! let back = droidracer_core::JobReport::from_record(&report.to_record()).unwrap();
//! assert_eq!(back, report);
//! ```

use std::fmt;

use droidracer_trace::{from_text, from_text_lenient, Names, Trace};

use crate::classify::RaceCategory;
use crate::race::RaceKind;
use crate::report::{representatives_of, Analysis, CategoryCounts};
use crate::rules::HbMode;
use crate::robust::Budget;
use crate::session::{AnalysisBuilder, AnalysisError};
use crate::stream::{StreamOptions, StreamOutcome};

/// How to analyze one submitted trace. Every field has a wire- and
/// cache-stable encoding (see [`JobSpec::to_token`]); the default spec is
/// the paper's full configuration, strict parsing, no limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSpec {
    /// Happens-before relation preset.
    pub mode: HbMode,
    /// The §6 node-merging optimization.
    pub merge_accesses: bool,
    /// Run the Figure 5 semantics checker first; an invalid trace yields
    /// [`ExitClass::Invalid`] instead of garbage orderings.
    pub validate: bool,
    /// Parse leniently, repairing malformed lines (each repair becomes a
    /// diagnostic on the report).
    pub lenient: bool,
    /// Work-unit cap (bit-matrix words touched), per job.
    pub max_ops: Option<u64>,
    /// Relation-matrix allocation cap in bits, per job.
    pub max_matrix_bits: Option<u64>,
    /// Wall-clock deadline in milliseconds, measured from job start.
    pub deadline_ms: Option<u64>,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            mode: HbMode::Full,
            merge_accesses: true,
            validate: false,
            lenient: false,
            max_ops: None,
            max_matrix_bits: None,
            deadline_ms: None,
        }
    }
}

impl JobSpec {
    /// The session builder implementing this spec. The deadline (if any)
    /// starts counting when this is called — i.e. at job start, not at
    /// submission time.
    pub fn builder(&self) -> AnalysisBuilder {
        AnalysisBuilder::new()
            .mode(self.mode)
            .merge_accesses(self.merge_accesses)
            .validate_first(self.validate)
            .budget(self.budget())
    }

    /// The per-job [`Budget`] this spec asks for (deadline measured from
    /// now).
    pub fn budget(&self) -> Budget {
        let mut budget = Budget::unlimited();
        if let Some(cap) = self.max_ops {
            budget = budget.with_max_ops(cap);
        }
        if let Some(bits) = self.max_matrix_bits {
            budget = budget.with_max_matrix_bits(bits);
        }
        if let Some(ms) = self.deadline_ms {
            budget = budget.with_timeout(std::time::Duration::from_millis(ms));
        }
        budget
    }

    /// Encodes the spec as one stable token, e.g.
    /// `v1:full:merge:strict:ops=-:bits=-:dl=-`. The token is both the wire
    /// form and the spec half of the content-addressed cache key: two specs
    /// with equal tokens produce equal reports on equal trace bytes.
    pub fn to_token(&self) -> String {
        fn opt(v: Option<u64>) -> String {
            v.map(|n| n.to_string()).unwrap_or_else(|| "-".to_owned())
        }
        format!(
            "v1:{}:{}:{}{}:ops={}:bits={}:dl={}",
            self.mode.label(),
            if self.merge_accesses { "merge" } else { "no-merge" },
            if self.validate { "validate+" } else { "" },
            if self.lenient { "lenient" } else { "strict" },
            opt(self.max_ops),
            opt(self.max_matrix_bits),
            opt(self.deadline_ms),
        )
    }

    /// Parses a [`JobSpec::to_token`] encoding.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the token is malformed or from
    /// an unknown version.
    pub fn from_token(token: &str) -> Result<Self, String> {
        fn opt(field: &str, key: &str) -> Result<Option<u64>, String> {
            let value = field
                .strip_prefix(key)
                .ok_or_else(|| format!("expected `{key}…`, got `{field}`"))?;
            if value == "-" {
                return Ok(None);
            }
            value
                .parse()
                .map(Some)
                .map_err(|_| format!("bad value in `{field}`"))
        }
        let parts: Vec<&str> = token.split(':').collect();
        let [version, mode, merge, parse, ops, bits, dl] = parts.as_slice() else {
            return Err(format!("expected 7 `:`-separated fields, got {}", parts.len()));
        };
        if *version != "v1" {
            return Err(format!("unknown spec version `{version}`"));
        }
        let mode = HbMode::all()
            .into_iter()
            .find(|m| m.label() == *mode)
            .ok_or_else(|| format!("unknown mode `{mode}`"))?;
        let merge_accesses = match *merge {
            "merge" => true,
            "no-merge" => false,
            other => return Err(format!("bad merge field `{other}`")),
        };
        let (validate, parse) = match parse.strip_prefix("validate+") {
            Some(rest) => (true, rest),
            None => (false, *parse),
        };
        let lenient = match parse {
            "lenient" => true,
            "strict" => false,
            other => return Err(format!("bad parse field `{other}`")),
        };
        Ok(JobSpec {
            mode,
            merge_accesses,
            validate,
            lenient,
            max_ops: opt(ops, "ops=")?,
            max_matrix_bits: opt(bits, "bits=")?,
            deadline_ms: opt(dl, "dl=")?,
        })
    }
}

/// How a job ended, mirroring the CLI exit taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExitClass {
    /// Analysis completed; no races.
    Clean,
    /// Analysis completed; races were found.
    Races,
    /// The job hit a resource boundary — budget or quota exhausted, or the
    /// worker was quarantined after a panic. Partial diagnostics only.
    Resource,
    /// The input was rejected: unparseable (or, with
    /// [`JobSpec::validate`], semantically invalid) trace text.
    Invalid,
}

impl ExitClass {
    /// The process exit code of the CLI taxonomy (0 clean / 1 races /
    /// 2 quarantine-or-budget / 3 fatal).
    pub fn code(self) -> u8 {
        match self {
            ExitClass::Clean => 0,
            ExitClass::Races => 1,
            ExitClass::Resource => 2,
            ExitClass::Invalid => 3,
        }
    }

    /// Stable short label (the record encoding).
    pub fn label(self) -> &'static str {
        match self {
            ExitClass::Clean => "clean",
            ExitClass::Races => "races",
            ExitClass::Resource => "resource",
            ExitClass::Invalid => "invalid",
        }
    }

    /// Parses a [`ExitClass::label`].
    pub fn from_label(label: &str) -> Option<Self> {
        Some(match label {
            "clean" => ExitClass::Clean,
            "races" => ExitClass::Races,
            "resource" => ExitClass::Resource,
            "invalid" => ExitClass::Invalid,
            _ => return None,
        })
    }
}

impl fmt::Display for ExitClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One representative race in a [`JobReport`], with its location resolved
/// to a name so the report is readable without the trace's name table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportedRace {
    /// The raced location, rendered `entity.field`.
    pub loc: String,
    /// Which of the two operations write.
    pub kind: RaceKind,
    /// The §4.3 category.
    pub category: RaceCategory,
    /// Trace index of the earlier operation.
    pub first: usize,
    /// Trace index of the later operation.
    pub second: usize,
}

/// Deterministic size/work counters of one job.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobStats {
    /// Operations analyzed (after cancellation stripping).
    pub ops: u64,
    /// Bit-matrix words touched by the happens-before closure. Batch and
    /// stream engines count different traversals, so this differs between
    /// the two paths for the same trace (races and counts never do).
    pub word_ops: u64,
    /// Fixpoint rounds (batch path; zero when streamed).
    pub rounds: u64,
    /// Raw unordered block-pair races before representative dedup.
    pub block_pairs: u64,
    /// Whether the incremental streaming engine produced this report.
    pub streamed: bool,
}

/// The uniform result of one analysis job, whichever engine ran it. See
/// the [module documentation](self).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobReport {
    /// How the job ended.
    pub exit: ExitClass,
    /// One representative race per `(location, category)` pair, sorted.
    pub races: Vec<ReportedRace>,
    /// Representative counts per category.
    pub counts: CategoryCounts,
    /// Deterministic work counters.
    pub stats: JobStats,
    /// Human-readable notes: lenient-parse repairs, the budget/validation
    /// failure, the quarantined panic message.
    pub diagnostics: Vec<String>,
}

impl JobReport {
    /// A report for a job that never produced an analysis (rejected input,
    /// blown budget, quarantined worker).
    pub fn aborted(exit: ExitClass, diagnostic: impl Into<String>) -> Self {
        JobReport {
            exit,
            races: Vec::new(),
            counts: CategoryCounts::default(),
            stats: JobStats::default(),
            diagnostics: vec![diagnostic.into()],
        }
    }

    /// Builds the report of a completed batch session.
    pub fn from_analysis(analysis: &Analysis, diagnostics: Vec<String>) -> Self {
        let stats = analysis.hb().stats();
        let reps = analysis.representatives();
        JobReport {
            exit: if reps.is_empty() {
                ExitClass::Clean
            } else {
                ExitClass::Races
            },
            races: reported_races(
                reps.iter().map(|cr| (cr.race, cr.category)),
                analysis.trace().names(),
            ),
            counts: analysis.counts(),
            stats: JobStats {
                ops: analysis.trace().len() as u64,
                word_ops: stats.word_ops,
                rounds: stats.rounds as u64,
                block_pairs: analysis.races().len() as u64,
                streamed: false,
            },
            diagnostics,
        }
    }

    /// Builds the report of a finished streaming session. The races and
    /// counts are identical to the batch report of the same trace (the
    /// streamed ≡ batch contract); `stats.word_ops` counts the streaming
    /// engine's column traversals instead of the batch engine's rows.
    pub fn from_stream(outcome: &StreamOutcome, names: &Names, diagnostics: Vec<String>) -> Self {
        let reps = representatives_of(&outcome.races);
        JobReport {
            exit: if reps.is_empty() {
                ExitClass::Clean
            } else {
                ExitClass::Races
            },
            races: reported_races(reps.iter().map(|cr| (cr.race, cr.category)), names),
            counts: outcome.counts,
            stats: JobStats {
                ops: outcome.stats.ops,
                word_ops: outcome.stats.word_ops,
                rounds: 0,
                block_pairs: outcome.races.len() as u64,
                streamed: true,
            },
            diagnostics,
        }
    }

    /// Renders the report for humans (the `submit` CLI output).
    pub fn render(&self) -> String {
        let mut out = format!(
            "exit={} ops={} word_ops={} block_pairs={}{}\n",
            self.exit,
            self.stats.ops,
            self.stats.word_ops,
            self.stats.block_pairs,
            if self.stats.streamed { " (streamed)" } else { "" },
        );
        out.push_str(&format!(
            "{} representative race(s): {}\n",
            self.races.len(),
            self.counts
        ));
        for r in &self.races {
            out.push_str(&format!(
                "  [{}] {} on {}: op {} vs op {}\n",
                r.category, r.kind, r.loc, r.first, r.second
            ));
        }
        for d in &self.diagnostics {
            out.push_str(&format!("  note: {d}\n"));
        }
        out
    }

    /// Encodes the report as one line of printable ASCII — the form the
    /// result cache persists and the wire protocol ships. Free-form text
    /// (location names, diagnostics) is percent-escaped so the record
    /// splits unambiguously on spaces, commas and semicolons.
    pub fn to_record(&self) -> String {
        let races = if self.races.is_empty() {
            "-".to_owned()
        } else {
            self.races
                .iter()
                .map(|r| {
                    format!(
                        "{}|{}|{}|{}|{}",
                        escape(&r.loc),
                        kind_label(r.kind),
                        category_label(r.category),
                        r.first,
                        r.second
                    )
                })
                .collect::<Vec<_>>()
                .join(",")
        };
        let diags = if self.diagnostics.is_empty() {
            "-".to_owned()
        } else {
            self.diagnostics
                .iter()
                .map(|d| escape(d))
                .collect::<Vec<_>>()
                .join(",")
        };
        format!(
            "exit={} counts={},{},{},{},{} stats={},{},{},{},{} races={races} diags={diags}",
            self.exit.label(),
            self.counts.multithreaded,
            self.counts.co_enabled,
            self.counts.delayed,
            self.counts.cross_posted,
            self.counts.unknown,
            self.stats.ops,
            self.stats.word_ops,
            self.stats.rounds,
            self.stats.block_pairs,
            u8::from(self.stats.streamed),
        )
    }

    /// Parses a [`JobReport::to_record`] line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason for any malformed record; never
    /// panics, whatever the input.
    pub fn from_record(record: &str) -> Result<Self, String> {
        let mut exit = None;
        let mut counts = None;
        let mut stats = None;
        let mut races = None;
        let mut diags = None;
        for field in record.split_whitespace() {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("bad field `{field}`"))?;
            match key {
                "exit" => {
                    exit = Some(
                        ExitClass::from_label(value)
                            .ok_or_else(|| format!("unknown exit class `{value}`"))?,
                    )
                }
                "counts" => {
                    let ns = parse_u64_list(value, 5)?;
                    counts = Some(CategoryCounts {
                        multithreaded: ns[0] as usize,
                        co_enabled: ns[1] as usize,
                        delayed: ns[2] as usize,
                        cross_posted: ns[3] as usize,
                        unknown: ns[4] as usize,
                    });
                }
                "stats" => {
                    let ns = parse_u64_list(value, 5)?;
                    stats = Some(JobStats {
                        ops: ns[0],
                        word_ops: ns[1],
                        rounds: ns[2],
                        block_pairs: ns[3],
                        streamed: ns[4] != 0,
                    });
                }
                "races" => {
                    let mut parsed = Vec::new();
                    if value != "-" {
                        for tok in value.split(',') {
                            parsed.push(parse_race(tok)?);
                        }
                    }
                    races = Some(parsed);
                }
                "diags" => {
                    let mut parsed = Vec::new();
                    if value != "-" {
                        for tok in value.split(',') {
                            parsed.push(unescape(tok)?);
                        }
                    }
                    diags = Some(parsed);
                }
                _ => return Err(format!("unknown field `{key}`")),
            }
        }
        Ok(JobReport {
            exit: exit.ok_or("missing exit field")?,
            races: races.ok_or("missing races field")?,
            counts: counts.ok_or("missing counts field")?,
            stats: stats.ok_or("missing stats field")?,
            diagnostics: diags.ok_or("missing diags field")?,
        })
    }
}

fn reported_races(
    reps: impl Iterator<Item = (crate::race::Race, RaceCategory)>,
    names: &Names,
) -> Vec<ReportedRace> {
    reps.map(|(race, category)| ReportedRace {
        loc: names.loc_name(race.loc),
        kind: race.kind,
        category,
        first: race.first,
        second: race.second,
    })
    .collect()
}

fn kind_label(kind: RaceKind) -> &'static str {
    match kind {
        RaceKind::WriteWrite => "ww",
        RaceKind::WriteRead => "wr",
        RaceKind::ReadWrite => "rw",
    }
}

fn kind_from_label(label: &str) -> Option<RaceKind> {
    Some(match label {
        "ww" => RaceKind::WriteWrite,
        "wr" => RaceKind::WriteRead,
        "rw" => RaceKind::ReadWrite,
        _ => return None,
    })
}

fn category_label(category: RaceCategory) -> &'static str {
    match category {
        RaceCategory::Multithreaded => "mt",
        RaceCategory::CoEnabled => "co",
        RaceCategory::Delayed => "dl",
        RaceCategory::CrossPosted => "xp",
        RaceCategory::Unknown => "un",
    }
}

fn category_from_label(label: &str) -> Option<RaceCategory> {
    Some(match label {
        "mt" => RaceCategory::Multithreaded,
        "co" => RaceCategory::CoEnabled,
        "dl" => RaceCategory::Delayed,
        "xp" => RaceCategory::CrossPosted,
        "un" => RaceCategory::Unknown,
        _ => return None,
    })
}

fn parse_race(tok: &str) -> Result<ReportedRace, String> {
    let parts: Vec<&str> = tok.split('|').collect();
    let [loc, kind, category, first, second] = parts.as_slice() else {
        return Err(format!("bad race entry `{tok}`"));
    };
    Ok(ReportedRace {
        loc: unescape(loc)?,
        kind: kind_from_label(kind).ok_or_else(|| format!("bad race kind `{kind}`"))?,
        category: category_from_label(category)
            .ok_or_else(|| format!("bad race category `{category}`"))?,
        first: first.parse().map_err(|_| format!("bad race index `{first}`"))?,
        second: second.parse().map_err(|_| format!("bad race index `{second}`"))?,
    })
}

fn parse_u64_list(value: &str, expect: usize) -> Result<Vec<u64>, String> {
    let ns: Result<Vec<u64>, _> = value.split(',').map(str::parse).collect();
    let ns = ns.map_err(|_| format!("bad number list `{value}`"))?;
    if ns.len() != expect {
        return Err(format!("expected {expect} numbers, got {} in `{value}`", ns.len()));
    }
    Ok(ns)
}

/// Percent-escapes the record separators (and `%` itself) plus control
/// characters, keeping records single-line and split-safe.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' | ' ' | ',' | '|' | '=' | ';' => out.push_str(&format!("%{:02X}", c as u32)),
            '\x00'..='\x1f' | '\x7f' => out.push_str(&format!("%{:02X}", c as u32)),
            _ => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .ok_or_else(|| format!("truncated escape in `{s}`"))?;
            let hex = std::str::from_utf8(hex).map_err(|_| format!("bad escape in `{s}`"))?;
            out.push(
                u8::from_str_radix(hex, 16).map_err(|_| format!("bad escape `%{hex}` in `{s}`"))?,
            );
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| format!("escaped text in `{s}` is not UTF-8"))
}

/// One uniform entry point for analysis work: submit trace text under a
/// [`JobSpec`], receive a [`JobReport`]. Implemented in-process by
/// [`LocalService`] and over the wire by the analysis server's client.
///
/// Job-level failures (bad input, blown budgets, quarantined workers) are
/// *reports* with the corresponding [`ExitClass`], not `Err`s — `Err` is
/// reserved for transport faults (an unreachable or shut-down server),
/// which an in-process service never produces.
pub trait AnalysisService {
    /// Analyzes `trace_text` according to `spec`.
    ///
    /// # Errors
    ///
    /// Transport failures only; see the trait docs.
    fn submit(&mut self, spec: &JobSpec, trace_text: &str) -> std::io::Result<JobReport>;
}

/// The in-process [`AnalysisService`]: parses per the spec and runs the
/// session through [`AnalysisBuilder`] (or the streaming engine — see
/// [`LocalService::submit_streaming`]). Infallible at the transport level.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalService {
    intra_threads: usize,
}

impl LocalService {
    /// A sequential local service.
    pub fn new() -> Self {
        LocalService { intra_threads: 1 }
    }

    /// Runs each job's happens-before closure on `threads` intra-trace
    /// workers (bit-identical for every thread count).
    pub fn with_intra_threads(threads: usize) -> Self {
        LocalService {
            intra_threads: threads.max(1),
        }
    }

    /// Parses `trace_text` per `spec`, returning the trace and any repair
    /// diagnostics, or the ready [`ExitClass::Invalid`] report.
    #[allow(clippy::result_large_err)] // the Err is the job's actual result, not an error path
    fn parse(&self, spec: &JobSpec, trace_text: &str) -> Result<(Trace, Vec<String>), JobReport> {
        if spec.lenient {
            match from_text_lenient(trace_text) {
                Ok((trace, repairs)) => {
                    Ok((trace, repairs.iter().map(|d| format!("repair: {d}")).collect()))
                }
                Err(e) => Err(JobReport::aborted(ExitClass::Invalid, e.to_string())),
            }
        } else {
            match from_text(trace_text) {
                Ok(trace) => Ok((trace, Vec::new())),
                Err(e) => Err(JobReport::aborted(ExitClass::Invalid, e.to_string())),
            }
        }
    }

    /// Runs the job on the batch pipeline and wraps the outcome.
    fn run_batch(&self, spec: &JobSpec, trace: &Trace, diagnostics: Vec<String>) -> JobReport {
        let session = spec.builder().intra_threads(self.intra_threads);
        match session.analyze(trace) {
            Ok(analysis) => JobReport::from_analysis(&analysis, diagnostics),
            Err(AnalysisError::Validate(e)) => {
                let mut report = JobReport::aborted(ExitClass::Invalid, e.to_string());
                report.diagnostics.splice(0..0, diagnostics);
                report
            }
            Err(AnalysisError::BudgetExhausted(e)) => {
                let mut report = JobReport::aborted(ExitClass::Resource, e.to_string());
                report.stats.ops = trace.len() as u64;
                report.stats.word_ops = e.ops_processed;
                report.diagnostics.splice(0..0, diagnostics);
                report
            }
        }
    }

    /// Like [`AnalysisService::submit`], but drives the *streaming* engine
    /// in `chunk_ops`-sized chunks — the path a mid-session upload takes
    /// through the server. Races, classification and exit class are
    /// identical to the batch submission of the same text (the streamed ≡
    /// batch contract); only `stats.word_ops`/`stats.rounds` reflect the
    /// different engine.
    pub fn submit_streaming(&mut self, spec: &JobSpec, trace_text: &str, chunk_ops: usize) -> JobReport {
        let (trace, diagnostics) = match self.parse(spec, trace_text) {
            Ok(parsed) => parsed,
            Err(report) => return report,
        };
        if spec.validate {
            if let Err(e) = droidracer_trace::validate(&trace) {
                let mut report = JobReport::aborted(ExitClass::Invalid, e.to_string());
                report.diagnostics.splice(0..0, diagnostics);
                return report;
            }
        }
        let builder = spec.builder();
        let mut session = builder.streaming(StreamOptions::default());
        let chunk = chunk_ops.max(1);
        for piece in trace.ops().chunks(chunk) {
            if let Err(e) = session.push_chunk(piece) {
                return budget_stream_report(e, &trace, diagnostics);
            }
        }
        match session.finish(trace.names()) {
            Ok(report) => JobReport::from_stream(&report.outcome, trace.names(), diagnostics),
            Err(e) => budget_stream_report(e, &trace, diagnostics),
        }
    }
}

/// Wraps a streaming-session budget failure into its report.
fn budget_stream_report(e: AnalysisError, trace: &Trace, diagnostics: Vec<String>) -> JobReport {
    let mut report = JobReport::aborted(ExitClass::Resource, e.to_string());
    report.stats.ops = trace.len() as u64;
    report.stats.streamed = true;
    if let AnalysisError::BudgetExhausted(b) = e {
        report.stats.word_ops = b.ops_processed;
    }
    report.diagnostics.splice(0..0, diagnostics);
    report
}

impl AnalysisService for LocalService {
    fn submit(&mut self, spec: &JobSpec, trace_text: &str) -> std::io::Result<JobReport> {
        let report = match self.parse(spec, trace_text) {
            Ok((trace, diagnostics)) => self.run_batch(spec, &trace, diagnostics),
            Err(report) => report,
        };
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use droidracer_trace::{to_text, ThreadKind, TraceBuilder};

    fn racy_text() -> String {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg = b.thread("bg", ThreadKind::App, false);
        let loc = b.loc("obj", "C.state");
        b.thread_init(main);
        b.fork(main, bg);
        b.thread_init(bg);
        b.write(bg, loc);
        b.read(main, loc);
        to_text(&b.finish())
    }

    #[test]
    fn spec_token_round_trips() {
        let specs = [
            JobSpec::default(),
            JobSpec {
                mode: HbMode::EventsAsThreads,
                merge_accesses: false,
                validate: true,
                lenient: true,
                max_ops: Some(123),
                max_matrix_bits: Some(1 << 20),
                deadline_ms: Some(2500),
            },
            JobSpec {
                mode: HbMode::AsyncOnly,
                lenient: true,
                ..JobSpec::default()
            },
        ];
        for spec in specs {
            let token = spec.to_token();
            assert_eq!(JobSpec::from_token(&token), Ok(spec), "{token}");
        }
        assert!(JobSpec::from_token("v2:full:merge:strict:ops=-:bits=-:dl=-").is_err());
        assert!(JobSpec::from_token("garbage").is_err());
        assert!(JobSpec::from_token("").is_err());
    }

    #[test]
    fn local_submit_matches_builder() {
        let text = racy_text();
        let report = LocalService::new()
            .submit(&JobSpec::default(), &text)
            .expect("infallible");
        let trace = from_text(&text).unwrap();
        let analysis = AnalysisBuilder::new().analyze(&trace).unwrap();
        assert_eq!(report, JobReport::from_analysis(&analysis, Vec::new()));
        assert_eq!(report.exit, ExitClass::Races);
        assert_eq!(report.counts.multithreaded, 1);
        assert_eq!(report.stats.word_ops, analysis.hb().stats().word_ops);
        assert_eq!(report.races[0].loc, "obj.C.state");
    }

    #[test]
    fn streamed_submission_matches_batch_races() {
        let text = racy_text();
        let spec = JobSpec::default();
        let batch = LocalService::new().submit(&spec, &text).expect("infallible");
        for chunk in [1, 3, 64] {
            let streamed = LocalService::new().submit_streaming(&spec, &text, chunk);
            assert_eq!(streamed.races, batch.races, "chunk={chunk}");
            assert_eq!(streamed.counts, batch.counts, "chunk={chunk}");
            assert_eq!(streamed.exit, batch.exit, "chunk={chunk}");
            assert!(streamed.stats.streamed);
        }
    }

    #[test]
    fn invalid_and_budget_jobs_classify() {
        let report = LocalService::new()
            .submit(&JobSpec::default(), "not a trace\n")
            .expect("infallible");
        assert_eq!(report.exit, ExitClass::Invalid);
        assert_eq!(report.exit.code(), 3);
        assert!(!report.diagnostics.is_empty());

        let starved = JobSpec {
            max_matrix_bits: Some(1),
            ..JobSpec::default()
        };
        let report = LocalService::new()
            .submit(&starved, &racy_text())
            .expect("infallible");
        assert_eq!(report.exit, ExitClass::Resource);
        assert_eq!(report.exit.code(), 2);
        assert!(report.races.is_empty());

        // Validation gate: a semantically invalid trace is Invalid only
        // when the spec asks for validation.
        let bad = "droidracer-trace v1\nthread t0 main initial \"main\"\ntask p0 \"T\"\nop threadinit t0\nop begin t0 p0\n";
        let lax = LocalService::new().submit(&JobSpec::default(), bad).unwrap();
        assert_ne!(lax.exit, ExitClass::Invalid);
        let strict = JobSpec {
            validate: true,
            ..JobSpec::default()
        };
        let checked = LocalService::new().submit(&strict, bad).unwrap();
        assert_eq!(checked.exit, ExitClass::Invalid);
    }

    #[test]
    fn report_record_round_trips() {
        let text = racy_text();
        let mut report = LocalService::new()
            .submit(&JobSpec::default(), &text)
            .expect("infallible");
        report
            .diagnostics
            .push("weird = chars, with | and % and\nnewline".to_owned());
        let record = report.to_record();
        assert!(!record.contains('\n'), "record must be one line: {record}");
        assert_eq!(JobReport::from_record(&record), Ok::<_, String>(report.clone()));

        // Corrupt records fail with a reason, never a panic.
        for bad in [
            "",
            "exit=clean",
            "exit=wat counts=0,0,0,0,0 stats=0,0,0,0,0 races=- diags=-",
            "exit=clean counts=0,0 stats=0,0,0,0,0 races=- diags=-",
            "exit=clean counts=0,0,0,0,0 stats=0,0,0,0,0 races=zz diags=-",
            "exit=clean counts=0,0,0,0,0 stats=0,0,0,0,0 races=- diags=%G",
            "\u{0}\u{1}",
        ] {
            assert!(JobReport::from_record(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn lenient_repairs_become_diagnostics() {
        let mut text = racy_text();
        text.push_str("this line is garbage\n");
        let strict = LocalService::new().submit(&JobSpec::default(), &text).unwrap();
        assert_eq!(strict.exit, ExitClass::Invalid);
        let spec = JobSpec {
            lenient: true,
            ..JobSpec::default()
        };
        let report = LocalService::new().submit(&spec, &text).unwrap();
        assert_eq!(report.exit, ExitClass::Races);
        assert!(report.diagnostics.iter().any(|d| d.starts_with("repair:")), "{:?}", report.diagnostics);
    }

    #[test]
    fn escape_round_trips() {
        for s in ["", "plain", "a b,c|d=e;f%g", "caf\u{e9} \u{1F980}", "%", "%%"] {
            let escaped = escape(s);
            assert!(!escaped.contains(' ') && !escaped.contains(','), "{escaped}");
            assert_eq!(unescape(&escaped).as_deref(), Ok(s), "{escaped}");
        }
        assert!(unescape("%").is_err());
        assert!(unescape("%zz").is_err());
    }
}
