//! Execution traces and the derived task index.

use std::collections::HashMap;
use std::fmt;

use crate::ids::{EventId, TaskId, ThreadId};
use crate::names::Names;
use crate::op::{Op, OpKind, PostKind};

/// An execution trace: a sequence of core-language operations together with
/// the name table of the entities appearing in it.
///
/// Traces are produced by the simulator (or hand-built via
/// [`crate::TraceBuilder`]) and consumed by the happens-before engine.
///
/// # Examples
///
/// ```
/// use droidracer_trace::{TraceBuilder, ThreadKind};
///
/// let mut b = TraceBuilder::new();
/// let t = b.thread("main", ThreadKind::Main, true);
/// b.thread_init(t);
/// b.thread_exit(t);
/// let trace = b.finish();
/// assert_eq!(trace.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    names: Names,
    ops: Vec<Op>,
}

impl Trace {
    /// Creates a trace from parts. Most users should go through the
    /// simulator or [`crate::TraceBuilder`] instead.
    pub fn from_parts(names: Names, ops: Vec<Op>) -> Self {
        Trace { names, ops }
    }

    /// The operations of the trace, in execution order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// The operation at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn op(&self, index: usize) -> Op {
        self.ops[index]
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace contains no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The name table.
    pub fn names(&self) -> &Names {
        &self.names
    }

    /// Mutable access to the name table (used when post-processing traces).
    pub fn names_mut(&mut self) -> &mut Names {
        &mut self.names
    }

    /// Iterates over `(index, op)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Op)> + '_ {
        self.ops.iter().copied().enumerate()
    }

    /// Returns a copy of the trace with cancelled posts erased.
    ///
    /// §4.2 of the paper: "The cancellation of posted tasks is handled by
    /// removing the corresponding post operations from the trace." The
    /// `cancel` ops themselves are dropped too, as are any `enable` ops for
    /// tasks that were cancelled before running.
    pub fn without_cancelled(&self) -> Trace {
        let cancelled: Vec<TaskId> = self
            .ops
            .iter()
            .filter_map(|op| match op.kind {
                OpKind::Cancel { task } => Some(task),
                _ => None,
            })
            .collect();
        if cancelled.is_empty() {
            return self.clone();
        }
        let ops = self
            .ops
            .iter()
            .copied()
            .filter(|op| match op.kind {
                OpKind::Post { task, .. }
                | OpKind::Cancel { task }
                | OpKind::Enable { task } => !cancelled.contains(&task),
                _ => true,
            })
            .collect();
        Trace {
            names: self.names.clone(),
            ops,
        }
    }

    /// Builds the derived index of tasks, per-op task membership, and
    /// per-thread looper positions.
    pub fn index(&self) -> TraceIndex {
        TraceIndex::build(self)
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, op) in self.iter() {
            writeln!(f, "{i:>5}  {op}")?;
        }
        Ok(())
    }
}

/// Metadata about one asynchronous task instance, derived from a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TaskInfo {
    /// Index of the `post` op that scheduled this task, if present.
    pub post: Option<usize>,
    /// Index of the `enable` op for this task, if present.
    pub enable: Option<usize>,
    /// Index of the `begin` op, if the task started.
    pub begin: Option<usize>,
    /// Index of the `end` op, if the task finished.
    pub end: Option<usize>,
    /// Thread the task runs (or would run) on: the target of its post.
    pub target: Option<ThreadId>,
    /// Thread that issued the post.
    pub poster: Option<ThreadId>,
    /// FIFO / delayed / front nature of the post.
    pub post_kind: PostKind,
    /// Environment event whose handler this task is, if any.
    pub event: Option<EventId>,
}

/// Derived structural information about a trace: which task each operation
/// belongs to, where each thread's looper started, and per-task metadata.
///
/// The paper's helper functions `thread(α)` and `task(α)` (§4.1) are exactly
/// [`Op::thread`] and [`TraceIndex::task_of`].
#[derive(Debug, Clone, Default)]
pub struct TraceIndex {
    /// For each op index, the task containing it (ops on a looping thread
    /// between `begin` and `end`, inclusive). `None` for ops outside any
    /// task.
    op_task: Vec<Option<TaskId>>,
    /// Per-task metadata, indexed by `TaskId`.
    tasks: Vec<TaskInfo>,
    /// Index of each thread's `loopOnQ` op.
    loop_on_q: HashMap<ThreadId, usize>,
    /// Index of each thread's `attachQ` op.
    attach_q: HashMap<ThreadId, usize>,
}

impl TraceIndex {
    fn build(trace: &Trace) -> Self {
        let mut builder = IndexBuilder::with_task_capacity(trace.names().task_count());
        for (_, op) in trace.iter() {
            builder.push(op);
        }
        builder.finish()
    }

    fn ensure_task(&mut self, task: TaskId) {
        if task.index() >= self.tasks.len() {
            self.tasks.resize(task.index() + 1, TaskInfo::default());
        }
    }

    /// The paper's `task(α)`: the asynchronous task containing the op at
    /// `index`, or `None` for operations outside any task (e.g. on threads
    /// without queues, or before `loopOnQ`).
    pub fn task_of(&self, index: usize) -> Option<TaskId> {
        self.op_task.get(index).copied().flatten()
    }

    /// Metadata for `task`.
    pub fn task(&self, task: TaskId) -> &TaskInfo {
        &self.tasks[task.index()]
    }

    /// Number of tasks known to the index.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Iterates over `(TaskId, &TaskInfo)` in id order.
    pub fn tasks(&self) -> impl Iterator<Item = (TaskId, &TaskInfo)> {
        self.tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (TaskId(i as u32), t))
    }

    /// Index of `thread`'s `loopOnQ` op, if it ever started looping.
    pub fn loop_on_q(&self, thread: ThreadId) -> Option<usize> {
        self.loop_on_q.get(&thread).copied()
    }

    /// Index of `thread`'s `attachQ` op, if it attached a queue.
    pub fn attach_q(&self, thread: ThreadId) -> Option<usize> {
        self.attach_q.get(&thread).copied()
    }

    /// Whether the op at `index` on `thread` executes after the thread
    /// started processing its queue (determines NO-Q-PO vs ASYNC-PO).
    pub fn after_loop_on_q(&self, thread: ThreadId, index: usize) -> bool {
        match self.loop_on_q(thread) {
            Some(l) => index > l,
            None => false,
        }
    }

    /// The paper's `chain(α)` (§4.3): the posting chain leading to the task
    /// containing the op at `index`, returned as post-op indices ordered from
    /// oldest to most recent.
    ///
    /// `callee(β_j) = task(β_{j+1})` for consecutive entries, and the callee
    /// of the last entry is the task containing `index`.
    pub fn chain(&self, index: usize) -> Vec<usize> {
        let mut chain = Vec::new();
        let mut task = self.task_of(index);
        while let Some(t) = task {
            let info = self.task(t);
            let Some(post) = info.post else { break };
            chain.push(post);
            task = self.task_of(post);
            if chain.len() > self.tasks.len() {
                break; // defensive: malformed trace with cyclic posts
            }
        }
        chain.reverse();
        chain
    }
}

/// Incremental construction of a [`TraceIndex`]: operations are pushed in
/// trace order and the index is readable between pushes.
/// [`Trace::index`] delegates here, so a fully-pushed builder and the batch
/// build produce identical indexes; the streaming analysis keeps one builder
/// alive across chunks.
#[derive(Debug, Clone, Default)]
pub struct IndexBuilder {
    idx: TraceIndex,
    current: HashMap<ThreadId, TaskId>,
}

impl IndexBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        IndexBuilder::default()
    }

    /// A builder whose task table is pre-sized to `n_tasks` default entries,
    /// matching the batch build (which sizes the table from the name table
    /// before scanning; pushes still grow it past `n_tasks` on demand).
    pub fn with_task_capacity(n_tasks: usize) -> Self {
        let mut b = IndexBuilder::default();
        b.idx.tasks = vec![TaskInfo::default(); n_tasks];
        b
    }

    /// Number of operations pushed so far (the trace index the next push
    /// will be assigned).
    pub fn len(&self) -> usize {
        self.idx.op_task.len()
    }

    /// Whether no operation has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.idx.op_task.is_empty()
    }

    /// Records the next operation and returns the task it belongs to (the
    /// value [`TraceIndex::task_of`] will report for it).
    pub fn push(&mut self, op: Op) -> Option<TaskId> {
        let i = self.idx.op_task.len();
        let idx = &mut self.idx;
        let op_task = match op.kind {
            OpKind::AttachQ => {
                idx.attach_q.entry(op.thread).or_insert(i);
                None
            }
            OpKind::LoopOnQ => {
                idx.loop_on_q.entry(op.thread).or_insert(i);
                None
            }
            OpKind::Post {
                task,
                target,
                kind,
                event,
            } => {
                idx.ensure_task(task);
                let info = &mut idx.tasks[task.index()];
                info.post = Some(i);
                info.target = Some(target);
                info.poster = Some(op.thread);
                info.post_kind = kind;
                if event.is_some() {
                    info.event = event;
                }
                self.current.get(&op.thread).copied()
            }
            OpKind::Enable { task } => {
                idx.ensure_task(task);
                idx.tasks[task.index()].enable = Some(i);
                self.current.get(&op.thread).copied()
            }
            OpKind::Begin { task } => {
                idx.ensure_task(task);
                let info = &mut idx.tasks[task.index()];
                info.begin = Some(i);
                if info.target.is_none() {
                    info.target = Some(op.thread);
                }
                self.current.insert(op.thread, task);
                Some(task)
            }
            OpKind::End { task } => {
                idx.ensure_task(task);
                idx.tasks[task.index()].end = Some(i);
                self.current.remove(&op.thread);
                Some(task)
            }
            _ => self.current.get(&op.thread).copied(),
        };
        idx.op_task.push(op_task);
        op_task
    }

    /// The index over the operations pushed so far.
    pub fn index(&self) -> &TraceIndex {
        &self.idx
    }

    /// The task currently executing on `thread` (between a `begin` and its
    /// `end`), if any.
    pub fn current_task(&self, thread: ThreadId) -> Option<TaskId> {
        self.current.get(&thread).copied()
    }

    /// Consumes the builder, yielding the completed index.
    pub fn finish(self) -> TraceIndex {
        self.idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::ids::ThreadKind;

    /// Builds the small two-task trace used across index tests:
    /// main attaches a queue, loops, runs task A (which posts B), runs B.
    fn two_task_trace() -> (Trace, TaskId, TaskId, ThreadId) {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let a = b.task("A");
        let tb = b.task("B");
        b.thread_init(main);
        b.attach_q(main);
        b.loop_on_q(main);
        b.post(main, a, main);
        b.begin(main, a);
        b.post(main, tb, main);
        b.end(main, a);
        b.begin(main, tb);
        b.end(main, tb);
        (b.finish(), a, tb, main)
    }

    #[test]
    fn index_records_task_boundaries() {
        let (trace, a, tb, main) = two_task_trace();
        let idx = trace.index();
        assert_eq!(idx.task(a).begin, Some(4));
        assert_eq!(idx.task(a).end, Some(6));
        assert_eq!(idx.task(a).post, Some(3));
        assert_eq!(idx.task(tb).post, Some(5));
        assert_eq!(idx.task(tb).begin, Some(7));
        assert_eq!(idx.task(tb).target, Some(main));
    }

    #[test]
    fn ops_inside_task_are_assigned_to_it() {
        let (trace, a, tb, _) = two_task_trace();
        let idx = trace.index();
        // post of B happens inside task A
        assert_eq!(idx.task_of(5), Some(a));
        // begin/end belong to their own task
        assert_eq!(idx.task_of(4), Some(a));
        assert_eq!(idx.task_of(6), Some(a));
        assert_eq!(idx.task_of(7), Some(tb));
        // ops before looping belong to no task
        assert_eq!(idx.task_of(0), None);
        assert_eq!(idx.task_of(3), None);
    }

    #[test]
    fn loop_positions_are_recorded() {
        let (trace, _, _, main) = two_task_trace();
        let idx = trace.index();
        assert_eq!(idx.attach_q(main), Some(1));
        assert_eq!(idx.loop_on_q(main), Some(2));
        assert!(idx.after_loop_on_q(main, 3));
        assert!(!idx.after_loop_on_q(main, 2));
        assert!(!idx.after_loop_on_q(main, 0));
    }

    #[test]
    fn chain_walks_posting_ancestry() {
        let (trace, _, _, _) = two_task_trace();
        let idx = trace.index();
        // op 8 (end of B) is in task B, posted at 5 from inside task A,
        // posted at 3 from outside any task.
        assert_eq!(idx.chain(8), vec![3, 5]);
        // op 4 is in task A whose post (3) is outside any task.
        assert_eq!(idx.chain(4), vec![3]);
        // op 0 is outside any task.
        assert!(idx.chain(0).is_empty());
    }

    #[test]
    fn without_cancelled_erases_posts() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let a = b.task("A");
        b.thread_init(main);
        b.attach_q(main);
        b.loop_on_q(main);
        b.post(main, a, main);
        b.cancel(main, a);
        let trace = b.finish();
        let cleaned = trace.without_cancelled();
        assert_eq!(cleaned.len(), 3);
        assert!(cleaned
            .ops()
            .iter()
            .all(|op| !matches!(op.kind, OpKind::Post { .. } | OpKind::Cancel { .. })));
    }

    #[test]
    fn without_cancelled_is_identity_when_no_cancels() {
        let (trace, _, _, _) = two_task_trace();
        assert_eq!(trace.without_cancelled(), trace);
    }
}
