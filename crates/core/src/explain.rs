//! Debugging support for reported races — the paper's concluding wish
//! ("we also wish to investigate how to provide better debugging support,
//! e.g., by analyzing the races that fall in the unknown category").
//!
//! [`explain`] renders, for one race, everything a developer needs to judge
//! it: the two access sites with their tasks and threads, the posting
//! chains (`chain(α)` of §4.3), the classification criteria evaluated one
//! by one, and why no happens-before path exists.
//!
//! [`to_dot`] exports the happens-before graph in Graphviz format for
//! visual inspection (nodes grouped per thread, race edges highlighted).

use std::fmt::Write as _;

use droidracer_trace::OpKind;

use crate::classify::RaceCategory;
use crate::race::Race;
use crate::report::Analysis;

/// Renders a human-readable explanation of `race`.
pub fn explain(analysis: &Analysis, race: &Race) -> String {
    let trace = analysis.trace();
    let names = trace.names();
    let index = trace.index();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "race on {} ({}):",
        names.loc_name(race.loc),
        race.kind
    );
    for (label, op_idx) in [("first ", race.first), ("second", race.second)] {
        let op = trace.op(op_idx);
        let task = index
            .task_of(op_idx)
            .map(|t| names.task_name(t))
            .unwrap_or_else(|| "<no task>".into());
        let _ = writeln!(
            out,
            "  {label}: op {op_idx} `{op}` on thread `{}` in task `{task}`",
            names.thread_name(op.thread),
        );
        let chain = index.chain(op_idx);
        if chain.is_empty() {
            let _ = writeln!(out, "          posting chain: (none)");
        } else {
            let rendered: Vec<String> = chain
                .iter()
                .map(|&p| {
                    let post = trace.op(p);
                    let extra = match post.kind {
                        OpKind::Post { kind, event, .. } => {
                            let mut tags = Vec::new();
                            if let Some(d) = kind.delay() {
                                tags.push(format!("delay={d}"));
                            }
                            if let Some(e) = event {
                                tags.push(format!("event={}", names.event_name(e)));
                            }
                            if tags.is_empty() {
                                String::new()
                            } else {
                                format!(" [{}]", tags.join(", "))
                            }
                        }
                        _ => String::new(),
                    };
                    format!("op {p} by `{}`{extra}", names.thread_name(post.thread))
                })
                .collect();
            let _ = writeln!(out, "          posting chain: {}", rendered.join(" → "));
        }
    }
    let (i, j) = (race.first, race.second);
    let _ = writeln!(
        out,
        "  ordering: {} ⊀ {} and {} ⊀ {} (no happens-before path in either direction)",
        i, j, j, i
    );
    // Walk the classification criteria in the §4.3 order.
    let t_i = trace.op(i).thread;
    let t_j = trace.op(j).thread;
    if t_i != t_j {
        let _ = writeln!(
            out,
            "  category: multithreaded — the accesses run on `{}` and `{}`",
            names.thread_name(t_i),
            names.thread_name(t_j)
        );
        return out;
    }
    let category = crate::classify::classify(trace, &index, analysis.hb(), race);
    let hint = match category {
        RaceCategory::CoEnabled => {
            "the most recent environment-event posts of the two chains are \
             unordered — check whether the two events are really co-enabled"
        }
        RaceCategory::Delayed => {
            "the chains differ in their most recent delayed posts — inspect \
             the timing constraints of the delayed posts"
        }
        RaceCategory::CrossPosted => {
            "the chains differ in their most recent posts from another \
             thread — resolving this needs thread-local AND inter-thread \
             reasoning"
        }
        RaceCategory::Unknown => "none of the §4.3 criteria matched",
        RaceCategory::Multithreaded => unreachable!("handled above"),
    };
    let _ = writeln!(out, "  category: {category} — {hint}");
    out
}

/// Exports the happens-before graph as Graphviz DOT. Nodes are grouped per
/// thread; only *direct-ish* edges are drawn (an edge `a → b` is drawn when
/// no intermediate node `c` satisfies `a ≺ c ≺ b`), keeping the picture
/// readable. Racing node pairs are connected with dashed red edges.
pub fn to_dot(analysis: &Analysis) -> String {
    let trace = analysis.trace();
    let names = trace.names();
    let hb = analysis.hb();
    let graph = hb.graph();
    let n = graph.node_count();
    let mut out = String::from("digraph happens_before {\n  rankdir=TB;\n  node [shape=box, fontsize=9];\n");
    // Cluster per thread.
    let mut threads: Vec<droidracer_trace::ThreadId> = graph
        .nodes()
        .iter()
        .map(|node| node.thread)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    threads.sort();
    for t in threads {
        let _ = writeln!(
            out,
            "  subgraph \"cluster_{}\" {{\n    label=\"{}\";",
            t,
            names.thread_name(t)
        );
        for id in graph.nodes_of_thread(t) {
            let node = graph.node(*id);
            let label = if node.is_access_block {
                format!("[{}..{}] accesses", node.first, node.last)
            } else {
                format!("{}", trace.op(node.first))
            };
            let _ = writeln!(out, "    n{id} [label=\"{}\"];", label.replace('"', "'"));
        }
        let _ = writeln!(out, "  }}");
    }
    // Transitive reduction (approximate, cubic — fine at graph scale).
    for a in 0..n {
        for b in a + 1..n {
            if !hb.ordered_nodes(a, b) {
                continue;
            }
            let covered =
                (a + 1..b).any(|c| hb.ordered_nodes(a, c) && hb.ordered_nodes(c, b));
            if !covered {
                let _ = writeln!(out, "  n{a} -> n{b};");
            }
        }
    }
    for cr in analysis.races() {
        let (na, nb) = (
            graph.node_of(cr.race.first),
            graph.node_of(cr.race.second),
        );
        let _ = writeln!(
            out,
            "  n{na} -> n{nb} [dir=none, style=dashed, color=red, label=\"{}\"];",
            cr.category
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::AnalysisBuilder;
    use droidracer_trace::{ThreadKind, TraceBuilder};

    fn racy_analysis() -> Analysis {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg = b.thread("bg", ThreadKind::App, false);
        let loc = b.loc("obj", "C.state");
        b.thread_init(main);
        b.fork(main, bg);
        b.thread_init(bg);
        b.write(bg, loc);
        b.read(main, loc);
        AnalysisBuilder::new().analyze(&b.finish()).unwrap()
    }

    #[test]
    fn explain_names_threads_and_category() {
        let analysis = racy_analysis();
        let race = analysis.races()[0].race;
        let text = explain(&analysis, &race);
        assert!(text.contains("C.state"), "{text}");
        assert!(text.contains("multithreaded"), "{text}");
        assert!(text.contains("`bg`"), "{text}");
        assert!(text.contains("`main`"), "{text}");
    }

    #[test]
    fn explain_prints_posting_chains_for_single_threaded_races() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg1 = b.thread("bg1", ThreadKind::App, true);
        let bg2 = b.thread("bg2", ThreadKind::App, true);
        let t1 = b.task("A");
        let t2 = b.task("B");
        let loc = b.loc("o", "C.f");
        b.thread_init(main);
        b.attach_q(main);
        b.loop_on_q(main);
        b.thread_init(bg1);
        b.thread_init(bg2);
        b.post(bg1, t1, main);
        b.post(bg2, t2, main);
        b.begin(main, t1);
        b.write(main, loc);
        b.end(main, t1);
        b.begin(main, t2);
        b.write(main, loc);
        b.end(main, t2);
        let analysis = AnalysisBuilder::new().analyze(&b.finish()).unwrap();
        let race = analysis.races()[0].race;
        let text = explain(&analysis, &race);
        assert!(text.contains("posting chain"), "{text}");
        assert!(text.contains("cross-posted"), "{text}");
        assert!(text.contains("by `bg1`"), "{text}");
    }

    #[test]
    fn dot_export_contains_clusters_edges_and_race() {
        let analysis = racy_analysis();
        let dot = to_dot(&analysis);
        assert!(dot.starts_with("digraph happens_before"));
        assert!(dot.contains("cluster_t0"), "{dot}");
        assert!(dot.contains("cluster_t1"), "{dot}");
        assert!(dot.contains("->"), "{dot}");
        assert!(dot.contains("color=red"), "{dot}");
        assert!(dot.ends_with("}\n"));
    }
}
