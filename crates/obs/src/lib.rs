//! Structured observability for the DroidRacer pipeline.
//!
//! Production race detectors live or die by their diagnostics: every
//! analysis phase must be attributable (where did the time go?) and every
//! engine counter inspectable (what did the fixpoint actually do?). This
//! crate provides the three pieces the rest of the workspace builds on:
//!
//! * **Spans** — hierarchical wall-clock timers with explicit parent/child
//!   structure ([`SpanRecord`]), built through a stack-shaped [`Recorder`]
//!   backed by a monotonic clock;
//! * **Metrics** — a [`MetricsRegistry`] of named counters, gauges and
//!   histograms that absorbs the engine's deterministic hot-path counters
//!   instead of duplicating them;
//! * **Exporters** — a human-readable span-tree renderer
//!   ([`render_span_tree`]) and a Chrome `trace_event`-format JSON writer
//!   ([`chrome_trace`]) loadable in `chrome://tracing` / Perfetto.
//!
//! # Determinism contract
//!
//! A span tree separates *structure* from *wall-clock*. The structure —
//! span names, parent/child hierarchy, and attached counter values — is a
//! pure function of the analyzed input and must be identical across runs
//! and across worker-thread counts (the parallel pipeline merges per-worker
//! spans by input index, never by completion order). The `start_ns` /
//! `dur_ns` fields are the only nondeterministic part; the exporters keep
//! them out of [`SpanRecord::structure`] and [`strip_wall_clock`] erases
//! them from an exported profile, so equivalence tests can compare profiles
//! bit for bit.
//!
//! # Examples
//!
//! ```
//! use droidracer_obs::Recorder;
//!
//! let mut rec = Recorder::new();
//! rec.start("analyze");
//! rec.start("parse");
//! rec.counter("ops", 1355);
//! rec.end();
//! rec.start("closure");
//! rec.end();
//! rec.end();
//! let root = rec.finish_root();
//! assert_eq!(root.name, "analyze");
//! assert_eq!(root.children.len(), 2);
//! assert_eq!(root.find("parse").unwrap().counters, vec![("ops".to_owned(), 1355)]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod export;
pub mod json;
pub mod metrics;

pub use export::{chrome_trace, render_span_tree, strip_wall_clock};
pub use metrics::{Histogram, MetricValue, MetricsRegistry};

use std::time::Instant;

/// One completed span: a named slice of wall-clock time with child spans
/// and deterministic counters attached.
///
/// `start_ns` is measured from the recording clock origin (see
/// [`Recorder::with_origin`]); both time fields are wall-clock and excluded
/// from the determinism contract. Equality compares everything — use
/// [`SpanRecord::structure`] to compare modulo wall-clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (e.g. a pipeline phase like `closure`).
    pub name: String,
    /// Nanoseconds from the clock origin to the span's start (wall-clock).
    pub start_ns: u64,
    /// Span duration in nanoseconds (wall-clock).
    pub dur_ns: u64,
    /// Deterministic counters attached while the span was open, in
    /// attachment order.
    pub counters: Vec<(String, u64)>,
    /// Child spans, in completion order (which equals start order for the
    /// strictly nested spans a [`Recorder`] produces).
    pub children: Vec<SpanRecord>,
}

impl SpanRecord {
    /// A leaf span with zeroed times — useful for tests and synthetic trees.
    pub fn leaf(name: impl Into<String>) -> Self {
        SpanRecord {
            name: name.into(),
            start_ns: 0,
            dur_ns: 0,
            counters: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Depth-first search for the first span named `name` (including self).
    pub fn find(&self, name: &str) -> Option<&SpanRecord> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Total number of spans in this subtree (including self).
    pub fn span_count(&self) -> usize {
        1 + self.children.iter().map(SpanRecord::span_count).sum::<usize>()
    }

    /// The deterministic structure of the subtree: names, hierarchy and
    /// counters, with every wall-clock field omitted. Two runs of the same
    /// input — at any worker-thread count — must produce identical
    /// structures.
    pub fn structure(&self) -> String {
        let mut out = String::new();
        self.push_structure(0, &mut out);
        out
    }

    fn push_structure(&self, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&self.name);
        for (k, v) in &self.counters {
            out.push_str(&format!(" {k}={v}"));
        }
        out.push('\n');
        for child in &self.children {
            child.push_structure(depth + 1, out);
        }
    }

    /// Shifts every `start_ns` in the subtree by `delta` nanoseconds
    /// (saturating at zero).
    fn shift(&mut self, delta: i128) {
        let shifted = self.start_ns as i128 + delta;
        self.start_ns = shifted.clamp(0, u64::MAX as i128) as u64;
        for child in &mut self.children {
            child.shift(delta);
        }
    }
}

struct Frame {
    record: SpanRecord,
    start: Instant,
}

/// A stack-shaped span builder over a monotonic clock.
///
/// [`Recorder::start`] opens a span nested in the innermost open span;
/// [`Recorder::end`] closes it, stamping the duration. Completed subtrees
/// recorded elsewhere on the *same* clock origin graft in via
/// [`Recorder::adopt`]; subtrees from a foreign clock rebase via
/// [`Recorder::graft`].
pub struct Recorder {
    origin: Instant,
    stack: Vec<Frame>,
    roots: Vec<SpanRecord>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// A recorder whose clock origin is "now".
    pub fn new() -> Self {
        Self::with_origin(Instant::now())
    }

    /// A recorder measuring from an explicit origin. Sharing one origin
    /// across the workers of a parallel fan-out puts every recorded span on
    /// a single timeline, so per-worker subtrees adopt without rebasing.
    pub fn with_origin(origin: Instant) -> Self {
        Recorder {
            origin,
            stack: Vec::new(),
            roots: Vec::new(),
        }
    }

    /// The clock origin all `start_ns` values are measured from.
    pub fn origin(&self) -> Instant {
        self.origin
    }

    fn now_ns(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Opens a span as a child of the innermost open span (or a new root).
    pub fn start(&mut self, name: impl Into<String>) {
        let mut record = SpanRecord::leaf(name);
        record.start_ns = self.now_ns();
        self.stack.push(Frame {
            record,
            start: Instant::now(),
        });
    }

    /// Attaches a deterministic counter to the innermost open span.
    ///
    /// # Panics
    ///
    /// Panics if no span is open.
    pub fn counter(&mut self, name: impl Into<String>, value: u64) {
        self.stack
            .last_mut()
            .expect("counter() requires an open span")
            .record
            .counters
            .push((name.into(), value));
    }

    /// Closes the innermost open span.
    ///
    /// # Panics
    ///
    /// Panics if no span is open.
    pub fn end(&mut self) {
        let mut frame = self.stack.pop().expect("end() without a matching start()");
        frame.record.dur_ns = u64::try_from(frame.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        match self.stack.last_mut() {
            Some(parent) => parent.record.children.push(frame.record),
            None => self.roots.push(frame.record),
        }
    }

    /// Runs `f` inside a span named `name` (convenience for start/end).
    pub fn time<R>(&mut self, name: impl Into<String>, f: impl FnOnce(&mut Recorder) -> R) -> R {
        self.start(name);
        let r = f(self);
        self.end();
        r
    }

    /// Attaches a completed subtree recorded on the *same* clock origin as
    /// a child of the innermost open span (or as a root). Times are kept
    /// verbatim.
    pub fn adopt(&mut self, record: SpanRecord) {
        match self.stack.last_mut() {
            Some(parent) => parent.record.children.push(record),
            None => self.roots.push(record),
        }
    }

    /// Attaches a completed subtree recorded on a *foreign* clock, rebasing
    /// its times so the subtree ends "now" on this recorder's timeline.
    /// Correct when grafting immediately after the recorded work finished —
    /// the usual case of folding a worker-local profile into a parent.
    pub fn graft(&mut self, mut record: SpanRecord) {
        let end = record.start_ns.saturating_add(record.dur_ns);
        let delta = self.now_ns() as i128 - end as i128;
        record.shift(delta);
        self.adopt(record);
    }

    /// Closes any still-open spans and returns the completed roots in
    /// completion order.
    pub fn finish(mut self) -> Vec<SpanRecord> {
        while !self.stack.is_empty() {
            self.end();
        }
        self.roots
    }

    /// Like [`Recorder::finish`], asserting the recording produced exactly
    /// one root span.
    ///
    /// # Panics
    ///
    /// Panics if the recording has zero or several roots.
    pub fn finish_root(self) -> SpanRecord {
        let mut roots = self.finish();
        assert_eq!(roots.len(), 1, "expected exactly one root span");
        roots.pop().expect("checked length")
    }
}

/// A destination for completed profiles: one span tree plus the metrics
/// that go with it. Sinks let an `AnalysisBuilder` caller opt into
/// observability without threading arguments through every pipeline layer.
pub trait ObsSink: Send + Sync {
    /// Consumes one completed profile.
    fn record(&self, spans: &SpanRecord, metrics: &MetricsRegistry);
}

/// An [`ObsSink`] that buffers every profile it receives, in arrival order.
///
/// Arrival order is nondeterministic under a parallel fan-out; deterministic
/// pipelines should prefer the span trees carried by the analysis results
/// themselves (merged by input index). The collector is for streaming
/// consumers that only aggregate.
#[derive(Default)]
pub struct CollectingSink {
    profiles: std::sync::Mutex<Vec<(SpanRecord, MetricsRegistry)>>,
}

impl CollectingSink {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drains the collected profiles.
    pub fn take(&self) -> Vec<(SpanRecord, MetricsRegistry)> {
        std::mem::take(&mut self.profiles.lock().expect("sink lock poisoned"))
    }

    /// Number of profiles collected so far.
    pub fn len(&self) -> usize {
        self.profiles.lock().expect("sink lock poisoned").len()
    }

    /// Whether nothing has been collected yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ObsSink for CollectingSink {
    fn record(&self, spans: &SpanRecord, metrics: &MetricsRegistry) {
        self.profiles
            .lock()
            .expect("sink lock poisoned")
            .push((spans.clone(), metrics.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_follows_start_end_pairs() {
        let mut rec = Recorder::new();
        rec.start("root");
        rec.start("a");
        rec.end();
        rec.start("b");
        rec.start("b1");
        rec.end();
        rec.end();
        rec.end();
        let root = rec.finish_root();
        assert_eq!(root.name, "root");
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].name, "a");
        assert_eq!(root.children[1].children[0].name, "b1");
        assert_eq!(root.span_count(), 4);
    }

    #[test]
    fn structure_omits_wall_clock() {
        let mut rec = Recorder::new();
        rec.start("root");
        rec.counter("ops", 7);
        rec.start("child");
        rec.end();
        rec.end();
        let root = rec.finish_root();
        assert_eq!(root.structure(), "root ops=7\n  child\n");
    }

    #[test]
    fn finish_closes_open_spans() {
        let mut rec = Recorder::new();
        rec.start("root");
        rec.start("open");
        let roots = rec.finish();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].children[0].name, "open");
    }

    #[test]
    fn adopt_keeps_times_graft_rebases() {
        let mut child = SpanRecord::leaf("worker");
        child.start_ns = 1_000;
        child.dur_ns = 500;

        let mut rec = Recorder::new();
        rec.start("root");
        rec.adopt(child.clone());
        rec.graft(child);
        rec.end();
        let root = rec.finish_root();
        assert_eq!(root.children[0].start_ns, 1_000);
        // The grafted copy was rebased to end at graft time.
        let grafted = &root.children[1];
        assert!(grafted.start_ns + grafted.dur_ns <= root.dur_ns + root.start_ns + 1_000_000);
    }

    #[test]
    fn find_searches_depth_first() {
        let mut rec = Recorder::new();
        rec.start("root");
        rec.start("x");
        rec.start("target");
        rec.end();
        rec.end();
        rec.end();
        let root = rec.finish_root();
        assert!(root.find("target").is_some());
        assert!(root.find("absent").is_none());
    }

    #[test]
    fn collecting_sink_buffers_profiles() {
        let sink = CollectingSink::new();
        assert!(sink.is_empty());
        sink.record(&SpanRecord::leaf("a"), &MetricsRegistry::new());
        sink.record(&SpanRecord::leaf("b"), &MetricsRegistry::new());
        assert_eq!(sink.len(), 2);
        let got = sink.take();
        assert_eq!(got[0].0.name, "a");
        assert!(sink.is_empty());
    }

    #[test]
    #[should_panic]
    fn end_without_start_panics() {
        let mut rec = Recorder::new();
        rec.end();
    }
}
