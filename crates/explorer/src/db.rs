//! The replay database and the testing campaign driver.
//!
//! "The event sequences generated are stored in a database and used for
//! backtracking and replay" (§5). A [`ReplayDb`] records, for every executed
//! test, the event sequence, the scheduler seed and the decision vector; a
//! stored entry replays to a bit-identical trace via the scripted scheduler.

use std::fmt;
use std::path::Path;

use droidracer_core::{ItemError, QuarantineCause, Quarantined};
use droidracer_framework::{compile, App, UiEvent, UiEventKind, WidgetId};
use droidracer_sim::{run, ScriptedScheduler, SimConfig, SimResult};

use crate::explore::{enumerate_sequences, run_sequence, ExploreError, ExplorerConfig};

/// Header line of the persisted replay-database text format.
const DB_HEADER: &str = "droidracer-replaydb v1";

/// One recorded test execution.
#[derive(Debug, Clone)]
pub struct TestEntry {
    /// Sequence number within the campaign.
    pub id: usize,
    /// The UI event sequence driven.
    pub events: Vec<UiEvent>,
    /// Scheduler seed used for the original run.
    pub seed: u64,
    /// Recorded decision vector (replays the exact schedule).
    pub decisions: Vec<usize>,
    /// Whether the original run reached quiescence.
    pub completed: bool,
    /// Length of the emitted trace.
    pub trace_len: usize,
}

/// A store of executed tests supporting exact replay.
#[derive(Debug, Clone, Default)]
pub struct ReplayDb {
    entries: Vec<TestEntry>,
}

impl ReplayDb {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a run.
    pub fn record(&mut self, events: Vec<UiEvent>, seed: u64, result: &SimResult) -> usize {
        let id = self.entries.len();
        self.entries.push(TestEntry {
            id,
            events,
            seed,
            decisions: result.decisions.clone(),
            completed: result.completed,
            trace_len: result.trace.len(),
        });
        id
    }

    /// All entries.
    pub fn entries(&self) -> &[TestEntry] {
        &self.entries
    }

    /// Entry by id.
    pub fn entry(&self, id: usize) -> Option<&TestEntry> {
        self.entries.get(id)
    }

    /// Number of stored tests.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes the database to its line-oriented text format
    /// (`droidracer-replaydb v1`).
    pub fn to_text(&self) -> String {
        let mut out = String::from(DB_HEADER);
        out.push('\n');
        for e in &self.entries {
            out.push_str(&format!(
                "entry {} seed={} completed={} trace_len={} events={} decisions={}\n",
                e.id,
                e.seed,
                u8::from(e.completed),
                e.trace_len,
                encode_list(e.events.iter().map(encode_event)),
                encode_list(e.decisions.iter().map(usize::to_string)),
            ));
        }
        out
    }

    /// Parses a persisted database. Corrupt lines — a bad header, malformed
    /// fields, unknown event encodings — are *skipped* with a
    /// [`DbDiagnostic`]; the surviving entries are renumbered densely, so
    /// the returned database is always internally consistent and the lost
    /// entries can be regenerated (see [`run_campaign_cached`]). This never
    /// panics, whatever the input.
    pub fn from_text(text: &str) -> (Self, Vec<DbDiagnostic>) {
        let mut db = ReplayDb::new();
        let mut diags = Vec::new();
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, first)) if first.trim_end() == DB_HEADER => {}
            other => {
                diags.push(DbDiagnostic {
                    line: 1,
                    message: format!(
                        "missing header `{DB_HEADER}`, got {:?}; ignoring the whole file",
                        other.map(|(_, l)| l).unwrap_or_default()
                    ),
                });
                return (db, diags);
            }
        }
        for (idx, line) in lines {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            match parse_entry_line(line) {
                Ok((events, seed, decisions, completed, trace_len)) => {
                    let id = db.entries.len();
                    db.entries.push(TestEntry {
                        id,
                        events,
                        seed,
                        decisions,
                        completed,
                        trace_len,
                    });
                }
                Err(message) => diags.push(DbDiagnostic {
                    line: idx + 1,
                    message,
                }),
            }
        }
        (db, diags)
    }

    /// Writes the database to `path` in the text format.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Loads a database from `path`, skipping corrupt entries with
    /// diagnostics (see [`ReplayDb::from_text`]).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error (a corrupt *readable* file is
    /// not an error — it yields diagnostics).
    pub fn load(path: &Path) -> std::io::Result<(Self, Vec<DbDiagnostic>)> {
        let text = std::fs::read_to_string(path)?;
        Ok(Self::from_text(&text))
    }

    /// Replays entry `id` against `app`, reproducing the recorded schedule.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError`] if the app no longer compiles with the
    /// stored events, and `None` if the id is unknown.
    pub fn replay(&self, app: &App, id: usize) -> Option<Result<SimResult, ExploreError>> {
        let entry = self.entry(id)?;
        let compiled = match compile(app, &entry.events) {
            Ok(c) => c,
            Err(e) => return Some(Err(e.into())),
        };
        let result = run(
            &compiled.program,
            &mut ScriptedScheduler::new(entry.decisions.clone()),
            &SimConfig::default(),
        )
        .map_err(ExploreError::from);
        Some(result)
    }
}

/// A diagnostic produced while loading a persisted replay database: one
/// corrupt line that was skipped (and whose entry will be regenerated).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbDiagnostic {
    /// 1-based line number in the persisted file.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for DbDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "replay-db line {}: {}", self.line, self.message)
    }
}

/// Renders a comma-separated list, with `-` standing for the empty list
/// (so every field is a single non-empty token).
fn encode_list(items: impl Iterator<Item = String>) -> String {
    let joined = items.collect::<Vec<_>>().join(",");
    if joined.is_empty() {
        "-".to_owned()
    } else {
        joined
    }
}

fn encode_event(e: &UiEvent) -> String {
    match e {
        UiEvent::Widget(w, kind) => format!("w{}:{}", w.index(), kind.label()),
        UiEvent::Back => "back".to_owned(),
        UiEvent::Rotate => "rotate".to_owned(),
    }
}

fn decode_event(tok: &str) -> Result<UiEvent, String> {
    match tok {
        "back" => return Ok(UiEvent::Back),
        "rotate" => return Ok(UiEvent::Rotate),
        _ => {}
    }
    let rest = tok
        .strip_prefix('w')
        .ok_or_else(|| format!("unknown event `{tok}`"))?;
    let (idx, label) = rest
        .split_once(':')
        .ok_or_else(|| format!("malformed widget event `{tok}`"))?;
    let idx: usize = idx.parse().map_err(|_| format!("bad widget index in `{tok}`"))?;
    let kind = UiEventKind::all()
        .into_iter()
        .find(|k| k.label() == label)
        .ok_or_else(|| format!("unknown event kind `{label}` in `{tok}`"))?;
    Ok(UiEvent::Widget(WidgetId::from_index(idx), kind))
}

type ParsedEntry = (Vec<UiEvent>, u64, Vec<usize>, bool, usize);

/// Parses one `entry …` line; the error is a human-readable reason.
fn parse_entry_line(line: &str) -> Result<ParsedEntry, String> {
    let mut toks = line.split_whitespace();
    if toks.next() != Some("entry") {
        return Err(format!("expected `entry`, got `{line}`"));
    }
    // The stored id is cosmetic — entries are renumbered densely on load so
    // the database stays consistent after corrupt lines are dropped.
    let _id: usize = toks
        .next()
        .ok_or("truncated entry line")?
        .parse()
        .map_err(|_| "bad entry id".to_owned())?;
    let mut seed = None;
    let mut completed = None;
    let mut trace_len = None;
    let mut events = None;
    let mut decisions = None;
    for tok in toks {
        let (key, value) = tok.split_once('=').ok_or_else(|| format!("bad field `{tok}`"))?;
        match key {
            "seed" => seed = Some(value.parse::<u64>().map_err(|_| format!("bad seed `{value}`"))?),
            "completed" => {
                completed = Some(match value {
                    "0" => false,
                    "1" => true,
                    _ => return Err(format!("bad completed flag `{value}`")),
                })
            }
            "trace_len" => {
                trace_len =
                    Some(value.parse::<usize>().map_err(|_| format!("bad trace_len `{value}`"))?)
            }
            "events" => {
                let mut parsed = Vec::new();
                if value != "-" {
                    for tok in value.split(',') {
                        parsed.push(decode_event(tok)?);
                    }
                }
                events = Some(parsed);
            }
            "decisions" => {
                let mut parsed = Vec::new();
                if value != "-" {
                    for tok in value.split(',') {
                        parsed
                            .push(tok.parse::<usize>().map_err(|_| format!("bad decision `{tok}`"))?);
                    }
                }
                decisions = Some(parsed);
            }
            _ => return Err(format!("unknown field `{key}`")),
        }
    }
    Ok((
        events.ok_or("missing events field")?,
        seed.ok_or("missing seed field")?,
        decisions.ok_or("missing decisions field")?,
        completed.ok_or("missing completed field")?,
        trace_len.ok_or("missing trace_len field")?,
    ))
}

/// A finished testing campaign: every enumerated sequence executed once.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// The replay database of all executed tests.
    pub db: ReplayDb,
    /// The traces paired with their event sequences, in DFS order.
    pub runs: Vec<(Vec<UiEvent>, SimResult)>,
}

/// Runs a full campaign: enumerate sequences depth-first (bounded by the
/// config) and execute each one.
///
/// # Errors
///
/// Returns the first compile/simulation failure; individual incomplete runs
/// (cut off or blocked) are recorded, not errors.
pub fn run_campaign(app: &App, config: &ExplorerConfig) -> Result<Campaign, ExploreError> {
    run_campaign_parallel(app, config, 1)
}

/// Like [`run_campaign`], executing the sequences on `threads` workers.
///
/// Every sequence runs under the same scheduler seed it gets in the
/// sequential campaign, and the database is recorded in DFS enumeration
/// order after the fan-out joins, so the resulting [`Campaign`] — entry
/// ids, decision vectors, traces — is identical for every thread count.
///
/// # Errors
///
/// Returns the first compile/simulation failure (in enumeration order, not
/// completion order); individual incomplete runs are recorded, not errors.
pub fn run_campaign_parallel(
    app: &App,
    config: &ExplorerConfig,
    threads: usize,
) -> Result<Campaign, ExploreError> {
    run_campaign_profiled(app, config, threads).map(|(campaign, _)| campaign)
}

/// Like [`run_campaign_parallel`], additionally returning the campaign's
/// span tree: a root `explore` span with one `explore[i]` child per
/// enumerated sequence (in DFS enumeration order for every thread count),
/// each carrying `trace_ops` and `completed` counters.
///
/// # Errors
///
/// Returns the first compile/simulation failure (in enumeration order, not
/// completion order); individual incomplete runs are recorded, not errors.
pub fn run_campaign_profiled(
    app: &App,
    config: &ExplorerConfig,
    threads: usize,
) -> Result<(Campaign, droidracer_obs::SpanRecord), ExploreError> {
    let sequences = enumerate_sequences(app, config);
    let (results, span) =
        droidracer_core::par_map_profiled(&sequences, threads, "explore", |events, rec| {
            let result = run_sequence(app, events, config);
            if let Ok(result) = &result {
                rec.counter("trace_ops", result.trace.len() as u64);
                rec.counter("completed", u64::from(result.completed));
            }
            result
        });
    let mut db = ReplayDb::new();
    let mut runs = Vec::new();
    for (events, result) in sequences.into_iter().zip(results) {
        let result = result?;
        db.record(events.clone(), config.seed, &result);
        runs.push((events, result));
    }
    Ok((Campaign { db, runs }, span))
}

/// Fault-isolated campaign: like [`run_campaign_parallel`], but every
/// sequence runs inside a panic boundary
/// ([`droidracer_core::par_try_map`]). A sequence that panics or fails to
/// compile/simulate is reported as a [`Quarantined`] verdict instead of
/// aborting the campaign; the surviving sequences are recorded in DFS
/// enumeration order, bit-identical to a campaign without the faulty
/// sequence.
pub fn run_campaign_isolated(
    app: &App,
    config: &ExplorerConfig,
    threads: usize,
) -> (Campaign, Vec<Quarantined>) {
    let sequences = enumerate_sequences(app, config);
    let results = droidracer_core::par_try_map(&sequences, threads, |events| {
        run_sequence(app, events, config)
    });
    let mut db = ReplayDb::new();
    let mut runs = Vec::new();
    let mut quarantined = Vec::new();
    for (events, result) in sequences.into_iter().zip(results) {
        match result {
            Ok(result) => {
                db.record(events.clone(), config.seed, &result);
                runs.push((events, result));
            }
            Err(err) => {
                let (cause, payload) = match err {
                    ItemError::Panic(msg) => (QuarantineCause::Panic, msg),
                    ItemError::Err(e) => (QuarantineCause::Error, e.to_string()),
                };
                quarantined.push(Quarantined {
                    input: events
                        .iter()
                        .map(|e| e.describe(app))
                        .collect::<Vec<_>>()
                        .join(" "),
                    cause,
                    payload,
                });
            }
        }
    }
    (Campaign { db, runs }, quarantined)
}

/// Runs a campaign backed by a persisted [`ReplayDb`] cache at `path`.
///
/// Cached entries whose event sequence matches an enumerated sequence are
/// *replayed* through the scripted scheduler; an entry that is corrupt in
/// the file, fails to replay, or no longer reproduces its recorded
/// `completed`/`trace_len` metadata is dropped with a [`DbDiagnostic`] and
/// the sequence is regenerated from scratch. The refreshed database is
/// saved back to `path`, so a corrupted cache heals itself. The resulting
/// [`Campaign`] is identical to [`run_campaign`]'s for every cache state.
///
/// # Errors
///
/// Returns the first compile/simulation failure while *regenerating* (the
/// same failures [`run_campaign`] reports); cache corruption and cache I/O
/// problems are diagnostics, never errors.
pub fn run_campaign_cached(
    app: &App,
    config: &ExplorerConfig,
    path: &Path,
) -> Result<(Campaign, Vec<DbDiagnostic>), ExploreError> {
    let mut diags = Vec::new();
    let cached = match std::fs::read_to_string(path) {
        Ok(text) => {
            let (db, mut parse_diags) = ReplayDb::from_text(&text);
            diags.append(&mut parse_diags);
            db
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => ReplayDb::new(),
        Err(e) => {
            diags.push(DbDiagnostic {
                line: 0,
                message: format!("cannot read cache {}: {e}; regenerating", path.display()),
            });
            ReplayDb::new()
        }
    };
    let sequences = enumerate_sequences(app, config);
    let mut used = vec![false; cached.len()];
    let mut db = ReplayDb::new();
    let mut runs = Vec::new();
    for events in sequences {
        let hit = cached
            .entries()
            .iter()
            .find(|e| !used[e.id] && e.events == events && e.seed == config.seed);
        let result = match hit {
            Some(entry) => {
                used[entry.id] = true;
                match replay_entry(app, entry, config) {
                    Ok(result) => Some(result),
                    Err(reason) => {
                        diags.push(DbDiagnostic {
                            line: entry.id + 2, // header is line 1
                            message: format!("stale cache entry {}: {reason}; regenerated", entry.id),
                        });
                        None
                    }
                }
            }
            None => None,
        };
        let result = match result {
            Some(r) => r,
            None => run_sequence(app, &events, config)?,
        };
        db.record(events.clone(), config.seed, &result);
        runs.push((events, result));
    }
    if let Err(e) = db.save(path) {
        diags.push(DbDiagnostic {
            line: 0,
            message: format!("cannot write cache {}: {e}", path.display()),
        });
    }
    Ok((Campaign { db, runs }, diags))
}

/// Replays one cached entry and checks it still reproduces its recorded
/// metadata; the error is a human-readable staleness reason.
fn replay_entry(app: &App, entry: &TestEntry, config: &ExplorerConfig) -> Result<SimResult, String> {
    let compiled = compile(app, &entry.events).map_err(|e| format!("no longer compiles: {e}"))?;
    let result = run(
        &compiled.program,
        &mut ScriptedScheduler::new(entry.decisions.clone()),
        &SimConfig {
            max_steps: config.max_steps,
        },
    )
    .map_err(|e| format!("no longer simulates: {e}"))?;
    if result.completed != entry.completed || result.trace.len() != entry.trace_len {
        return Err(format!(
            "replay diverged (completed {} vs {}, trace_len {} vs {})",
            result.completed,
            entry.completed,
            result.trace.len(),
            entry.trace_len
        ));
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use droidracer_framework::{AppBuilder, Stmt};
    use droidracer_trace::validate;

    fn app() -> App {
        let mut b = AppBuilder::new("Db");
        let a = b.activity("Main");
        let v = b.var("o", "C.f");
        b.button(a, "go", vec![Stmt::Write(v)]);
        b.finish()
    }

    #[test]
    fn campaign_runs_every_sequence() {
        let app = app();
        let config = ExplorerConfig {
            max_depth: 2,
            ..ExplorerConfig::default()
        };
        let campaign = run_campaign(&app, &config).expect("campaign runs");
        assert_eq!(campaign.db.len(), campaign.runs.len());
        assert!(!campaign.db.is_empty());
        for (events, result) in &campaign.runs {
            assert_eq!(validate(&result.trace), Ok(()), "sequence {events:?}");
        }
    }

    #[test]
    fn replay_reproduces_exact_trace() {
        let app = app();
        let config = ExplorerConfig {
            max_depth: 1,
            seed: 99,
            ..ExplorerConfig::default()
        };
        let campaign = run_campaign(&app, &config).expect("campaign runs");
        for (id, (_, original)) in campaign.runs.iter().enumerate() {
            let replayed = campaign
                .db
                .replay(&app, id)
                .expect("entry exists")
                .expect("replay runs");
            assert_eq!(replayed.trace.ops(), original.trace.ops(), "entry {id}");
        }
    }

    #[test]
    fn unknown_entry_returns_none() {
        let db = ReplayDb::new();
        assert!(db.replay(&app(), 0).is_none());
        assert!(db.entry(3).is_none());
    }

    #[test]
    fn profiled_campaign_has_stable_span_structure() {
        let app = app();
        let config = ExplorerConfig {
            max_depth: 2,
            ..ExplorerConfig::default()
        };
        let (campaign, base) = run_campaign_profiled(&app, &config, 1).expect("campaign runs");
        assert_eq!(base.name, "explore");
        assert_eq!(base.children.len(), campaign.runs.len());
        assert!(base.children[0].counters.iter().any(|(k, _)| k == "trace_ops"));
        for threads in [2, 8] {
            let (c, span) = run_campaign_profiled(&app, &config, threads).expect("campaign runs");
            assert_eq!(c.db.len(), campaign.db.len(), "threads={threads}");
            assert_eq!(span.structure(), base.structure(), "threads={threads}");
        }
    }

    #[test]
    fn text_format_round_trips() {
        let app = app();
        let config = ExplorerConfig {
            max_depth: 2,
            ..ExplorerConfig::default()
        };
        let campaign = run_campaign(&app, &config).expect("campaign runs");
        let text = campaign.db.to_text();
        let (loaded, diags) = ReplayDb::from_text(&text);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(loaded.len(), campaign.db.len());
        for (a, b) in loaded.entries().iter().zip(campaign.db.entries()) {
            assert_eq!((a.id, a.seed, a.completed, a.trace_len), (b.id, b.seed, b.completed, b.trace_len));
            assert_eq!(a.events, b.events);
            assert_eq!(a.decisions, b.decisions);
        }
    }

    #[test]
    fn corrupt_lines_are_skipped_with_diagnostics() {
        let app = app();
        let config = ExplorerConfig {
            max_depth: 2,
            ..ExplorerConfig::default()
        };
        let campaign = run_campaign(&app, &config).expect("campaign runs");
        let text = campaign.db.to_text();
        // Corrupt the second entry line in assorted ways; loading must skip
        // exactly that entry, diagnose it, and renumber the survivors.
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() > 2, "need at least two entries");
        for corrupt in ["entry x garbage", "entry 1 seed=abc", "zzz", "entry 1 seed=0 completed=2 trace_len=1 events=back decisions=-"] {
            let mut mutated = lines.clone();
            mutated[2] = corrupt;
            let (loaded, diags) = ReplayDb::from_text(&mutated.join("\n"));
            assert_eq!(loaded.len(), campaign.db.len() - 1, "corruption {corrupt:?}");
            assert_eq!(diags.len(), 1, "corruption {corrupt:?}: {diags:?}");
            assert_eq!(diags[0].line, 3);
            // Dense renumbering keeps the database consistent.
            for (i, e) in loaded.entries().iter().enumerate() {
                assert_eq!(e.id, i);
            }
        }
        // A missing header voids the whole file with a single diagnostic.
        let (empty, diags) = ReplayDb::from_text("not a database\n");
        assert!(empty.is_empty());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 1);
        // Arbitrary garbage never panics.
        let (_, _) = ReplayDb::from_text("");
        let (_, _) = ReplayDb::from_text("\u{0}\u{1}\n\n entry");
    }

    #[test]
    fn cached_campaign_heals_a_corrupted_cache() {
        let app = app();
        let config = ExplorerConfig {
            max_depth: 2,
            ..ExplorerConfig::default()
        };
        let path = std::env::temp_dir().join(format!("droidracer-replaydb-{}.txt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let baseline = run_campaign(&app, &config).expect("campaign runs");
        // Cold cache: regenerates everything, writes the file.
        let (cold, diags) = run_campaign_cached(&app, &config, &path).expect("cached campaign");
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(cold.db.len(), baseline.db.len());
        // Warm cache: replays everything, still identical.
        let (warm, diags) = run_campaign_cached(&app, &config, &path).expect("cached campaign");
        assert!(diags.is_empty(), "{diags:?}");
        for ((_, a), (_, b)) in warm.runs.iter().zip(&baseline.runs) {
            assert_eq!(a.trace.ops(), b.trace.ops());
        }
        // Corrupt one line on disk: the run diagnoses, regenerates, and the
        // file heals — a subsequent load parses clean.
        let text = std::fs::read_to_string(&path).expect("cache readable");
        let mutated: Vec<String> = text
            .lines()
            .enumerate()
            .map(|(i, l)| if i == 2 { "entry 1 seed=broken".to_owned() } else { l.to_owned() })
            .collect();
        std::fs::write(&path, mutated.join("\n")).expect("cache writable");
        let (healed, diags) = run_campaign_cached(&app, &config, &path).expect("cached campaign");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(healed.db.len(), baseline.db.len());
        for ((_, a), (_, b)) in healed.runs.iter().zip(&baseline.runs) {
            assert_eq!(a.trace.ops(), b.trace.ops());
        }
        let (reloaded, diags) = ReplayDb::load(&path).expect("cache readable");
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(reloaded.len(), baseline.db.len());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn isolated_campaign_matches_plain_campaign_when_clean() {
        let app = app();
        let config = ExplorerConfig {
            max_depth: 2,
            ..ExplorerConfig::default()
        };
        let baseline = run_campaign(&app, &config).expect("campaign runs");
        for threads in [1, 4] {
            let (campaign, quarantined) = run_campaign_isolated(&app, &config, threads);
            assert!(quarantined.is_empty(), "{quarantined:?}");
            assert_eq!(campaign.db.len(), baseline.db.len(), "threads={threads}");
            for ((_, a), (_, b)) in campaign.runs.iter().zip(&baseline.runs) {
                assert_eq!(a.trace.ops(), b.trace.ops(), "threads={threads}");
            }
        }
    }

    #[test]
    fn record_captures_metadata() {
        let app = app();
        let config = ExplorerConfig::default();
        let seqs = enumerate_sequences(&app, &config);
        let result = run_sequence(&app, &seqs[0], &config).expect("runs");
        let mut db = ReplayDb::new();
        let id = db.record(seqs[0].clone(), config.seed, &result);
        let entry = db.entry(id).expect("stored");
        assert_eq!(entry.trace_len, result.trace.len());
        assert_eq!(entry.completed, result.completed);
        assert_eq!(entry.events, seqs[0]);
    }
}
