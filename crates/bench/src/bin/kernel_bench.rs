//! Micro-benchmarks for the `core::simd` bit kernels.
//!
//! Times every chunked kernel against its scalar reference on
//! deterministic pseudo-random rows, printing median per-iteration times
//! through the vendored criterion stub. Before timing, each pair is
//! differentially checked on the bench inputs — a kernel that disagrees
//! with its scalar reference aborts the run, so CI's kernel-bench smoke
//! step doubles as an end-to-end equivalence probe on large rows (the
//! proptest suite covers the small/edge shapes).
//!
//! Run with `cargo run --release -p droidracer-bench --bin kernel_bench`.
//! `KERNEL_BENCH_SAMPLES` overrides the per-benchmark sample count (CI
//! uses a small value; the default 50 gives steadier medians locally).

use criterion::{BenchmarkId, Criterion};
use droidracer_core::simd;

/// Row length in words for the timed kernels — wide enough that the chunk
/// loop dominates the scalar tail (K-9 Mail's matrix rows are ~400 words).
const WORDS: usize = 4096;

/// Deterministic xorshift64* row fill, `density` ∈ [0,64] bits per word.
fn row(seed: u64, len: usize, density: u32) -> Vec<u64> {
    let mut s = seed.max(1);
    (0..len)
        .map(|_| {
            let mut w = 0u64;
            for _ in 0..density {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                w |= 1u64 << (s % 64);
            }
            w
        })
        .collect()
}

fn check_kernels(a: &[u64], b: &[u64], mask: &[u64]) {
    let (mut v, mut s) = (b.to_vec(), b.to_vec());
    assert_eq!(
        simd::or_into(&mut v, a),
        simd::or_into_scalar(&mut s, a),
        "or_into changed-flag diverged"
    );
    assert_eq!(v, s, "or_into bits diverged");

    let (mut v, mut s) = (b.to_vec(), b.to_vec());
    assert_eq!(
        simd::or_into_track(&mut v, a),
        simd::or_into_track_scalar(&mut s, a),
        "or_into_track range diverged"
    );
    assert_eq!(v, s, "or_into_track bits diverged");

    let (mut v, mut s) = (vec![0u64; WORDS], vec![0u64; WORDS]);
    let (mut nv, mut ns) = (Vec::new(), Vec::new());
    assert_eq!(
        simd::union_masked_collect(a, b, mask, &mut v, 0, |bit| nv.push(bit)),
        simd::union_masked_collect_scalar(a, b, mask, &mut s, 0, |bit| ns.push(bit)),
        "union_masked_collect changed-flag diverged"
    );
    assert_eq!((v, nv), (s, ns), "union_masked_collect diverged");

    let (mut v, mut s) = (a.to_vec(), a.to_vec());
    simd::and_not(&mut v, mask);
    simd::and_not_scalar(&mut s, mask);
    assert_eq!(v, s, "and_not diverged");

    assert_eq!(
        simd::count_ones(a),
        simd::count_ones_scalar(a),
        "count_ones diverged"
    );

    let (mut bv, mut bs) = (Vec::new(), Vec::new());
    simd::for_each_set(a, 3, |bit| bv.push(bit));
    simd::for_each_set_scalar(a, 3, |bit| bs.push(bit));
    assert_eq!(bv, bs, "for_each_set diverged");
}

fn bench_kernels(c: &mut Criterion) {
    let samples: usize = std::env::var("KERNEL_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50);
    let a = row(0x9E3779B97F4A7C15, WORDS, 8);
    let b = row(0xD1B54A32D192ED03, WORDS, 8);
    let mask = row(0x8CB92BA72F3D8DD7, WORDS, 4);
    check_kernels(&a, &b, &mask);
    println!("kernel differential check OK ({WORDS}-word rows)\n");

    let mut group = c.benchmark_group("kernels");
    group.sample_size(samples);
    for (name, vector) in [("or_into/vector", true), ("or_into/scalar", false)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &vector, |bch, &vec| {
            let mut dst = b.clone();
            bch.iter(|| {
                if vec {
                    simd::or_into(&mut dst, &a)
                } else {
                    simd::or_into_scalar(&mut dst, &a)
                }
            });
        });
    }
    for (name, vector) in [
        ("or_into_track/vector", true),
        ("or_into_track/scalar", false),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &vector, |bch, &vec| {
            let mut dst = b.clone();
            bch.iter(|| {
                if vec {
                    simd::or_into_track(&mut dst, &a)
                } else {
                    simd::or_into_track_scalar(&mut dst, &a)
                }
            });
        });
    }
    for (name, vector) in [
        ("union_masked_collect/vector", true),
        ("union_masked_collect/scalar", false),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &vector, |bch, &vec| {
            let mut dst = vec![0u64; WORDS];
            let mut sink = 0usize;
            bch.iter(|| {
                if vec {
                    simd::union_masked_collect(&a, &b, &mask, &mut dst, 0, |bit| sink ^= bit)
                } else {
                    simd::union_masked_collect_scalar(&a, &b, &mask, &mut dst, 0, |bit| {
                        sink ^= bit
                    })
                }
            });
            std::hint::black_box(sink);
        });
    }
    for (name, vector) in [("and_not/vector", true), ("and_not/scalar", false)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &vector, |bch, &vec| {
            let mut dst = a.clone();
            bch.iter(|| {
                if vec {
                    simd::and_not(&mut dst, &mask)
                } else {
                    simd::and_not_scalar(&mut dst, &mask)
                }
            });
        });
    }
    for (name, vector) in [("count_ones/vector", true), ("count_ones/scalar", false)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &vector, |bch, &vec| {
            bch.iter(|| {
                if vec {
                    simd::count_ones(&a)
                } else {
                    simd::count_ones_scalar(&a)
                }
            });
        });
    }
    for (name, vector) in [("for_each_set/vector", true), ("for_each_set/scalar", false)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &vector, |bch, &vec| {
            let mut sink = 0usize;
            bch.iter(|| {
                if vec {
                    simd::for_each_set(&a, 0, |bit| sink ^= bit)
                } else {
                    simd::for_each_set_scalar(&a, 0, |bit| sink ^= bit)
                }
            });
            std::hint::black_box(sink);
        });
    }
    group.finish();
}

fn main() {
    let mut criterion = Criterion::default();
    bench_kernels(&mut criterion);
}
