//! Injected-mutation self-test: prove every oracle divergence path is
//! actually reachable by deliberately breaking one engine rule and checking
//! the harness (a) notices, (b) shrinks a counterexample to ≤ 25 trace ops
//! that still reproduces the divergence standalone.
//!
//! Each case flips a single [`RuleSet`] switch on the *incremental* side
//! only, leaving the reference saturation correct — the differential layer
//! must then flag any trace exercising the rule.

use droidracer_core::{HbConfig, RuleSet};
use droidracer_fuzz::oracle::{check_trace, DivergenceKind};
use droidracer_fuzz::{run_fuzz_with_engines, FuzzConfig};

fn mutated(rules: RuleSet) -> HbConfig {
    HbConfig {
        rules,
        merge_accesses: true,
    }
}

/// Rule mutations the harness must catch, labelled for failure messages.
fn mutations() -> Vec<(&'static str, HbConfig)> {
    let full = RuleSet::full;
    vec![
        ("fifo-off", mutated(RuleSet { fifo: false, ..full() })),
        ("nopre-off", mutated(RuleSet { nopre: false, ..full() })),
        ("fork-off", mutated(RuleSet { fork: false, ..full() })),
        ("lock-off", mutated(RuleSet { lock: false, ..full() })),
        ("post-off", mutated(RuleSet { post: false, ..full() })),
        ("delayed-fifo-off", mutated(RuleSet { delayed_fifo: false, ..full() })),
    ]
}

#[test]
fn every_rule_flip_is_reported_and_shrunk() {
    for (label, broken) in mutations() {
        let config = FuzzConfig {
            seed: 0xD201D,
            iters: 400,
            witness_budget: 0,
            witness_races_per_iter: 0,
            max_failures: 1,
            ..FuzzConfig::default()
        };
        let report = run_fuzz_with_engines(&config, broken, HbConfig::new());
        assert!(
            !report.failures.is_empty(),
            "{label}: the harness must notice the broken rule\n{}",
            report.render()
        );
        let failure = &report.failures[0];
        assert!(
            failure
                .divergences
                .iter()
                .any(|d| matches!(
                    d.kind,
                    DivergenceKind::ClosureMatrix | DivergenceKind::ClosureStats
                )),
            "{label}: expected a closure divergence, got {:?}",
            failure.divergences
        );

        // The counterexample must be shrunk and small.
        let shrunk = failure
            .shrunk
            .as_ref()
            .unwrap_or_else(|| panic!("{label}: failure must carry a shrunk trace"));
        assert!(
            shrunk.len() <= 25,
            "{label}: shrunk counterexample has {} ops (> 25)",
            shrunk.len()
        );
        assert!(
            shrunk.len() <= failure.trace.len(),
            "{label}: shrinking must not grow the trace"
        );

        // And it must reproduce the divergence standalone, straight from
        // the trace — the form it would be committed in.
        let recheck = check_trace(shrunk, broken, HbConfig::new());
        assert!(
            recheck
                .divergences
                .iter()
                .any(|d| matches!(
                    d.kind,
                    DivergenceKind::ClosureMatrix | DivergenceKind::ClosureStats
                )),
            "{label}: shrunk trace no longer reproduces: {:?}",
            recheck.divergences
        );
    }
}

/// Sanity inversion: with identical configurations on both sides the same
/// session is clean — the self-test's failures come from the mutation, not
/// from the harness.
#[test]
fn unmutated_control_session_is_clean() {
    let config = FuzzConfig {
        seed: 0xD201D,
        iters: 100,
        witness_budget: 8,
        witness_races_per_iter: 1,
        ..FuzzConfig::default()
    };
    let report = run_fuzz_with_engines(&config, HbConfig::new(), HbConfig::new());
    assert_eq!(report.oracle_divergences(), 0, "{}", report.render());
}
