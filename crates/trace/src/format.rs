//! A line-based text format for traces.
//!
//! The real DroidRacer logs traces from the instrumented VM and analyses them
//! offline; this module plays the same role, letting traces be written to
//! disk by the simulator and read back by the detector or the replay
//! database. The format is deliberately simple: one declaration or operation
//! per line.
//!
//! ```text
//! droidracer-trace v1
//! thread t0 main initial "main"
//! task p0 "LAUNCH_ACTIVITY"
//! op post t0 p0 t0 delay=100 event=e0
//! ```

use std::error::Error;
use std::fmt;

use crate::ids::{EventId, FieldId, LockId, MemLoc, ObjectId, TaskId, ThreadId, ThreadKind};
use crate::names::Names;
use crate::op::{Op, OpKind, PostKind};
use crate::trace::Trace;

const HEADER: &str = "droidracer-trace v1";

/// An error produced while parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseTraceError {}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn unquote(s: &str) -> Option<String> {
    let inner = s.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                _ => return None,
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// Serializes `trace` to the text format.
pub fn to_text(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    let names = trace.names();
    for (id, decl) in names.threads() {
        out.push_str(&format!(
            "thread {id} {}{} {}\n",
            decl.kind,
            if decl.initial { " initial" } else { "" },
            quote(&decl.name)
        ));
    }
    for i in 0..names.task_count() {
        let id = TaskId(i as u32);
        out.push_str(&format!("task {id} {}\n", quote(&names.task_name(id))));
    }
    for i in 0..names.event_count() {
        let id = EventId(i as u32);
        out.push_str(&format!("event {id} {}\n", quote(&names.event_name(id))));
    }
    // Locks, objects and fields have no dedicated count accessors beyond
    // fields; emit the ones actually used plus named declarations via probing
    // is fragile, so we emit every id below the max referenced by an op.
    let (mut max_lock, mut max_obj, mut max_field) = (0usize, 0usize, 0usize);
    for op in trace.ops() {
        match op.kind {
            OpKind::Acquire { lock } | OpKind::Release { lock } => {
                max_lock = max_lock.max(lock.index() + 1)
            }
            OpKind::Read { loc } | OpKind::Write { loc } => {
                max_obj = max_obj.max(loc.object.index() + 1);
                max_field = max_field.max(loc.field.index() + 1);
            }
            _ => {}
        }
    }
    max_field = max_field.max(names.field_count());
    for i in 0..max_lock {
        let id = LockId(i as u32);
        out.push_str(&format!("lock {id} {}\n", quote(&names.lock_name(id))));
    }
    for i in 0..max_obj {
        let id = ObjectId(i as u32);
        out.push_str(&format!("object {id} {}\n", quote(&names.object_name(id))));
    }
    for i in 0..max_field {
        let id = FieldId(i as u32);
        out.push_str(&format!("field {id} {}\n", quote(&names.field_name(id))));
    }
    for op in trace.ops() {
        out.push_str("op ");
        out.push_str(&op_line(op));
        out.push('\n');
    }
    out
}

fn op_line(op: &Op) -> String {
    let t = op.thread;
    match op.kind {
        OpKind::ThreadInit => format!("threadinit {t}"),
        OpKind::ThreadExit => format!("threadexit {t}"),
        OpKind::Fork { child } => format!("fork {t} {child}"),
        OpKind::Join { child } => format!("join {t} {child}"),
        OpKind::AttachQ => format!("attachQ {t}"),
        OpKind::LoopOnQ => format!("loopOnQ {t}"),
        OpKind::Post {
            task,
            target,
            kind,
            event,
        } => {
            let mut s = format!("post {t} {task} {target}");
            match kind {
                PostKind::Plain => {}
                PostKind::Delayed(d) => s.push_str(&format!(" delay={d}")),
                PostKind::Front => s.push_str(" front"),
            }
            if let Some(e) = event {
                s.push_str(&format!(" event={e}"));
            }
            s
        }
        OpKind::Begin { task } => format!("begin {t} {task}"),
        OpKind::End { task } => format!("end {t} {task}"),
        OpKind::Cancel { task } => format!("cancel {t} {task}"),
        OpKind::Acquire { lock } => format!("acquire {t} {lock}"),
        OpKind::Release { lock } => format!("release {t} {lock}"),
        OpKind::Read { loc } => format!("read {t} {}.{}", loc.object, loc.field),
        OpKind::Write { loc } => format!("write {t} {}.{}", loc.object, loc.field),
        OpKind::Enable { task } => format!("enable {t} {task}"),
    }
}

fn parse_id(tok: &str, prefix: char, line: usize) -> Result<u32, ParseTraceError> {
    tok.strip_prefix(prefix)
        .and_then(|rest| rest.parse().ok())
        .ok_or_else(|| ParseTraceError {
            line,
            message: format!("expected `{prefix}<n>` id, got `{tok}`"),
        })
}

/// Parses the text format back into a [`Trace`].
///
/// # Errors
///
/// Returns [`ParseTraceError`] on malformed input; the error carries the
/// offending line number.
pub fn from_text(text: &str) -> Result<Trace, ParseTraceError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, l)) if l.trim() == HEADER => {}
        other => {
            return Err(ParseTraceError {
                line: 1,
                message: format!("missing header `{HEADER}`, got {:?}", other.map(|(_, l)| l)),
            })
        }
    }
    let mut names = Names::new();
    let mut ops = Vec::new();
    // Declarations must arrive in id order; track counts to check.
    for (idx, raw) in lines {
        let line = idx + 1;
        let l = raw.trim();
        if l.is_empty() || l.starts_with('#') {
            continue;
        }
        let err = |message: String| ParseTraceError { line, message };
        // Quoted names may contain arbitrary whitespace: split the line at
        // the opening quote and tokenize only the head.
        let (head, quoted) = match l.find('"') {
            Some(q) => (&l[..q], &l[q..]),
            None => (l, ""),
        };
        let mut toks = head.split_whitespace();
        let keyword = toks.next().unwrap_or("");
        match keyword {
            "thread" => {
                let _id = toks.next().ok_or_else(|| err("missing thread id".into()))?;
                let kind_tok = toks.next().ok_or_else(|| err("missing thread kind".into()))?;
                let kind = match kind_tok {
                    "main" => ThreadKind::Main,
                    "binder" => ThreadKind::Binder,
                    "app" => ThreadKind::App,
                    "system" => ThreadKind::System,
                    other => return Err(err(format!("unknown thread kind `{other}`"))),
                };
                let initial = match toks.next() {
                    Some("initial") => true,
                    Some(other) => return Err(err(format!("unexpected token `{other}`"))),
                    None => false,
                };
                let name = unquote(quoted.trim_end())
                    .ok_or_else(|| err("malformed thread name".into()))?;
                names.fresh_thread(name, kind, initial);
            }
            "task" | "event" | "lock" | "object" | "field" => {
                let _id = toks.next().ok_or_else(|| err("missing id".into()))?;
                let name = unquote(quoted.trim_end()).ok_or_else(|| err("malformed name".into()))?;
                match keyword {
                    "task" => {
                        names.fresh_task(name);
                    }
                    "event" => {
                        names.fresh_event(name);
                    }
                    "lock" => {
                        names.fresh_lock(name);
                    }
                    "object" => {
                        names.fresh_object(name);
                    }
                    "field" => {
                        names.field(name);
                    }
                    _ => unreachable!(),
                }
            }
            "op" => {
                let mnemonic = toks.next().ok_or_else(|| err("missing op mnemonic".into()))?;
                let t = ThreadId(parse_id(
                    toks.next().ok_or_else(|| err("missing thread".into()))?,
                    't',
                    line,
                )?);
                let kind = match mnemonic {
                    "threadinit" => OpKind::ThreadInit,
                    "threadexit" => OpKind::ThreadExit,
                    "attachQ" => OpKind::AttachQ,
                    "loopOnQ" => OpKind::LoopOnQ,
                    "fork" | "join" => {
                        let child = ThreadId(parse_id(
                            toks.next().ok_or_else(|| err("missing child thread".into()))?,
                            't',
                            line,
                        )?);
                        if mnemonic == "fork" {
                            OpKind::Fork { child }
                        } else {
                            OpKind::Join { child }
                        }
                    }
                    "begin" | "end" | "cancel" | "enable" => {
                        let task = TaskId(parse_id(
                            toks.next().ok_or_else(|| err("missing task".into()))?,
                            'p',
                            line,
                        )?);
                        match mnemonic {
                            "begin" => OpKind::Begin { task },
                            "end" => OpKind::End { task },
                            "cancel" => OpKind::Cancel { task },
                            _ => OpKind::Enable { task },
                        }
                    }
                    "acquire" | "release" => {
                        let lock = LockId(parse_id(
                            toks.next().ok_or_else(|| err("missing lock".into()))?,
                            'l',
                            line,
                        )?);
                        if mnemonic == "acquire" {
                            OpKind::Acquire { lock }
                        } else {
                            OpKind::Release { lock }
                        }
                    }
                    "read" | "write" => {
                        let loc_tok = toks.next().ok_or_else(|| err("missing location".into()))?;
                        let (obj, field) = loc_tok
                            .split_once('.')
                            .ok_or_else(|| err(format!("malformed location `{loc_tok}`")))?;
                        let loc = MemLoc::new(
                            ObjectId(parse_id(obj, 'o', line)?),
                            FieldId(parse_id(field, 'f', line)?),
                        );
                        if mnemonic == "read" {
                            OpKind::Read { loc }
                        } else {
                            OpKind::Write { loc }
                        }
                    }
                    "post" => {
                        let task = TaskId(parse_id(
                            toks.next().ok_or_else(|| err("missing task".into()))?,
                            'p',
                            line,
                        )?);
                        let target = ThreadId(parse_id(
                            toks.next().ok_or_else(|| err("missing target".into()))?,
                            't',
                            line,
                        )?);
                        let mut kind = PostKind::Plain;
                        let mut event = None;
                        for extra in toks.by_ref() {
                            if extra == "front" {
                                kind = PostKind::Front;
                            } else if let Some(d) = extra.strip_prefix("delay=") {
                                let d = d
                                    .parse()
                                    .map_err(|_| err(format!("bad delay `{extra}`")))?;
                                kind = PostKind::Delayed(d);
                            } else if let Some(e) = extra.strip_prefix("event=") {
                                event = Some(EventId(parse_id(e, 'e', line)?));
                            } else {
                                return Err(err(format!("unknown post attribute `{extra}`")));
                            }
                        }
                        OpKind::Post {
                            task,
                            target,
                            kind,
                            event,
                        }
                    }
                    other => return Err(err(format!("unknown op `{other}`"))),
                };
                ops.push(Op::new(t, kind));
            }
            other => return Err(err(format!("unknown keyword `{other}`"))),
        }
    }
    Ok(Trace::from_parts(names, ops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::ids::ThreadKind;

    fn sample_trace() -> Trace {
        let mut b = TraceBuilder::new();
        let binder = b.thread("binder thread", ThreadKind::Binder, true);
        let main = b.thread("main", ThreadKind::Main, true);
        let bg = b.thread("bg", ThreadKind::App, false);
        let launch = b.task("LAUNCH_ACTIVITY");
        let update = b.task("onProgressUpdate");
        let click = b.event("click:playBtn");
        let l = b.lock("mLock");
        let loc = b.loc("DwFileAct-obj", "DwFileAct.isActivityDestroyed");
        b.thread_init(main);
        b.attach_q(main);
        b.loop_on_q(main);
        b.thread_init(binder);
        b.post(binder, launch, main);
        b.begin(main, launch);
        b.write(main, loc);
        b.fork(main, bg);
        b.end(main, launch);
        b.thread_init(bg);
        b.read(bg, loc);
        b.acquire(bg, l);
        b.release(bg, l);
        b.post_with(bg, update, main, PostKind::Delayed(50), Some(click));
        b.thread_exit(bg);
        b.join(main, bg);
        b.begin(main, update);
        b.end(main, update);
        b.finish()
    }

    #[test]
    fn roundtrip_preserves_trace() {
        let trace = sample_trace();
        let text = to_text(&trace);
        let back = from_text(&text).expect("parse back");
        assert_eq!(back.ops(), trace.ops());
        assert_eq!(back.names().thread_name(ThreadId(0)), "binder thread");
        assert_eq!(back.names().task_name(TaskId(1)), "onProgressUpdate");
        assert_eq!(back.names().event_name(EventId(0)), "click:playBtn");
    }

    #[test]
    fn quoting_roundtrips_special_characters() {
        for s in ["plain", "with \"quotes\"", "back\\slash", "new\nline", ""] {
            assert_eq!(unquote(&quote(s)).as_deref(), Some(s));
        }
    }

    #[test]
    fn missing_header_is_rejected() {
        let err = from_text("garbage\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("header"));
    }

    #[test]
    fn unknown_op_is_rejected_with_line_number() {
        let text = format!("{HEADER}\nop frobnicate t0\n");
        let err = from_text(&text).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = format!("{HEADER}\n\n# a comment\nthread t0 main initial \"main\"\nop threadinit t0\n");
        let trace = from_text(&text).expect("parse");
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn bad_post_attribute_is_rejected() {
        let text = format!("{HEADER}\nthread t0 main initial \"m\"\ntask p0 \"a\"\nop post t0 p0 t0 bogus=1\n");
        assert!(from_text(&text).is_err());
    }
}
