//! Greedy minimization of failing fuzz inputs.
//!
//! The shrinker edits the [`ProgramSpec`] (never the trace directly): every
//! candidate is re-lowered, re-run under the *same* scheduler seed, and
//! re-checked against the oracle stack, so only genuinely feasible smaller
//! programs survive. A deletion is kept when the resulting trace still
//! triggers a divergence of the same [`DivergenceKind`] as the original
//! failure. Passes run to a fixpoint, coarsest deletions first: whole
//! threads, whole tasks, injections, then single body actions.

use std::collections::BTreeSet;

use droidracer_core::HbConfig;
use droidracer_sim::{run, RandomScheduler, SimConfig};
use droidracer_trace::Trace;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::gen::{ProgramSpec, SpecAction};
use crate::oracle::{check_trace, DivergenceKind};

/// A minimized failing input.
#[derive(Debug)]
pub struct ShrinkResult {
    /// The smallest spec still triggering the failure.
    pub spec: ProgramSpec,
    /// The trace it produces under the replayed scheduler seed.
    pub trace: Trace,
    /// The divergence kinds the minimized trace still triggers.
    pub kinds: BTreeSet<DivergenceKind>,
    /// Fixpoint rounds the shrinker ran.
    pub rounds: usize,
}

/// Runs `spec` under the deterministic scheduler seed and returns the trace
/// plus the divergence kinds it triggers under `(incremental, reference)`.
fn probe(
    spec: &ProgramSpec,
    sched_seed: u64,
    incremental: HbConfig,
    reference: HbConfig,
) -> Option<(Trace, BTreeSet<DivergenceKind>)> {
    let program = spec.lower().ok()?;
    let mut sched = RandomScheduler::from_rng(SmallRng::seed_from_u64(sched_seed));
    let result = run(&program, &mut sched, &SimConfig { max_steps: 20_000 }).ok()?;
    let report = check_trace(&result.trace, incremental, reference);
    let kinds = report.divergences.iter().map(|d| d.kind).collect();
    Some((result.trace, kinds))
}

/// Minimizes `spec` while a divergence kind in `target` still fires.
///
/// `sched_seed` must be the seed of the random scheduler that produced the
/// original failure; replaying it keeps the search deterministic. Returns
/// `None` when the input does not reproduce under the probe at all — e.g.
/// a witness-replay failure, which only manifests during schedule search,
/// not when re-checking the trace.
pub fn shrink(
    spec: &ProgramSpec,
    sched_seed: u64,
    incremental: HbConfig,
    reference: HbConfig,
    target: &BTreeSet<DivergenceKind>,
) -> Option<ShrinkResult> {
    let (best, (best_trace, best_kinds), rounds) =
        shrink_with(spec, &|candidate: &ProgramSpec| {
            let (trace, kinds) = probe(candidate, sched_seed, incremental, reference)?;
            kinds.iter().any(|k| target.contains(k)).then_some((trace, kinds))
        })?;
    Some(ShrinkResult {
        spec: best,
        trace: best_trace,
        kinds: best_kinds,
        rounds,
    })
}

/// The generic greedy minimizer: repeatedly deletes spec components while
/// `keep` still accepts the candidate, coarsest deletions first (whole
/// threads — never the first, which anchors the main looper — whole tasks,
/// injections, then single body actions), running passes to a fixpoint.
///
/// `keep` returns `Some(witness)` when the candidate still exhibits the
/// property being minimized (a divergence, a coverage feature, …); the
/// witness of the final accepted candidate is returned alongside it.
/// Returns `None` when `keep` rejects the input itself.
pub fn shrink_with<T>(
    spec: &ProgramSpec,
    keep: &dyn Fn(&ProgramSpec) -> Option<T>,
) -> Option<(ProgramSpec, T, usize)> {
    let mut best = spec.clone();
    let mut witness = keep(&best)?;
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let mut changed = false;
        let try_candidate = |cand: ProgramSpec, best: &mut ProgramSpec, witness: &mut T| {
            if let Some(w) = keep(&cand) {
                *best = cand;
                *witness = w;
                true
            } else {
                false
            }
        };

        for j in (1..best.threads.len()).rev() {
            if try_candidate(remove_thread(&best, j), &mut best, &mut witness) {
                changed = true;
            }
        }
        for j in (0..best.tasks.len()).rev() {
            if try_candidate(remove_task(&best, j), &mut best, &mut witness) {
                changed = true;
            }
        }
        for j in (0..best.injections.len()).rev() {
            let mut cand = best.clone();
            cand.injections.remove(j);
            if try_candidate(cand, &mut best, &mut witness) {
                changed = true;
            }
        }

        for ti in 0..best.threads.len() {
            for k in (0..best.threads[ti].body.len()).rev() {
                let mut cand = best.clone();
                cand.threads[ti].body.remove(k);
                if try_candidate(cand, &mut best, &mut witness) {
                    changed = true;
                }
            }
        }
        for ti in 0..best.tasks.len() {
            for k in (0..best.tasks[ti].body.len()).rev() {
                let mut cand = best.clone();
                cand.tasks[ti].body.remove(k);
                if try_candidate(cand, &mut best, &mut witness) {
                    changed = true;
                }
            }
        }

        if !changed {
            break;
        }
    }
    Some((best, witness, rounds))
}

/// Returns `spec` without task `j`: references to higher-indexed tasks are
/// remapped, actions referencing the removed task are dropped.
pub fn remove_task(spec: &ProgramSpec, j: usize) -> ProgramSpec {
    let mut out = spec.clone();
    out.tasks.remove(j);
    let remap = |body: &mut Vec<SpecAction>| {
        body.retain(|a| match a {
            SpecAction::Post { task, .. }
            | SpecAction::Enable(task)
            | SpecAction::Cancel(task)
            | SpecAction::AddIdle { task, .. } => *task != j,
            _ => true,
        });
        for a in body.iter_mut() {
            match a {
                SpecAction::Post { task, .. }
                | SpecAction::Enable(task)
                | SpecAction::Cancel(task)
                | SpecAction::AddIdle { task, .. }
                    if *task > j =>
                {
                    *task -= 1;
                }
                _ => {}
            }
        }
    };
    for t in &mut out.threads {
        remap(&mut t.body);
    }
    for t in &mut out.tasks {
        remap(&mut t.body);
    }
    out.injections.retain(|i| i.task != j);
    for i in &mut out.injections {
        if i.task > j {
            i.task -= 1;
        }
    }
    out
}

/// Returns `spec` without thread `j`: references to higher-indexed threads
/// are remapped, actions targeting the removed thread are dropped.
pub fn remove_thread(spec: &ProgramSpec, j: usize) -> ProgramSpec {
    let mut out = spec.clone();
    out.threads.remove(j);
    let remap = |body: &mut Vec<SpecAction>| {
        body.retain(|a| match a {
            SpecAction::Post { target, .. } | SpecAction::AddIdle { target, .. } => *target != j,
            SpecAction::Fork(t) | SpecAction::Join(t) => *t != j,
            _ => true,
        });
        for a in body.iter_mut() {
            match a {
                SpecAction::Post { target, .. } | SpecAction::AddIdle { target, .. }
                    if *target > j =>
                {
                    *target -= 1;
                }
                SpecAction::Fork(t) | SpecAction::Join(t) if *t > j => {
                    *t -= 1;
                }
                _ => {}
            }
        }
    };
    for t in &mut out.threads {
        remap(&mut t.body);
    }
    for t in &mut out.tasks {
        remap(&mut t.body);
    }
    out.injections.retain(|i| i.poster != j && i.target != j);
    for i in &mut out.injections {
        if i.poster > j {
            i.poster -= 1;
        }
        if i.target > j {
            i.target -= 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{SpecTask, SpecThread};
    use droidracer_core::RuleSet;
    use droidracer_trace::{PostKind, ThreadKind};

    /// A padded racy program: two unordered writes (fork without join) plus
    /// noise — extra threads, tasks and accesses the shrinker should strip.
    fn padded_racy_spec() -> ProgramSpec {
        ProgramSpec {
            threads: vec![
                SpecThread {
                    name: "main".into(),
                    initial: true,
                    queue: true,
                    kind: ThreadKind::Main,
                    body: vec![
                        SpecAction::Read(1),
                        SpecAction::Fork(2),
                        SpecAction::Write(0),
                        SpecAction::Post { task: 0, target: 0, kind: PostKind::Plain },
                    ],
                },
                SpecThread {
                    name: "noise".into(),
                    initial: true,
                    queue: false,
                    kind: ThreadKind::App,
                    body: vec![SpecAction::Read(1), SpecAction::Read(1)],
                },
                SpecThread {
                    name: "worker".into(),
                    initial: false,
                    queue: false,
                    kind: ThreadKind::App,
                    body: vec![SpecAction::Write(0)],
                },
            ],
            tasks: vec![SpecTask {
                name: "task0".into(),
                event: None,
                needs_enable: false,
                body: vec![SpecAction::Read(1)],
            }],
            locks: 0,
            locs: 2,
            injections: Vec::new(),
            components: Vec::new(),
        }
    }

    #[test]
    fn shrink_strips_noise_while_preserving_the_divergence() {
        // Flip the FORK rule on the incremental side only: every trace with
        // a fork edge diverges from the reference.
        let mutated = HbConfig {
            rules: RuleSet { fork: false, ..RuleSet::full() },
            merge_accesses: true,
        };
        let spec = padded_racy_spec();
        let target: BTreeSet<DivergenceKind> =
            [DivergenceKind::ClosureMatrix, DivergenceKind::ClosureStats]
                .into_iter()
                .collect();
        let (_, kinds) = probe(&spec, 7, mutated, HbConfig::new()).expect("spec runs");
        assert!(kinds.iter().any(|k| target.contains(k)), "must fail initially: {kinds:?}");

        let result = shrink(&spec, 7, mutated, HbConfig::new(), &target)
            .expect("the padded spec reproduces under the probe");
        assert!(result.kinds.iter().any(|k| target.contains(k)));
        assert!(
            result.spec.action_count() < spec.action_count(),
            "shrinker must delete something: {} vs {}",
            result.spec.action_count(),
            spec.action_count()
        );
        assert!(result.trace.len() <= 25, "shrunk trace stays small: {}", result.trace.len());
    }

    #[test]
    fn remove_task_remaps_references() {
        let mut spec = padded_racy_spec();
        spec.tasks.push(SpecTask {
            name: "task1".into(),
            event: None,
            needs_enable: false,
            body: vec![],
        });
        spec.threads[0]
            .body
            .push(SpecAction::Post { task: 1, target: 0, kind: PostKind::Plain });
        let out = remove_task(&spec, 0);
        assert_eq!(out.tasks.len(), 1);
        // The post of old task 1 is remapped to index 0; posts of old task 0
        // are gone.
        assert!(out.threads[0]
            .body
            .iter()
            .any(|a| matches!(a, SpecAction::Post { task: 0, .. })));
        assert!(out.lower().is_ok());
    }

    #[test]
    fn remove_thread_drops_dangling_forks() {
        let spec = padded_racy_spec();
        let out = remove_thread(&spec, 2);
        assert!(!out
            .threads
            .iter()
            .any(|t| t.body.iter().any(|a| matches!(a, SpecAction::Fork(_)))));
        assert!(out.lower().is_ok());
    }
}
