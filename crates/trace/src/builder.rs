//! Convenience builder for hand-written traces (tests, examples, docs).

use crate::ids::{EventId, LockId, MemLoc, TaskId, ThreadId, ThreadKind};
use crate::names::Names;
use crate::op::{Op, OpKind, PostKind};
use crate::trace::Trace;
use crate::validate::{validate, ValidateError};

/// Builds a [`Trace`] operation by operation.
///
/// The builder does not enforce the operational semantics; pair it with
/// [`crate::validate`] when a test needs a *feasible* trace.
///
/// # Examples
///
/// ```
/// use droidracer_trace::{TraceBuilder, ThreadKind, validate};
///
/// let mut b = TraceBuilder::new();
/// let main = b.thread("main", ThreadKind::Main, true);
/// let task = b.task("LAUNCH_ACTIVITY");
/// b.thread_init(main);
/// b.attach_q(main);
/// b.loop_on_q(main);
/// b.post(main, task, main);
/// b.begin(main, task);
/// b.end(main, task);
/// let trace = b.finish();
/// assert!(validate(&trace).is_ok());
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceBuilder {
    names: Names,
    ops: Vec<Op>,
}

impl TraceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a thread.
    pub fn thread(&mut self, name: impl Into<String>, kind: ThreadKind, initial: bool) -> ThreadId {
        self.names.fresh_thread(name, kind, initial)
    }

    /// Declares a task instance.
    pub fn task(&mut self, name: impl Into<String>) -> TaskId {
        self.names.fresh_task(name)
    }

    /// Declares a lock.
    pub fn lock(&mut self, name: impl Into<String>) -> LockId {
        self.names.fresh_lock(name)
    }

    /// Declares an environment event.
    pub fn event(&mut self, name: impl Into<String>) -> EventId {
        self.names.fresh_event(name)
    }

    /// Declares a memory location `object.field`, creating a fresh object.
    pub fn loc(&mut self, object: impl Into<String>, field: impl AsRef<str>) -> MemLoc {
        let object = self.names.fresh_object(object);
        let field = self.names.field(field);
        MemLoc::new(object, field)
    }

    /// Declares a field on an existing object.
    pub fn field_of(&mut self, object: crate::ids::ObjectId, field: impl AsRef<str>) -> MemLoc {
        MemLoc::new(object, self.names.field(field))
    }

    /// Appends an arbitrary operation.
    pub fn push(&mut self, op: Op) -> usize {
        self.ops.push(op);
        self.ops.len() - 1
    }

    /// Appends `threadinit(t)`.
    pub fn thread_init(&mut self, t: ThreadId) -> usize {
        self.push(Op::new(t, OpKind::ThreadInit))
    }

    /// Appends `threadexit(t)`.
    pub fn thread_exit(&mut self, t: ThreadId) -> usize {
        self.push(Op::new(t, OpKind::ThreadExit))
    }

    /// Appends `fork(t, child)`.
    pub fn fork(&mut self, t: ThreadId, child: ThreadId) -> usize {
        self.push(Op::new(t, OpKind::Fork { child }))
    }

    /// Appends `join(t, child)`.
    pub fn join(&mut self, t: ThreadId, child: ThreadId) -> usize {
        self.push(Op::new(t, OpKind::Join { child }))
    }

    /// Appends `attachQ(t)`.
    pub fn attach_q(&mut self, t: ThreadId) -> usize {
        self.push(Op::new(t, OpKind::AttachQ))
    }

    /// Appends `loopOnQ(t)`.
    pub fn loop_on_q(&mut self, t: ThreadId) -> usize {
        self.push(Op::new(t, OpKind::LoopOnQ))
    }

    /// Appends a plain FIFO `post(t, task, target)`.
    pub fn post(&mut self, t: ThreadId, task: TaskId, target: ThreadId) -> usize {
        self.push(Op::new(
            t,
            OpKind::Post {
                task,
                target,
                kind: PostKind::Plain,
                event: None,
            },
        ))
    }

    /// Appends a post with explicit kind and event provenance.
    pub fn post_with(
        &mut self,
        t: ThreadId,
        task: TaskId,
        target: ThreadId,
        kind: PostKind,
        event: Option<EventId>,
    ) -> usize {
        self.push(Op::new(
            t,
            OpKind::Post {
                task,
                target,
                kind,
                event,
            },
        ))
    }

    /// Appends a delayed post with timeout `delay`.
    pub fn post_delayed(&mut self, t: ThreadId, task: TaskId, target: ThreadId, delay: u64) -> usize {
        self.post_with(t, task, target, PostKind::Delayed(delay), None)
    }

    /// Appends a front-of-queue post (extension beyond the paper).
    pub fn post_front(&mut self, t: ThreadId, task: TaskId, target: ThreadId) -> usize {
        self.post_with(t, task, target, PostKind::Front, None)
    }

    /// Appends a post tagged as the handler of environment event `event`.
    pub fn post_event(&mut self, t: ThreadId, task: TaskId, target: ThreadId, event: EventId) -> usize {
        self.post_with(t, task, target, PostKind::Plain, Some(event))
    }

    /// Appends `begin(t, task)`.
    pub fn begin(&mut self, t: ThreadId, task: TaskId) -> usize {
        self.push(Op::new(t, OpKind::Begin { task }))
    }

    /// Appends `end(t, task)`.
    pub fn end(&mut self, t: ThreadId, task: TaskId) -> usize {
        self.push(Op::new(t, OpKind::End { task }))
    }

    /// Appends `cancel(t, task)`.
    pub fn cancel(&mut self, t: ThreadId, task: TaskId) -> usize {
        self.push(Op::new(t, OpKind::Cancel { task }))
    }

    /// Appends `acquire(t, lock)`.
    pub fn acquire(&mut self, t: ThreadId, lock: LockId) -> usize {
        self.push(Op::new(t, OpKind::Acquire { lock }))
    }

    /// Appends `release(t, lock)`.
    pub fn release(&mut self, t: ThreadId, lock: LockId) -> usize {
        self.push(Op::new(t, OpKind::Release { lock }))
    }

    /// Appends `read(t, loc)`.
    pub fn read(&mut self, t: ThreadId, loc: MemLoc) -> usize {
        self.push(Op::new(t, OpKind::Read { loc }))
    }

    /// Appends `write(t, loc)`.
    pub fn write(&mut self, t: ThreadId, loc: MemLoc) -> usize {
        self.push(Op::new(t, OpKind::Write { loc }))
    }

    /// Appends `enable(t, task)`.
    pub fn enable(&mut self, t: ThreadId, task: TaskId) -> usize {
        self.push(Op::new(t, OpKind::Enable { task }))
    }

    /// Number of operations appended so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no operations have been appended.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Read access to the name table being built.
    pub fn names(&self) -> &Names {
        &self.names
    }

    /// Finalizes the trace.
    pub fn finish(self) -> Trace {
        Trace::from_parts(self.names, self.ops)
    }

    /// Finalizes the trace and runs the Figure 5 semantics checker on it,
    /// so callers that need a *feasible* trace — oracles, fuzz and shrink
    /// loops — cannot accidentally hand an infeasible one downstream.
    ///
    /// # Errors
    ///
    /// Returns the [`ValidateError`] describing the first semantics
    /// violation in the built trace.
    pub fn finish_validated(self) -> Result<Trace, ValidateError> {
        let trace = self.finish();
        validate(&trace)?;
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_records_ops_in_order() {
        let mut b = TraceBuilder::new();
        let t = b.thread("main", ThreadKind::Main, true);
        let loc = b.loc("obj", "C.f");
        assert_eq!(b.thread_init(t), 0);
        assert_eq!(b.write(t, loc), 1);
        assert_eq!(b.read(t, loc), 2);
        assert_eq!(b.len(), 3);
        let trace = b.finish();
        assert_eq!(trace.op(1).kind, OpKind::Write { loc });
    }

    #[test]
    fn finish_validated_accepts_feasible_traces() {
        let mut b = TraceBuilder::new();
        let t = b.thread("main", ThreadKind::Main, true);
        let task = b.task("T");
        b.thread_init(t);
        b.attach_q(t);
        b.loop_on_q(t);
        b.post(t, task, t);
        b.begin(t, task);
        b.end(t, task);
        assert!(b.finish_validated().is_ok());
    }

    #[test]
    fn finish_validated_rejects_infeasible_traces() {
        // A task begins on a thread that never attached a queue.
        let mut b = TraceBuilder::new();
        let t = b.thread("main", ThreadKind::Main, true);
        let task = b.task("T");
        b.thread_init(t);
        b.begin(t, task);
        assert!(b.finish_validated().is_err());
    }

    #[test]
    fn post_helpers_set_kind_and_event() {
        let mut b = TraceBuilder::new();
        let t = b.thread("main", ThreadKind::Main, true);
        let task = b.task("h");
        let ev = b.event("click");
        b.post_delayed(t, task, t, 100);
        b.post_front(t, task, t);
        b.post_event(t, task, t, ev);
        let trace = b.finish();
        assert!(matches!(
            trace.op(0).kind,
            OpKind::Post { kind: PostKind::Delayed(100), .. }
        ));
        assert!(matches!(
            trace.op(1).kind,
            OpKind::Post { kind: PostKind::Front, .. }
        ));
        assert!(matches!(
            trace.op(2).kind,
            OpKind::Post { event: Some(e), .. } if e == ev
        ));
    }
}
