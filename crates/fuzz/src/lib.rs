//! # droidracer-fuzz
//!
//! Coverage-guided differential fuzzing for the happens-before engine, with
//! schedule-replay race witnessing.
//!
//! One fuzz iteration:
//!
//! 1. [`gen`] draws a random program (threads, loopers, posts — plain,
//!    delayed and front-of-queue — locks, fork/join, lifecycle enables)
//!    from a seeded RNG, biased by coverage feedback.
//! 2. The program runs under `sim` with a seeded random scheduler,
//!    producing a feasible trace and its decision vector.
//! 3. [`oracle`] checks the trace against the differential stack:
//!    incremental vs reference closure, DJIT⁺ vs FastTrack, internal HB
//!    invariants and the classification partition.
//! 4. The streaming engine re-analyzes the trace online at a seeded
//!    random chunk size ([`oracle::check_stream`]): streamed ≡ batch.
//! 5. [`witness`] tries to *manifest* each co-enabled/delayed race by
//!    finding a schedule that reorders the racing pair, replaying decision
//!    vectors through [`droidracer_sim::ScriptedScheduler`].
//! 6. [`corpus`] folds the iteration's feature set into the coverage map
//!    that biases step 1 of later iterations.
//!
//! Failing inputs are minimized by [`shrink`] and written as plain-text
//! regression traces. The whole session is a pure function of
//! [`FuzzConfig::seed`] (when no wall-clock budget cuts it short), and
//! every failure report prints the seeds needed to reproduce it.

#![warn(missing_docs)]

pub mod corpus;
pub mod gen;
pub mod inject;
pub mod oracle;
pub mod shrink;
pub mod witness;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

use droidracer_core::{HbConfig, RaceCategory};
use droidracer_obs::MetricsRegistry;
use droidracer_sim::{run, RandomScheduler, SimConfig};
use droidracer_trace::Trace;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use corpus::{features_of, Coverage};
use gen::{generate, ComponentTag, GenBias, GenConfig, ProgramSpec};
use oracle::{check_trace, Divergence, DivergenceKind};
use shrink::shrink;
use witness::witness_race;

/// Parameters of one fuzzing session.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed; the entire session is a function of it.
    pub seed: u64,
    /// Iterations to run.
    pub iters: u64,
    /// Optional wall-clock cutoff (checked between iterations).
    pub time_budget: Option<Duration>,
    /// Schedules to try when witnessing one race.
    pub witness_budget: usize,
    /// Races to attempt witnessing per iteration (the rest are recorded as
    /// unattempted, not unwitnessed).
    pub witness_races_per_iter: usize,
    /// Program size bounds.
    pub gen: GenConfig,
    /// Whether to minimize failing inputs (disabled by self-tests that
    /// exercise the unshrunk path).
    pub shrink_failures: bool,
    /// Stop the session after this many failures.
    pub max_failures: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0xD201D,
            iters: 200,
            time_budget: None,
            witness_budget: 48,
            witness_races_per_iter: 3,
            gen: GenConfig::default(),
            shrink_failures: true,
            max_failures: 5,
        }
    }
}

/// One oracle failure, with everything needed to reproduce and debug it.
#[derive(Debug)]
pub struct Failure {
    /// Iteration number (0-based).
    pub iteration: u64,
    /// The session's master seed.
    pub master_seed: u64,
    /// The per-run scheduler seed.
    pub sched_seed: u64,
    /// Divergences the oracle stack reported.
    pub divergences: Vec<Divergence>,
    /// The failing trace as produced.
    pub trace: Trace,
    /// The minimized trace, when shrinking ran and succeeded.
    pub shrunk: Option<Trace>,
    /// The minimized program spec, when shrinking ran and succeeded.
    pub shrunk_spec: Option<ProgramSpec>,
}

/// Aggregated results of a fuzzing session.
#[derive(Debug)]
pub struct FuzzReport {
    /// The master seed the session ran under.
    pub seed: u64,
    /// Iterations executed.
    pub iterations: u64,
    /// Runs that reached quiescence (the rest blocked or hit the step cap —
    /// still analyzed; partial traces are feasible too).
    pub completed_runs: u64,
    /// Total trace operations checked.
    pub total_ops: u64,
    /// Races found across all iterations.
    pub races_found: u64,
    /// Successfully witnessed races per category.
    pub witnessed: BTreeMap<RaceCategory, u64>,
    /// Witness attempts that found no reordering schedule, per category.
    pub unwitnessed: BTreeMap<RaceCategory, u64>,
    /// Oracle failures (empty on a healthy engine).
    pub failures: Vec<Failure>,
    /// Feature coverage accumulated over the session.
    pub coverage: Coverage,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

impl FuzzReport {
    /// Total oracle divergences across all failures.
    pub fn oracle_divergences(&self) -> usize {
        self.failures.iter().map(|f| f.divergences.len()).sum()
    }

    /// Total witnessed races.
    pub fn total_witnessed(&self) -> u64 {
        self.witnessed.values().sum()
    }

    /// Total failed witness attempts.
    pub fn total_unwitnessed(&self) -> u64 {
        self.unwitnessed.values().sum()
    }

    /// Exports the session counters into `registry` under the `fuzz.`
    /// prefix (picked up by the bench pipeline's `BENCH_pipeline.json`).
    pub fn export_metrics(&self, registry: &mut MetricsRegistry) {
        registry.counter_add("fuzz.iterations", self.iterations);
        registry.counter_add("fuzz.completed_runs", self.completed_runs);
        registry.counter_add("fuzz.trace_ops", self.total_ops);
        registry.counter_add("fuzz.races", self.races_found);
        registry.counter_add("fuzz.witnessed", self.total_witnessed());
        registry.counter_add("fuzz.unwitnessed", self.total_unwitnessed());
        registry.counter_add("fuzz.oracle_divergences", self.oracle_divergences() as u64);
        registry.counter_add("stream.divergences", self.stream_divergences() as u64);
    }

    /// Total streamed-vs-batch divergences across all failures (the layer-5
    /// differential; the CI stream-smoke step asserts this stays zero).
    pub fn stream_divergences(&self) -> usize {
        self.failures
            .iter()
            .flat_map(|f| &f.divergences)
            .filter(|d| d.kind == DivergenceKind::StreamedVsBatch)
            .count()
    }

    /// Renders a human-readable session summary; every failure line leads
    /// with the seeds needed to reproduce it.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fuzz: seed 0x{seed:X}, {iters} iterations, {ops} trace ops, {secs:.2}s",
            seed = self.seed,
            iters = self.iterations,
            ops = self.total_ops,
            secs = self.elapsed.as_secs_f64(),
        );
        let _ = writeln!(
            out,
            "  runs: {done} completed / {iters}; races: {races} \
             (witnessed {w}, unwitnessed {u})",
            done = self.completed_runs,
            iters = self.iterations,
            races = self.races_found,
            w = self.total_witnessed(),
            u = self.total_unwitnessed(),
        );
        for cat in RaceCategory::all() {
            let w = self.witnessed.get(&cat).copied().unwrap_or(0);
            let u = self.unwitnessed.get(&cat).copied().unwrap_or(0);
            if w + u > 0 {
                let _ = writeln!(out, "    {}: witnessed {w}, unwitnessed {u}", cat.label());
            }
        }
        if self.failures.is_empty() {
            let _ = writeln!(out, "  oracle divergences: 0");
        } else {
            let _ = writeln!(
                out,
                "  ORACLE DIVERGENCES: {} across {} failing inputs",
                self.oracle_divergences(),
                self.failures.len()
            );
            for f in &self.failures {
                let _ = writeln!(
                    out,
                    "  failure at iteration {it}: reproduce with \
                     --seed 0x{seed:X} (scheduler seed 0x{sched:X}), \
                     {n} ops{shrunk}",
                    it = f.iteration,
                    seed = f.master_seed,
                    sched = f.sched_seed,
                    n = f.trace.len(),
                    shrunk = match &f.shrunk {
                        Some(t) => format!(", shrunk to {} ops", t.len()),
                        None => String::new(),
                    },
                );
                for d in &f.divergences {
                    let _ = writeln!(out, "    {d}");
                }
            }
        }
        let rare: Vec<&str> = self
            .coverage
            .entries()
            .filter(|(f, _)| self.coverage.is_rare(f))
            .map(|(f, _)| f)
            .collect();
        if !rare.is_empty() {
            let _ = writeln!(out, "  rare features (boosted): {}", rare.join(", "));
        }
        out
    }
}

/// Derives generation weights from coverage: each feature seen in fewer
/// than ~10% of iterations gets its weight tripled, steering later
/// iterations toward the constructs (and thus the engine rules) the session
/// has under-exercised.
pub fn bias_from_coverage(coverage: &Coverage) -> GenBias {
    let mut bias = GenBias::default();
    if coverage.iterations() < 10 {
        return bias; // not enough signal yet
    }
    let boost = |w: u32, rare: bool| if rare { w * 3 } else { w };
    bias.cancel = boost(bias.cancel, coverage.is_rare("gen.cancel"));
    bias.idle = boost(bias.idle, coverage.is_rare("gen.idle"));
    bias.delayed_post = boost(bias.delayed_post, coverage.is_rare("op.post.delayed"));
    bias.front_post = boost(bias.front_post, coverage.is_rare("op.post.front"));
    bias.lock = boost(bias.lock, coverage.is_rare("gen.lock"));
    bias.fork = boost(bias.fork, coverage.is_rare("gen.fork"));
    // FIFO/NOPRE only fire with enough posts in flight.
    bias.post = boost(
        bias.post,
        coverage.is_rare("rule.fifo") || coverage.is_rare("rule.nopre"),
    );
    if coverage.is_rare("gen.enable_gate") {
        bias.enable_gate_pct = (bias.enable_gate_pct * 2).min(90);
    }
    for tag in ComponentTag::all() {
        if coverage.is_rare(&format!("gen.component.{}", tag.label())) {
            bias.set_component_pct(tag, (bias.component_pct(tag) * 3).min(60));
        }
    }
    bias
}

/// Runs a fuzzing session with the production engine configuration on both
/// oracle sides.
pub fn run_fuzz(config: &FuzzConfig) -> FuzzReport {
    run_fuzz_with_engines(config, HbConfig::new(), HbConfig::new())
}

/// Runs a fuzzing session with separate incremental/reference engine
/// configurations — the hook the injected-mutation self-test uses to prove
/// each divergence path reachable.
pub fn run_fuzz_with_engines(
    config: &FuzzConfig,
    incremental: HbConfig,
    reference: HbConfig,
) -> FuzzReport {
    let start = Instant::now();
    let mut master = SmallRng::seed_from_u64(config.seed);
    let mut coverage = Coverage::new();
    let mut report = FuzzReport {
        seed: config.seed,
        iterations: 0,
        completed_runs: 0,
        total_ops: 0,
        races_found: 0,
        witnessed: BTreeMap::new(),
        unwitnessed: BTreeMap::new(),
        failures: Vec::new(),
        coverage: Coverage::new(),
        elapsed: Duration::ZERO,
    };
    let sim_config = SimConfig { max_steps: 20_000 };

    for iteration in 0..config.iters {
        if let Some(budget) = config.time_budget {
            if start.elapsed() >= budget {
                break;
            }
        }
        if report.failures.len() >= config.max_failures {
            break;
        }
        report.iterations += 1;

        // Everything this iteration needs is drawn from the master RNG in a
        // fixed order, so iteration k is reproducible from the seed alone.
        let bias = bias_from_coverage(&coverage);
        let spec = generate(&mut master, &config.gen, &bias);
        let sched_seed = master.next_u64();
        let mut witness_rng = SmallRng::seed_from_u64(master.next_u64());
        // Streaming differential parameters, drawn after the seeds above so
        // older sessions' RNG prefixes are unchanged.
        let stream_chunk = 1 + (master.next_u64() % 97) as usize;
        let stream_summarize = master.next_u64() & 1 == 1;

        let program = match spec.lower() {
            Ok(p) => p,
            Err(e) => {
                // The generator guarantees lowerable specs; reaching this
                // is itself a bug worth reporting.
                report.failures.push(Failure {
                    iteration,
                    master_seed: config.seed,
                    sched_seed,
                    divergences: vec![Divergence {
                        kind: DivergenceKind::Infeasible,
                        detail: format!("generated spec failed to lower: {e:?}"),
                    }],
                    trace: Trace::default(),
                    shrunk: None,
                    shrunk_spec: None,
                });
                continue;
            }
        };
        let mut sched = RandomScheduler::from_rng(SmallRng::seed_from_u64(sched_seed));
        let result = match run(&program, &mut sched, &sim_config) {
            Ok(r) => r,
            Err(e) => {
                report.failures.push(Failure {
                    iteration,
                    master_seed: config.seed,
                    sched_seed,
                    divergences: vec![Divergence {
                        kind: DivergenceKind::Infeasible,
                        detail: format!("generated program failed to run: {e:?}"),
                    }],
                    trace: Trace::default(),
                    shrunk: None,
                    shrunk_spec: None,
                });
                continue;
            }
        };
        if result.completed {
            report.completed_runs += 1;
        }
        report.total_ops += result.trace.len() as u64;

        let oracle_report = check_trace(&result.trace, incremental, reference);
        report.races_found += oracle_report.races.len() as u64;
        coverage.record(&features_of(Some(&spec), &result.trace, &oracle_report));

        let mut divergences = oracle_report.divergences.clone();

        // Layer 5: streamed ≡ batch at a seeded random chunk size.
        divergences.extend(oracle::check_stream(
            &result.trace,
            incremental,
            stream_chunk,
            stream_summarize,
            &oracle_report,
        ));

        // Witnessing: attempt to manifest the single-threaded reorderable
        // races; replay mismatches surface as divergences.
        if divergences.is_empty() {
            let mut attempted = 0usize;
            for (race, category) in &oracle_report.races {
                if !matches!(category, RaceCategory::CoEnabled | RaceCategory::Delayed) {
                    continue;
                }
                if attempted >= config.witness_races_per_iter {
                    break;
                }
                attempted += 1;
                match witness_race(
                    &program,
                    &result.trace,
                    &oracle_report.stripped,
                    &result.decisions,
                    race,
                    &mut witness_rng,
                    config.witness_budget,
                ) {
                    Ok(outcome) => {
                        let bucket = if outcome.witnessed {
                            &mut report.witnessed
                        } else {
                            &mut report.unwitnessed
                        };
                        *bucket.entry(*category).or_insert(0) += 1;
                    }
                    Err(d) => divergences.push(d),
                }
            }
        }

        if !divergences.is_empty() {
            let kinds = divergences.iter().map(|d| d.kind).collect();
            let (shrunk, shrunk_spec) = if config.shrink_failures {
                match shrink(&spec, sched_seed, incremental, reference, &kinds) {
                    Some(r) => (Some(r.trace), Some(r.spec)),
                    None => (None, None),
                }
            } else {
                (None, None)
            };
            report.failures.push(Failure {
                iteration,
                master_seed: config.seed,
                sched_seed,
                divergences,
                trace: result.trace,
                shrunk,
                shrunk_spec,
            });
        }
    }

    report.coverage = coverage;
    report.elapsed = start.elapsed();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(seed: u64, iters: u64) -> FuzzConfig {
        FuzzConfig {
            seed,
            iters,
            witness_budget: 16,
            witness_races_per_iter: 1,
            ..FuzzConfig::default()
        }
    }

    #[test]
    fn healthy_engine_survives_a_fuzz_session() {
        let report = run_fuzz(&small_config(0xD201D, 60));
        assert_eq!(report.oracle_divergences(), 0, "{}", report.render());
        assert_eq!(report.iterations, 60);
        assert!(report.total_ops > 0);
    }

    #[test]
    fn streamed_layer_stays_quiet_and_exports_its_counter() {
        let report = run_fuzz(&small_config(0xD201D, 40));
        assert_eq!(report.stream_divergences(), 0, "{}", report.render());
        let mut registry = MetricsRegistry::new();
        report.export_metrics(&mut registry);
        assert_eq!(registry.counter("stream.divergences"), Some(0));
    }

    #[test]
    fn sessions_are_deterministic_per_seed() {
        let a = run_fuzz(&small_config(42, 25));
        let b = run_fuzz(&small_config(42, 25));
        assert_eq!(a.total_ops, b.total_ops);
        assert_eq!(a.races_found, b.races_found);
        assert_eq!(a.completed_runs, b.completed_runs);
        assert_eq!(a.witnessed, b.witnessed);
        assert_eq!(a.unwitnessed, b.unwitnessed);
        let feats = |r: &FuzzReport| {
            r.coverage
                .entries()
                .map(|(f, c)| (f.to_string(), c))
                .collect::<Vec<_>>()
        };
        assert_eq!(feats(&a), feats(&b));
    }

    #[test]
    fn metrics_export_uses_the_fuzz_prefix() {
        let report = run_fuzz(&small_config(7, 20));
        let mut registry = MetricsRegistry::new();
        report.export_metrics(&mut registry);
        assert_eq!(registry.counter("fuzz.iterations"), Some(20));
        assert_eq!(registry.counter("fuzz.oracle_divergences"), Some(0));
        assert!(registry.counter("fuzz.witnessed").is_some());
        assert!(registry.counter("fuzz.unwitnessed").is_some());
    }

    #[test]
    fn render_reports_the_seed() {
        let report = run_fuzz(&small_config(0xABC, 10));
        assert!(report.render().contains("0xABC"));
    }
}
