//! Schedule-space exploration statistics: naive exhaustive DFS vs the
//! sleep-set partial-order reduction, on small canonical programs.
//!
//! Run with `cargo run --release -p droidracer-bench --bin exploration`.

use droidracer_bench::TextTable;
use droidracer_sim::{
    explore_schedules, explore_schedules_reduced, Action, ExploreConfig, Program, ProgramBuilder,
    ThreadSpec,
};
use droidracer_trace::{PostKind, ThreadKind};

/// `n` threads each writing its own location (fully independent).
fn independent(n: usize) -> Program {
    let mut p = ProgramBuilder::new();
    for i in 0..n {
        let t = p.thread(ThreadSpec::app(format!("t{i}")).initial());
        let loc = p.loc("o", format!("C.f{i}"));
        p.set_thread_body(t, vec![Action::Write(loc)]);
    }
    p.finish().expect("valid")
}

/// `n` threads all writing one location (fully dependent).
fn contended(n: usize) -> Program {
    let mut p = ProgramBuilder::new();
    let shared = p.loc("o", "C.shared");
    for i in 0..n {
        let t = p.thread(ThreadSpec::app(format!("t{i}")).initial());
        p.set_thread_body(t, vec![Action::Write(shared)]);
    }
    p.finish().expect("valid")
}

/// Two posters racing tasks onto one looper.
fn looper_race() -> Program {
    let mut p = ProgramBuilder::new();
    let main = p.thread(
        ThreadSpec::app("main")
            .kind(ThreadKind::Main)
            .initial()
            .with_queue(),
    );
    let loc = p.loc("o", "C.f");
    for i in 0..2 {
        let poster = p.thread(ThreadSpec::app(format!("poster{i}")).initial());
        let task = p.task(format!("T{i}"), vec![Action::Write(loc)]);
        p.set_thread_body(
            poster,
            vec![Action::Post {
                task,
                target: main,
                kind: PostKind::Plain,
            }],
        );
    }
    p.finish().expect("valid")
}

fn main() {
    let config = ExploreConfig {
        max_steps: 20_000,
        max_schedules: 100_000,
    };
    let mut table = TextTable::new(["Program", "Naive schedules", "Sleep-set schedules", "Pruned"]);
    println!("Stateless model checking: exhaustive DFS vs sleep-set reduction\n");
    let programs: Vec<(String, Program)> = vec![
        ("2 independent writers".into(), independent(2)),
        ("3 independent writers".into(), independent(3)),
        ("4 independent writers".into(), independent(4)),
        ("2 contended writers".into(), contended(2)),
        ("3 contended writers".into(), contended(3)),
        ("looper with 2 racing posters".into(), looper_race()),
    ];
    for (name, program) in &programs {
        let naive = explore_schedules(program, &config).expect("explores");
        let reduced = explore_schedules_reduced(program, &config).expect("explores");
        assert!(naive.complete && reduced.complete);
        let pruned = 100.0 * (1.0 - reduced.runs.len() as f64 / naive.runs.len() as f64);
        table.row([
            name.clone(),
            naive.runs.len().to_string(),
            reduced.runs.len().to_string(),
            format!("{pruned:.0}%"),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Independent transitions commute: the reduction collapses their\n\
         interleavings while preserving every ordering of conflicting accesses\n\
         (cross-checked against the race-detection oracle in tests/oracle.rs)."
    );
}
