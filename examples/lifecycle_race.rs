//! Lifecycle modeling in action: how `enable` operations prevent false
//! positives, and how screen rotation exposes real lifecycle races.
//!
//! The example app saves its state in `onPause` and restores it in
//! `onCreate`/`onRestart`; a background sync service writes the same state.
//! The lifecycle callbacks themselves never race (the runtime model's
//! `enable` edges order them), but the service's background write races with
//! everything.
//!
//! Run with `cargo run --example lifecycle_race`.

use droidracer::core::{AnalysisBuilder, HbMode, RaceCategory};
use droidracer::framework::{compile, AppBuilder, Stmt, UiEvent};
use droidracer::sim::{run, RandomScheduler, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut b = AppBuilder::new("NotesSync");
    let act = b.activity("NotesActivity");
    let state = b.var("NotesActivity-obj", "draftText");
    let synced = b.var("SyncEngine-obj", "lastSynced");

    // A background sync worker touches both fields without synchronization.
    let sync_worker = b.worker(
        "sync-engine",
        vec![Stmt::Read(state), Stmt::Write(synced)],
    );
    let service = b.service(
        "SyncService",
        vec![],                                 // onCreate
        vec![Stmt::ForkWorker(sync_worker)],    // onStartCommand
        vec![],                                 // onDestroy
    );
    b.on_create(act, vec![Stmt::Write(state), Stmt::StartService(service)]);
    b.on_pause(act, vec![Stmt::Write(state)]); // save draft
    b.on_restart(act, vec![Stmt::Read(state)]); // restore draft
    b.on_destroy(act, vec![Stmt::Read(synced)]);
    let app = b.finish();

    // Rotate the screen, then leave: destroy + relaunch + teardown.
    let events = [UiEvent::Rotate, UiEvent::Back];
    let compiled = compile(&app, &events)?;
    let result = run(
        &compiled.program,
        &mut RandomScheduler::new(9),
        &SimConfig::default(),
    )?;
    assert!(result.completed);
    let analysis = AnalysisBuilder::new().analyze(&result.trace).unwrap();
    println!("{}", analysis.render());

    // The lifecycle writes to `draftText` (onCreate, onPause, …) never race
    // with each other: every reported race involves the sync worker.
    for cr in analysis.races() {
        assert_eq!(
            cr.category,
            RaceCategory::Multithreaded,
            "only the background sync races"
        );
    }

    // Without the enable edges (events-as-threads baseline) the lifecycle
    // callbacks appear concurrent and false positives appear.
    let baseline = AnalysisBuilder::new().mode(HbMode::EventsAsThreads).analyze(analysis.trace()).unwrap();
    println!(
        "droidracer reports {} races; the events-as-threads baseline reports {}",
        analysis.representatives().len(),
        baseline.representatives().len()
    );
    assert!(baseline.representatives().len() >= analysis.representatives().len());
    Ok(())
}
