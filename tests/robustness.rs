//! Corruption-fuzz property test over the evaluation corpus: every seeded
//! byte-level corruption of every corpus trace must either be salvaged by
//! the lenient parser with diagnosed repairs (and the repair must be a
//! fixed point — re-parsing it yields no further diagnostics) or be
//! rejected with a clean typed `ParseTraceError` — never a panic. The
//! storm runner (`droidracer::fuzz::inject::storm`) wraps each parse in a
//! panic boundary and counts non-converging repairs as contract
//! violations too.

use droidracer::apps::corpus;
use droidracer::fuzz::inject::storm;
use droidracer::trace::to_text;

/// Corruptions per corpus trace. Debug builds run a reduced storm so the
/// plain `cargo test` gate stays fast; the CI `corruption-smoke` step runs
/// the full 1,000 per trace in release mode.
const STORM_SIZE: u64 = if cfg!(debug_assertions) { 50 } else { 1_000 };

#[test]
fn corrupted_corpus_traces_never_panic_the_parser() {
    for entry in corpus() {
        let trace = entry
            .generate_trace()
            .unwrap_or_else(|e| panic!("{}: trace generation failed: {e}", entry.name));
        let text = to_text(&trace);
        // Per-entry seed keeps failures reproducible with the entry alone.
        let seed = 0xC0_4012_u64 ^ entry.name.len() as u64;
        let report = storm(&text, seed, STORM_SIZE);
        assert_eq!(
            report.panics, 0,
            "{}: corruption storm violated the no-panic contract: {report:?}",
            entry.name
        );
        assert_eq!(
            report.clean + report.repaired + report.parse_errors,
            report.total,
            "{}: outcomes don't tally: {report:?}",
            entry.name
        );
        // The storm must actually exercise the recovery machinery: on a
        // multi-kilobyte trace some corruptions are salvageable and some
        // (header hits) are not.
        assert!(report.repaired > 0, "{}: {report:?}", entry.name);
    }
}

#[test]
fn clean_corpus_traces_parse_without_repairs() {
    for entry in corpus() {
        let trace = entry
            .generate_trace()
            .unwrap_or_else(|e| panic!("{}: trace generation failed: {e}", entry.name));
        assert!(
            droidracer::fuzz::inject::roundtrips_clean(&to_text(&trace)),
            "{}: clean trace round-trip produced repairs or mismatched ops",
            entry.name
        );
    }
}
