//! Experiment E8 — throughput of the parallel detection pipeline.
//!
//! Analyzes the full corpus trace set sequentially and then through
//! `droidracer_core::par` at 1/2/4/8 worker threads, verifying on the fly
//! that every parallel run produces exactly the sequential reports (the
//! determinism contract), and emits the measured traces/sec into
//! `BENCH_pipeline.json` alongside the per-rule engine counters.
//!
//! The run also enforces the checked-in word-ops budget
//! (`tests/data/wordops_budget.txt`): if the corpus-total `word_ops`
//! exceeds the budget the binary exits nonzero, failing CI's perf-guard
//! step. Run with `BLESS=1` to re-bless the budget after an intentional
//! engine change.
//!
//! Run with `cargo run --release -p droidracer-bench --bin pipeline`.
//! The JSON lands in the current directory.

use std::time::Instant;

use droidracer_apps::{analyze_corpus_isolated, analyze_corpus_parallel, component_corpus, corpus};
use droidracer_bench::{engine_stats_table, maybe_export_profile, TextTable};
use droidracer_core::bitmatrix::BitMatrix;
use droidracer_core::{
    analyze_all, analyze_all_profiled, default_threads, effective_workers, par_map, Analysis,
    AnalysisBuilder, Budget, EngineStats, ExitClass, HappensBefore, HbConfig, JobReport,
    JobSpec, QuarantineCause, StreamOptions, StreamingAnalysis, SPAWN_MIN_ITEMS,
};
use droidracer_fuzz::{run_fuzz, FuzzConfig};
use droidracer_obs::{chrome_trace, strip_wall_clock, MetricsRegistry};
use droidracer_server::{
    run_soak, status_counter, ChaosPlan, Client, RetryPolicy, Server, ServerConfig, Submission,
};
use droidracer_trace::{from_text_lenient, to_text, Trace};

/// One measured sweep point.
struct Sample {
    threads: usize,
    seconds: f64,
    traces_per_sec: f64,
    speedup: f64,
    /// Workers the fan-out actually used ([`effective_workers`]): 1 means
    /// the pool short-circuited to the inline sequential path.
    workers: usize,
}

fn measure(traces: &[Trace], threads: usize, repeats: usize) -> (f64, Vec<Analysis>) {
    // Warm-up once, then keep the best of `repeats` (least-noise estimate).
    let mut best = f64::MAX;
    let mut analyses = analyze_all(traces, threads);
    for _ in 0..repeats {
        let start = Instant::now();
        analyses = analyze_all(traces, threads);
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, analyses)
}

fn main() {
    let entries = corpus();
    println!("Parallel detection pipeline sweep ({} apps)", entries.len());
    println!(
        "machine: {} hardware thread(s) available\n",
        default_threads()
    );

    let generated = par_map(&entries, default_threads(), |e| e.generate_trace());
    let mut names: Vec<&'static str> = Vec::new();
    let mut traces: Vec<Trace> = Vec::new();
    for (entry, result) in entries.iter().zip(generated) {
        match result {
            Ok(t) => {
                names.push(entry.name);
                traces.push(t);
            }
            Err(e) => eprintln!("{}: {e}", entry.name),
        }
    }

    let repeats = 3;
    // Sequential baseline: the plain per-trace loop, no pool at all.
    let mut baseline = f64::MAX;
    let mut reference: Vec<Analysis> = traces.iter().map(|t| AnalysisBuilder::new().analyze(t).unwrap()).collect();
    for _ in 0..repeats {
        let start = Instant::now();
        reference = traces.iter().map(|t| AnalysisBuilder::new().analyze(t).unwrap()).collect();
        baseline = baseline.min(start.elapsed().as_secs_f64());
    }

    let mut samples = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let (seconds, analyses) = measure(&traces, threads, repeats);
        // Determinism check: every thread count reproduces the sequential
        // reports exactly.
        assert_eq!(analyses.len(), reference.len());
        for (p, s) in analyses.iter().zip(&reference) {
            assert_eq!(p.races(), s.races(), "{threads}-thread run diverged");
            assert_eq!(p.counts(), s.counts(), "{threads}-thread run diverged");
            assert_eq!(
                p.hb().stats(),
                s.hb().stats(),
                "{threads}-thread run diverged"
            );
        }
        samples.push(Sample {
            threads,
            seconds,
            traces_per_sec: traces.len() as f64 / seconds,
            speedup: baseline / seconds,
            workers: effective_workers(traces.len(), threads),
        });
    }

    let mut table = TextTable::new(["Threads", "Workers", "Time", "Traces/sec", "Speedup"]);
    table.row([
        "seq".to_owned(),
        "-".to_owned(),
        format!("{:.3} s", baseline),
        format!("{:.2}", traces.len() as f64 / baseline),
        "1.00x".to_owned(),
    ]);
    table.rule();
    for s in &samples {
        table.row([
            s.threads.to_string(),
            s.workers.to_string(),
            format!("{:.3} s", s.seconds),
            format!("{:.2}", s.traces_per_sec),
            format!("{:.2}x", s.speedup),
        ]);
    }
    println!("{}", table.render());
    println!(
        "(all parallel runs verified bit-identical to the sequential reports; \
         workers=1 is the inline short-circuit, spawn threshold {SPAWN_MIN_ITEMS} items)\n"
    );

    // Aggregate corpus metrics: absorbing each analysis' registry sums the
    // deterministic counters across apps.
    let mut registry = MetricsRegistry::new();
    for analysis in &reference {
        registry.absorb(&analysis.metrics());
    }

    // A seeded differential-fuzzing session rides along so the bench JSON
    // surfaces the witnessing counters and pins `fuzz.oracle_divergences`
    // at zero on every bench run, not just in CI's smoke job.
    let fuzz_report = run_fuzz(&FuzzConfig {
        seed: 0xD201D,
        iters: 150,
        ..FuzzConfig::default()
    });
    assert_eq!(
        fuzz_report.oracle_divergences(),
        0,
        "differential fuzz session diverged:\n{}",
        fuzz_report.render()
    );
    fuzz_report.export_metrics(&mut registry);
    // The component-substructure coverage features: each must have fired at
    // least once in the seeded session, and the counts land in the JSON so a
    // generator regression that stops reaching a component path is visible.
    for (feature, count) in fuzz_report.coverage.entries() {
        if feature.starts_with("gen.component.") {
            registry.counter_add(feature, count);
        }
    }
    for label in ["service", "fragment", "serial_executor", "broadcast"] {
        let key = format!("gen.component.{label}");
        assert!(
            registry.counter(&key).unwrap_or(0) > 0,
            "seeded fuzz session never generated the {label} component substructure"
        );
    }
    println!(
        "fuzz smoke (seed 0x{:X}): {} iterations, {} races, witnessed {}, \
         unwitnessed {}, oracle divergences 0\n",
        fuzz_report.seed,
        fuzz_report.iterations,
        fuzz_report.races_found,
        fuzz_report.total_witnessed(),
        fuzz_report.total_unwitnessed(),
    );

    // Component-corpus ground-truth guard: the 7 component apps must verify
    // exactly their planted true races (`motif.planted == motif.verified`),
    // and their analysis cost gets its own exact word-ops budget — kept out
    // of the original 15-app registry so the long-standing corpus budget
    // below is untouched by corpus growth.
    export_motif_counters(&mut registry);

    // Robustness guard: the clean corpus must sail through the hardened
    // pipeline untouched — zero quarantines, zero lenient-parse repairs,
    // zero budget exhaustions. The counters land in the bench JSON so a
    // regression (a trace that suddenly needs repair, an analysis that
    // starts panicking under isolation) shows up as a nonzero export even
    // before the asserts fire.
    export_robustness_counters(&entries, &traces, &mut registry);

    // Single-trace closure latency: the K-9 Mail hot path, sequential vs
    // intra-trace parallel, with the per-word-op wall-clock gauge that the
    // CI ceiling gates.
    export_closure_latency(&names, &traces, &mut registry);

    // Streaming sweep: every corpus trace re-analyzed online (64-op chunks,
    // windowed summarizer) must reproduce the batch reports exactly, and the
    // summarizer must demonstrably bound memory on the largest app. The
    // `stream.*` counters land in the bench JSON.
    export_stream_counters(&names, &traces, &reference, &mut registry);

    // Server load sweep: a live in-process daemon serves the whole corpus
    // under mixed clean/corrupt/oversized/hostile traffic; every served
    // report must equal the direct reference, and the second clean pass
    // must be answered entirely from the cache. The `srv.*` counters land
    // in the bench JSON.
    export_server_counters(&names, &traces, &reference, &mut registry);

    // Chaos soak: a fresh per-scenario server is subjected to the seeded
    // fault plan (torn frames, dropped connections, stalls, shard panics,
    // torn/corrupt WAL tails). Violation counters (`srv.chaos.*`) land in
    // the bench JSON and must all be zero; activity totals land as
    // `chaos.*` gauges so a fault plan that silently stops injecting
    // faults is also visible.
    export_chaos_counters(&mut registry);

    // Profile determinism check: the exported span structure — not just the
    // reports — must be bit-identical across thread counts once the
    // wall-clock fields are stripped.
    let (_, span1) = analyze_all_profiled(&traces, 1, HbConfig::new());
    let stripped = strip_wall_clock(&chrome_trace(std::slice::from_ref(&span1), &registry));
    for threads in [2usize, 8] {
        let (_, span) = analyze_all_profiled(&traces, threads, HbConfig::new());
        let other = strip_wall_clock(&chrome_trace(std::slice::from_ref(&span), &registry));
        assert_eq!(stripped, other, "{threads}-thread profile diverged");
    }
    println!("(exported profiles verified bit-identical at 1/2/8 threads, modulo wall-clock)\n");

    println!("Happens-before engine hot-path counters:");
    let stats_rows: Vec<(&str, &EngineStats)> = names
        .iter()
        .zip(&reference)
        .map(|(n, a)| (*n, a.hb().stats()))
        .collect();
    println!(
        "{}",
        engine_stats_table(stats_rows.iter().map(|&(n, s)| (n, s))).render()
    );

    let json = render_json(&traces, baseline, &samples, &stats_rows, &registry);
    let path = "BENCH_pipeline.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    maybe_export_profile(&span1, &registry);
    enforce_word_ops_budget(&stats_rows, &registry);
}

/// Analyzes the component-automaton corpus and exports:
///
/// * `motif.planted` (counter): planted true races summed over the 7
///   component apps;
/// * `motif.verified` (counter): races the schedule-replay verifier
///   confirmed — asserted equal to `motif.planted` (exact recovery);
/// * `motif.reported` (counter): all representatives including planted
///   false positives;
/// * `motif.word_ops` (counter): the component corpus' happens-before
///   word-ops total, gated by its own exact budget
///   (`tests/data/wordops_budget_component.txt`, `BLESS=1` rewrites it).
///
/// The component analyses never touch the main registry's `hb.*` counters,
/// so the original 15-app word-ops budget keeps gating exactly the paper
/// corpus.
fn export_motif_counters(registry: &mut MetricsRegistry) {
    let entries = component_corpus();
    let reports = analyze_corpus_parallel(&entries, default_threads());
    let mut planted = 0u64;
    let mut verified = 0u64;
    let mut reported = 0u64;
    let mut word_ops = 0u64;
    for (entry, report) in entries.iter().zip(reports) {
        let report = report.expect("component entry analyzes");
        assert_eq!(
            report.unplanned(&entry.truth),
            0,
            "{}: unplanned races on the clean component corpus",
            entry.name
        );
        planted += entry.truth.values().filter(|t| t.is_true).count() as u64;
        verified += report.verified.total() as u64;
        reported += report.reported.total() as u64;
        word_ops += report.analysis.hb().stats().word_ops;
    }
    assert_eq!(
        planted, verified,
        "component corpus: planted true races must all verify"
    );
    registry.counter_add("motif.planted", planted);
    registry.counter_add("motif.verified", verified);
    registry.counter_add("motif.reported", reported);
    registry.counter_add("motif.word_ops", word_ops);
    println!(
        "component-corpus guard OK: {} apps, {planted} planted true races all verified \
         ({reported} reported incl. planted false positives)\n",
        entries.len()
    );
    enforce_component_word_ops_budget(word_ops);
}

/// Exact word-ops ceiling for the component corpus — the sibling of
/// [`enforce_word_ops_budget`] with its own blessed line, so growing the
/// catalog never perturbs the original 15-app budget.
fn enforce_component_word_ops_budget(total: u64) {
    let budget_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/data/wordops_budget_component.txt"
    );
    if std::env::var("BLESS").is_ok() {
        let content = format!(
            "# Component-corpus (7 component-automaton apps) happens-before\n\
             # `word_ops` budget, enforced by the pipeline bench alongside the\n\
             # original 15-app budget in wordops_budget.txt. Regenerate with:\n\
             #   BLESS=1 cargo run --release -p droidracer-bench --bin pipeline\n\
             {total}\n"
        );
        match std::fs::write(budget_path, content) {
            Ok(()) => println!("blessed component word-ops budget: {total}"),
            Err(e) => {
                eprintln!("could not write {budget_path}: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let budget: u64 = match std::fs::read_to_string(budget_path) {
        Ok(text) => match text
            .lines()
            .map(str::trim)
            .find(|l| !l.is_empty() && !l.starts_with('#'))
            .and_then(|l| l.parse().ok())
        {
            Some(b) => b,
            None => {
                eprintln!("component word-ops budget file {budget_path} is malformed");
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!(
                "missing component word-ops budget {budget_path}: {e} \
                 (measured {total}; run with BLESS=1)"
            );
            std::process::exit(1);
        }
    };
    if total > budget {
        eprintln!(
            "PERF REGRESSION: component-corpus word_ops {total} exceeds budget {budget} \
             (+{:.1}%). If intentional, re-bless with BLESS=1.",
            100.0 * (total as f64 - budget as f64) / budget as f64
        );
        std::process::exit(1);
    }
    println!("component word-ops budget OK: {total} <= {budget}");
}

/// Runs the fault-isolated corpus analysis and a lenient re-parse of every
/// generated trace, exporting `robust.quarantined`, `robust.repairs`, and
/// `robust.budget_exhausted` — all asserted zero: a clean corpus must not
/// exercise any recovery or isolation machinery.
fn export_robustness_counters(
    entries: &[droidracer_apps::CorpusEntry],
    traces: &[Trace],
    registry: &mut MetricsRegistry,
) {
    let isolated = analyze_corpus_isolated(entries, default_threads(), &Budget::unlimited());
    let quarantined = isolated.iter().filter(|r| r.is_err()).count() as u64;
    let budget_exhausted = isolated
        .iter()
        .filter(|r| {
            matches!(
                r,
                Err(q) if matches!(q.cause, QuarantineCause::BudgetExhausted(_))
            )
        })
        .count() as u64;
    let repairs: u64 = traces
        .iter()
        .map(|t| match from_text_lenient(&to_text(t)) {
            Ok((_, diags)) => diags.len() as u64,
            Err(e) => panic!("clean corpus trace failed to re-parse: {e}"),
        })
        .sum();
    registry.counter_add("robust.quarantined", quarantined);
    registry.counter_add("robust.repairs", repairs);
    registry.counter_add("robust.budget_exhausted", budget_exhausted);
    for q in isolated.iter().filter_map(|r| r.as_ref().err()) {
        eprintln!("{q}");
    }
    assert_eq!(
        registry.counter("robust.quarantined"),
        Some(0),
        "clean corpus produced quarantines"
    );
    assert_eq!(
        registry.counter("robust.repairs"),
        Some(0),
        "clean corpus traces needed lenient repairs"
    );
    assert_eq!(
        registry.counter("robust.budget_exhausted"),
        Some(0),
        "clean corpus exhausted an unlimited budget"
    );
    println!("robustness guard OK: 0 quarantined, 0 repairs, 0 budget exhaustions\n");
}

/// Times the happens-before closure of the single biggest corpus trace
/// (K-9 Mail) — sequential and on 8 intra-trace workers, best of 3 each —
/// verifying the parallel matrices and counters are bit-identical, and
/// exports:
///
/// * `hb.ns_per_word_op` (gauge): sequential closure nanoseconds per
///   `word_ops` unit — the wall-clock-per-op metric the CI ceiling gates;
/// * `hb.k9_closure_ms` / `hb.k9_closure_ms_intra8` (gauges): the raw
///   closure wall times;
/// * `hb.batches` / `hb.batch_conflicts` (counters): the parallel
///   schedule's level-group telemetry (deterministic for any worker
///   count ≥ 2).
///
/// Then enforces the checked-in per-word-op ceiling
/// (`tests/data/ns_per_word_op_ceiling.txt`) — a generous multiple of the
/// measured value so CI jitter cannot trip it, while an order-of-magnitude
/// kernel regression still fails the perf-guard step. `BLESS=1` rewrites
/// the ceiling at 8× the measured value.
fn export_closure_latency(names: &[&'static str], traces: &[Trace], registry: &mut MetricsRegistry) {
    let k9 = names
        .iter()
        .position(|n| *n == "K-9 Mail")
        .expect("K-9 Mail missing from the corpus");
    let trace = traces[k9].without_cancelled();
    let config = HbConfig::new();
    let repeats = 3;

    let mut seq_secs = f64::MAX;
    let mut seq = HappensBefore::compute(&trace, config);
    for _ in 0..repeats {
        let start = Instant::now();
        seq = HappensBefore::compute(&trace, config);
        seq_secs = seq_secs.min(start.elapsed().as_secs_f64());
    }
    let mut par_secs = f64::MAX;
    let mut par = HappensBefore::compute_parallel(&trace, config, 8);
    for _ in 0..repeats {
        let start = Instant::now();
        par = HappensBefore::compute_parallel(&trace, config, 8);
        par_secs = par_secs.min(start.elapsed().as_secs_f64());
    }
    assert_eq!(
        seq.relation_matrices(),
        par.relation_matrices(),
        "intra-trace parallel closure diverged from sequential on K-9 Mail"
    );
    let (s, p) = (seq.stats(), par.stats());
    assert_eq!(
        (s.word_ops, s.skipped_words, s.rows_recomputed, s.rounds),
        (p.word_ops, p.skipped_words, p.rows_recomputed, p.rounds),
        "intra-trace parallel counters diverged on K-9 Mail"
    );

    let ns_per_word_op = seq_secs * 1e9 / s.word_ops as f64;
    registry.gauge_set("hb.ns_per_word_op", ns_per_word_op);
    registry.gauge_set("hb.k9_closure_ms", seq_secs * 1e3);
    registry.gauge_set("hb.k9_closure_ms_intra8", par_secs * 1e3);
    registry.counter_add("hb.batches", p.batches);
    registry.counter_add("hb.batch_conflicts", p.batch_conflicts);
    println!(
        "K-9 Mail closure: {:.1} ms sequential ({:.2} ns/word-op over {} word-ops), \
         {:.1} ms on 8 intra-trace workers ({} level batches, {} in-batch direct edges)\n",
        seq_secs * 1e3,
        ns_per_word_op,
        s.word_ops,
        par_secs * 1e3,
        p.batches,
        p.batch_conflicts
    );
    enforce_ns_ceiling(ns_per_word_op);
}

/// Enforces (or with `BLESS=1` rewrites) the wall-clock-per-word-op
/// ceiling. Unlike the exact word-ops budget this is a timing threshold,
/// so the blessed value carries 8× headroom for CI jitter.
fn enforce_ns_ceiling(measured: f64) {
    let ceiling_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/data/ns_per_word_op_ceiling.txt"
    );
    if std::env::var("BLESS").is_ok() {
        let blessed = (measured * 8.0).ceil();
        let content = format!(
            "# Ceiling for `hb.ns_per_word_op` (K-9 Mail sequential closure\n\
             # nanoseconds per word-op), enforced by the pipeline bench. Blessed\n\
             # at 8x the measured value to absorb CI jitter. Regenerate with:\n\
             #   BLESS=1 cargo run --release -p droidracer-bench --bin pipeline\n\
             {blessed}\n"
        );
        match std::fs::write(ceiling_path, content) {
            Ok(()) => println!("blessed ns/word-op ceiling: {blessed}"),
            Err(e) => {
                eprintln!("could not write {ceiling_path}: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let ceiling: f64 = match std::fs::read_to_string(ceiling_path) {
        Ok(text) => match text
            .lines()
            .map(str::trim)
            .find(|l| !l.is_empty() && !l.starts_with('#'))
            .and_then(|l| l.parse().ok())
        {
            Some(c) => c,
            None => {
                eprintln!("ns/word-op ceiling file {ceiling_path} is malformed");
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("missing ns/word-op ceiling {ceiling_path}: {e} (run with BLESS=1)");
            std::process::exit(1);
        }
    };
    if measured > ceiling {
        eprintln!(
            "PERF REGRESSION: K-9 Mail closure measured {measured:.2} ns/word-op, \
             ceiling {ceiling:.2}. If intentional, re-bless with BLESS=1."
        );
        std::process::exit(1);
    }
    println!("ns/word-op ceiling OK: {measured:.2} <= {ceiling:.2}\n");
}

/// Streams every corpus trace through [`StreamingAnalysis`] in 64-op chunks
/// with the windowed summarizer on, verifies each streamed report matches
/// the batch reference exactly, and exports the summed `stream.*` counters
/// plus a `stream.peak_matrix_bits` gauge (corpus max). The memory-bound
/// contract is asserted on the largest app: K-9 Mail's streamed matrix peak
/// must stay below the batch engine's dense relation-matrix footprint.
fn export_stream_counters(
    names: &[&'static str],
    traces: &[Trace],
    reference: &[Analysis],
    registry: &mut MetricsRegistry,
) {
    let options = StreamOptions {
        summarize: true,
        window: 64,
        budget: None,
    };
    let mut totals = droidracer_core::StreamStats::default();
    let mut peak_max = 0u64;
    let mut k9_checked = false;
    for ((name, trace), analysis) in names.iter().zip(traces).zip(reference) {
        let mut session = StreamingAnalysis::new(HbConfig::new(), options);
        for piece in trace.ops().chunks(64) {
            session.push_chunk(piece).expect("unlimited budget");
        }
        let out = session.finish(trace.names()).expect("unlimited budget");
        assert_eq!(
            out.races.as_slice(),
            analysis.races(),
            "{name}: streamed races diverged from batch"
        );
        assert_eq!(
            out.counts,
            analysis.counts(),
            "{name}: streamed classification diverged from batch"
        );
        assert!(!out.stats.degenerate, "{name}: clean trace fell back to batch");
        let s = out.stats;
        totals.ops += s.ops;
        totals.chunks += s.chunks;
        totals.races_emitted += s.races_emitted;
        totals.retractions += s.retractions;
        totals.late_emissions += s.late_emissions;
        totals.rebuilds += s.rebuilds;
        totals.retired_rows += s.retired_rows;
        totals.word_ops += s.word_ops;
        peak_max = peak_max.max(s.peak_matrix_bits);
        if *name == "K-9 Mail" {
            let dense = |m: &BitMatrix| (m.words_per_row() * m.len() * 64) as u64;
            let (st, mt) = analysis.hb().relation_matrices();
            let batch_bits = dense(st) + mt.map(dense).unwrap_or(0);
            assert!(
                s.peak_matrix_bits < batch_bits,
                "K-9 Mail: streamed peak {} bits >= batch dense {} bits",
                s.peak_matrix_bits,
                batch_bits
            );
            println!(
                "stream memory bound OK (K-9 Mail): peak {} bits < batch dense {} bits",
                s.peak_matrix_bits, batch_bits
            );
            k9_checked = true;
        }
    }
    assert!(k9_checked, "K-9 Mail missing from the corpus sweep");
    registry.counter_add("stream.chunks", totals.chunks);
    registry.counter_add("stream.ops", totals.ops);
    registry.counter_add("stream.races_emitted", totals.races_emitted);
    registry.counter_add("stream.retractions", totals.retractions);
    registry.counter_add("stream.late_emissions", totals.late_emissions);
    registry.counter_add("stream.rebuilds", totals.rebuilds);
    registry.counter_add("stream.retired_rows", totals.retired_rows);
    registry.counter_add("stream.word_ops", totals.word_ops);
    registry.gauge_set("stream.peak_matrix_bits", peak_max as f64);
    // The streaming overhead metric: column word-ops relative to the batch
    // engine's row word-ops on the same corpus (both count words actually
    // visited inside nonzero bounds since the column store learned the
    // batch engine's bounds discipline).
    let batch_total: u64 = reference.iter().map(|a| a.hb().stats().word_ops).sum();
    let ratio = totals.word_ops as f64 / batch_total as f64;
    registry.gauge_set("stream.word_ops_ratio", ratio);
    println!(
        "stream sweep OK: {} ops in {} chunks, {} races emitted live, {} rows retired",
        totals.ops, totals.chunks, totals.races_emitted, totals.retired_rows
    );
    println!(
        "stream word-ops: {} vs batch {} ({ratio:.3}x)\n",
        totals.word_ops, batch_total
    );
}

/// Drives a live in-process analysis server with mixed multi-tenant
/// traffic and exports the `srv.*` service counters:
///
/// * a clean tenant submits every corpus trace twice — the first pass
///   measures `srv.traces_per_sec` (gauge) and every report is asserted
///   equal to the direct [`AnalysisBuilder`] reference, the second pass
///   must be answered entirely from the content-addressed cache;
/// * a corrupt tenant submits garbage (an `Invalid` report) and an
///   oversized blob (rejected before any worker sees it);
/// * a greedy tenant blows a one-op job budget (`srv.budget_exhausted`);
/// * a hostile tenant's jobs panic via the fault hook and are quarantined
///   (`srv.quarantined`) without disturbing anyone else.
///
/// Only the `srv.*` counters cross into the bench registry: the server's
/// per-tenant `hb.*` counters stay out, so the corpus word-ops budget
/// below keeps gating exactly the direct analyses. The cache contract is
/// instead asserted through the server's own status: after both passes the
/// clean tenant's cumulative `hb.word_ops` equals one batch pass over the
/// corpus — the cache hits did zero analysis work.
fn export_server_counters(
    names: &[&'static str],
    traces: &[Trace],
    reference: &[Analysis],
    registry: &mut MetricsRegistry,
) {
    let config = ServerConfig {
        shards: 2,
        fault_hook: Some(std::sync::Arc::new(|phase: &str| {
            if phase == "job.hostile" {
                panic!("bench-injected fault");
            }
        })),
        ..ServerConfig::default()
    };
    let server = Server::bind_tcp("127.0.0.1:0", config).expect("bind bench server");
    let addr = server.local_addr().expect("tcp addr").to_string();
    let handle = std::thread::spawn(move || server.run());

    let texts: Vec<String> = traces.iter().map(to_text).collect();
    let spec = JobSpec::default();
    let expected: Vec<JobReport> = reference
        .iter()
        .map(|a| JobReport::from_analysis(a, Vec::new()))
        .collect();

    // Pass 1 (clean tenant): every served report equals the direct one.
    // The clean client runs with the standard retry policy: against a
    // healthy server it must never actually retry, which the zero
    // `srv.client.retries` / `srv.client.gave_up` exports below pin.
    let mut clean = Client::connect_tcp(&addr, "clean")
        .expect("connect")
        .with_retry_policy(RetryPolicy::standard())
        .expect("retry policy");
    let start = Instant::now();
    for ((name, text), want) in names.iter().zip(&texts).zip(&expected) {
        let sub = clean.submit_trace(&spec, text).expect("submit");
        assert!(!sub.cache_hit(), "{name}: cache hit on first submission");
        assert_eq!(sub.report(), Some(want), "{name}: served report diverged");
    }
    let first_pass = start.elapsed().as_secs_f64();

    // Hostile traffic between the two clean passes.
    let mut corrupt = Client::connect_tcp(&addr, "corrupt").expect("connect");
    let sub = corrupt.submit_trace(&spec, "not a trace\n").expect("submit");
    assert_eq!(
        sub.report().expect("ran").exit,
        ExitClass::Invalid,
        "garbage must classify as Invalid"
    );
    let oversized = "x".repeat(9 << 20);
    let sub = corrupt.submit_trace(&spec, &oversized).expect("submit");
    assert!(
        matches!(sub, Submission::Rejected { .. }),
        "oversized trace must be rejected"
    );
    let mut greedy = Client::connect_tcp(&addr, "greedy").expect("connect");
    let tiny = JobSpec {
        max_ops: Some(1),
        ..JobSpec::default()
    };
    let sub = greedy.submit_trace(&tiny, &texts[0]).expect("submit");
    assert_eq!(
        sub.report().expect("ran").exit,
        ExitClass::Resource,
        "one-op budget must exhaust"
    );
    let mut hostile = Client::connect_tcp(&addr, "hostile").expect("connect");
    // A spec the clean pass never used: the content-addressed cache is
    // shared across tenants, so the same spec + bytes would be answered
    // from cache without ever reaching the fault hook.
    let uncached = JobSpec {
        validate: true,
        ..JobSpec::default()
    };
    let sub = hostile.submit_trace(&uncached, &texts[0]).expect("submit");
    let report = sub.report().expect("quarantined report");
    assert_eq!(report.exit, ExitClass::Resource);
    assert!(
        report.diagnostics.iter().any(|d| d.contains("quarantined")),
        "panic-injected job must be quarantined: {:?}",
        report.diagnostics
    );

    // Pass 2 (clean tenant): all cache hits, bit-identical reports.
    for ((name, text), want) in names.iter().zip(&texts).zip(&expected) {
        let sub = clean.submit_trace(&spec, text).expect("submit");
        assert!(sub.cache_hit(), "{name}: second submission missed the cache");
        assert_eq!(sub.report(), Some(want), "{name}: cached report diverged");
    }

    let status = clean.status().expect("status");
    let clean_stats = clean.stats();
    clean.shutdown().expect("shutdown");
    drop((clean, corrupt, greedy, hostile));
    handle.join().expect("join").expect("server run failed");

    let batch_word_ops: u64 = reference.iter().map(|a| a.hb().stats().word_ops).sum();
    assert_eq!(
        status_counter(&status, "tenant.clean.hb.word_ops"),
        Some(batch_word_ops),
        "cache hits must do zero analysis work"
    );
    for key in [
        "srv.jobs",
        "srv.cache_hits",
        "srv.cache_stores",
        "srv.quarantined",
        "srv.budget_exhausted",
        "srv.invalid",
        "srv.rejected",
    ] {
        registry.counter_add(key, status_counter(&status, key).unwrap_or(0));
    }
    registry.gauge_set("srv.traces_per_sec", traces.len() as f64 / first_pass);
    // Exported even when (expected to be) zero: a healthy server must not
    // make a retrying client work for its answers.
    registry.counter_add("srv.client.retries", clean_stats.retries);
    registry.counter_add("srv.client.gave_up", clean_stats.gave_up);
    assert_eq!(clean_stats.retries, 0, "clean pass needed retries");
    assert_eq!(clean_stats.gave_up, 0, "clean pass abandoned a submission");
    assert_eq!(
        registry.counter("srv.cache_hits"),
        Some(traces.len() as u64),
        "second clean pass must be all cache hits"
    );
    assert_eq!(registry.counter("srv.quarantined"), Some(1));
    assert_eq!(registry.counter("srv.budget_exhausted"), Some(1));
    assert_eq!(registry.counter("srv.invalid"), Some(1));
    println!(
        "server sweep OK: {} traces served at {:.2} traces/sec, {} cache hits, \
         1 invalid, 1 rejected, 1 budget-exhausted, 1 quarantined\n",
        traces.len(),
        traces.len() as f64 / first_pass,
        traces.len(),
    );
}

/// Runs the deterministic chaos soak (its own per-scenario servers and
/// scratch stores — the main sweep's counters are untouched) and exports
/// its verdict. Every violation counter must be zero: no accepted job
/// lost or duplicated, every recomputed report bit-identical, no server
/// crash, every durably-acked cache entry recovered after the simulated
/// kill + restart.
fn export_chaos_counters(registry: &mut MetricsRegistry) {
    let dir = std::env::temp_dir().join(format!("droidracer-bench-chaos-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let plan = ChaosPlan::full(0xC4A055EED, &dir);
    let report = run_soak(&plan).expect("chaos soak infrastructure");
    std::fs::remove_dir_all(&dir).ok();
    report.export(registry);
    assert_eq!(report.violations(), 0, "chaos soak violations: {report:?}");
    println!(
        "chaos soak OK: {} scenarios, {} faults injected, {} jobs completed, \
         {} client retries, 0 violations\n",
        report.scenarios, report.faults_injected, report.jobs_completed, report.client_retries,
    );
}

/// Fails (exit 1) if the corpus-total `word_ops` regresses above the
/// checked-in budget. `BLESS=1` rewrites the budget file instead. The
/// counter is fully deterministic, so the budget is an exact ceiling, not a
/// noisy timing threshold.
fn enforce_word_ops_budget(stats: &[(&str, &EngineStats)], registry: &MetricsRegistry) {
    let budget_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/data/wordops_budget.txt"
    );
    let total: u64 = stats.iter().map(|(_, s)| s.word_ops).sum();
    // The metrics registry must expose the exact same engine counters as the
    // raw EngineStats path — the budget is enforced through the registry to
    // keep the two views honest.
    assert_eq!(
        registry.counter("hb.word_ops"),
        Some(total),
        "MetricsRegistry word_ops diverged from EngineStats"
    );
    if std::env::var("BLESS").is_ok() {
        let content = format!(
            "# Corpus-total happens-before `word_ops` budget, enforced by the\n\
             # pipeline bench (CI perf-guard). Regenerate with:\n\
             #   BLESS=1 cargo run --release -p droidracer-bench --bin pipeline\n\
             {total}\n"
        );
        match std::fs::write(budget_path, content) {
            Ok(()) => println!("blessed word-ops budget: {total}"),
            Err(e) => {
                eprintln!("could not write {budget_path}: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let budget: u64 = match std::fs::read_to_string(budget_path) {
        Ok(text) => match text
            .lines()
            .map(str::trim)
            .find(|l| !l.is_empty() && !l.starts_with('#'))
            .and_then(|l| l.parse().ok())
        {
            Some(b) => b,
            None => {
                eprintln!("word-ops budget file {budget_path} is malformed");
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("missing word-ops budget {budget_path}: {e} (run with BLESS=1)");
            std::process::exit(1);
        }
    };
    if total > budget {
        eprintln!(
            "PERF REGRESSION: corpus-total word_ops {total} exceeds budget {budget} \
             (+{:.1}%). If intentional, re-bless with BLESS=1.",
            100.0 * (total as f64 - budget as f64) / budget as f64
        );
        std::process::exit(1);
    }
    println!("word-ops budget OK: {total} <= {budget}");
}

/// Hand-rolled JSON (no serde in the dependency-free pipeline).
fn render_json(
    traces: &[Trace],
    baseline: f64,
    samples: &[Sample],
    stats: &[(&str, &EngineStats)],
    registry: &MetricsRegistry,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"machine_threads\": {},\n  \"corpus_traces\": {},\n  \"total_ops\": {},\n",
        default_threads(),
        traces.len(),
        traces.iter().map(Trace::len).sum::<usize>(),
    ));
    out.push_str(&format!(
        "  \"sequential\": {{ \"seconds\": {:.6}, \"traces_per_sec\": {:.3} }},\n",
        baseline,
        traces.len() as f64 / baseline
    ));
    out.push_str("  \"parallel\": [\n");
    for (i, s) in samples.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"threads\": {}, \"effective_workers\": {}, \"seconds\": {:.6}, \
             \"traces_per_sec\": {:.3}, \"speedup\": {:.3} }}{}\n",
            s.threads,
            s.workers,
            s.seconds,
            s.traces_per_sec,
            s.speedup,
            if i + 1 < samples.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"engine_counters\": [\n");
    for (i, (name, s)) in stats.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"app\": \"{}\", \"base_edges\": {}, \"fifo\": {}, \"nopre\": {}, \
             \"trans_st\": {}, \"trans_mt\": {}, \"rounds\": {}, \"word_ops\": {}, \
             \"worklist_pops\": {}, \"rows_recomputed\": {}, \"skipped_words\": {} }}{}\n",
            name,
            s.base_edges,
            s.fifo_fired,
            s.nopre_fired,
            s.trans_st_edges,
            s.trans_mt_edges,
            s.rounds,
            s.word_ops,
            s.worklist_pops,
            s.rows_recomputed,
            s.skipped_words,
            if i + 1 < stats.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"metrics\": {}\n", registry.to_json()));
    out.push_str("}\n");
    out
}
