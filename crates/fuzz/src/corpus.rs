//! Coverage accounting and the on-disk regression corpus.
//!
//! Coverage is feature-based: every fuzz iteration is summarized as a set
//! of feature strings (generator constructs used, engine rules that fired,
//! race categories observed). The [`Coverage`] map counts how often each
//! feature has been seen; the driver boosts the generation weight of rarely
//! seen features, steering the generator toward cold engine rules.
//!
//! Failing inputs are shrunk and committed as plain-text traces under
//! `tests/data/fuzz_regressions/`; [`replay_regressions`] re-checks every
//! committed trace against the oracle stack (run by the CI smoke job and
//! the `fuzz_regressions` integration test).

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use droidracer_core::RaceCategory;
use droidracer_trace::{from_text, to_text, OpKind, PostKind, Trace};

use crate::gen::{ProgramSpec, SpecAction};
use crate::oracle::{check_trace, Divergence, OracleReport};
use droidracer_core::HbConfig;

/// Feature counters accumulated over a fuzzing session.
#[derive(Debug, Clone, Default)]
pub struct Coverage {
    counts: BTreeMap<String, u64>,
    iterations: u64,
}

impl Coverage {
    /// Creates an empty coverage map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one iteration's feature set.
    pub fn record(&mut self, features: &BTreeSet<String>) {
        self.iterations += 1;
        for f in features {
            *self.counts.entry(f.clone()).or_insert(0) += 1;
        }
    }

    /// How often `feature` has been seen.
    pub fn count(&self, feature: &str) -> u64 {
        self.counts.get(feature).copied().unwrap_or(0)
    }

    /// Whether `feature` has been seen in fewer than ~10% of iterations —
    /// the threshold below which the driver boosts its generation weight.
    pub fn is_rare(&self, feature: &str) -> bool {
        self.count(feature) * 10 < self.iterations
    }

    /// Iterations recorded.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// All `(feature, count)` pairs in lexicographic order.
    pub fn entries(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(k, &v)| (k.as_str(), v))
    }
}

/// Summarizes one iteration as a feature set: generator constructs used by
/// `spec`, observable trace shapes in `original`, engine rules that fired
/// and race categories found by the oracle `report`.
pub fn features_of(
    spec: Option<&ProgramSpec>,
    original: &Trace,
    report: &OracleReport,
) -> BTreeSet<String> {
    let mut out = BTreeSet::new();

    if let Some(spec) = spec {
        let actions = spec
            .threads
            .iter()
            .map(|t| &t.body)
            .chain(spec.tasks.iter().map(|t| &t.body))
            .flatten();
        for a in actions {
            let f = match a {
                SpecAction::Read(_) | SpecAction::Write(_) => "gen.access",
                SpecAction::Acquire(_) | SpecAction::Release(_) => "gen.lock",
                SpecAction::Post { kind: PostKind::Plain, .. } => "gen.post.plain",
                SpecAction::Post { kind: PostKind::Delayed(_), .. } => "gen.post.delayed",
                SpecAction::Post { kind: PostKind::Front, .. } => "gen.post.front",
                SpecAction::Enable(_) => "gen.enable",
                SpecAction::Cancel(_) => "gen.cancel",
                SpecAction::AddIdle { .. } => "gen.idle",
                SpecAction::Fork(_) => "gen.fork",
                SpecAction::Join(_) => "gen.join",
            };
            out.insert(f.to_string());
        }
        if spec.threads.iter().filter(|t| t.queue).count() > 1 {
            out.insert("gen.multi_looper".to_string());
        }
        if !spec.injections.is_empty() {
            out.insert("gen.injection".to_string());
        }
        if spec.tasks.iter().any(|t| t.needs_enable) {
            out.insert("gen.enable_gate".to_string());
        }
        for tag in &spec.components {
            out.insert(format!("gen.component.{}", tag.label()));
        }
    }

    for (_, op) in original.iter() {
        let f = match op.kind {
            OpKind::Cancel { .. } => Some("op.cancel"),
            OpKind::Post { kind: PostKind::Delayed(_), .. } => Some("op.post.delayed"),
            OpKind::Post { kind: PostKind::Front, .. } => Some("op.post.front"),
            OpKind::Post { event: Some(_), .. } => Some("op.post.event"),
            _ => None,
        };
        if let Some(f) = f {
            out.insert(f.to_string());
        }
    }
    if report.stripped.len() < original.len() {
        // A cancel actually erased a pending post — the stripping path the
        // static corpus never exercises.
        out.insert("op.cancel.effective".to_string());
    }

    let stats = report.hb.stats();
    for (name, fired) in [
        ("rule.fifo", stats.fifo_fired > 0),
        ("rule.nopre", stats.nopre_fired > 0),
        ("rule.trans_st", stats.trans_st_edges > 0),
        ("rule.trans_mt", stats.trans_mt_edges > 0),
    ] {
        if fired {
            out.insert(name.to_string());
        }
    }

    for (_, cat) in &report.races {
        let f = match cat {
            RaceCategory::Multithreaded => "race.multithreaded",
            RaceCategory::CoEnabled => "race.co_enabled",
            RaceCategory::Delayed => "race.delayed",
            RaceCategory::CrossPosted => "race.cross_posted",
            RaceCategory::Unknown => "race.unknown",
        };
        out.insert(f.to_string());
    }

    out
}

/// Whether `trace` exhibits the *serial-executor ordering* shape: an
/// application dispatcher thread that itself never receives a post
/// delivers two or more tasks to the same non-main queue. The FIFO rule
/// then orders the deliveries on a dedicated serial executor rather than
/// the main looper — an engine path the static catalog never reaches: its
/// cross-queue fan-out always originates from the environment's *binder*
/// threads or from loopers that are themselves posted to, never from a
/// plain application thread.
pub fn serial_executor_ordering(trace: &Trace) -> bool {
    use droidracer_trace::{ThreadId, ThreadKind};
    let mut receivers: BTreeSet<ThreadId> = BTreeSet::new();
    for (_, op) in trace.iter() {
        if let OpKind::Post { target, .. } = op.kind {
            receivers.insert(target);
        }
    }
    let kinds: BTreeMap<ThreadId, ThreadKind> = trace
        .names()
        .threads()
        .map(|(id, d)| (id, d.kind))
        .collect();
    let mut deliveries: BTreeMap<(ThreadId, ThreadId), usize> = BTreeMap::new();
    for (_, op) in trace.iter() {
        if let OpKind::Post { target, .. } = op.kind {
            if receivers.contains(&op.thread)
                || kinds.get(&op.thread) != Some(&ThreadKind::App)
                || kinds.get(&target) == Some(&ThreadKind::Main)
                || target == op.thread
            {
                continue;
            }
            *deliveries.entry((op.thread, target)).or_insert(0) += 1;
        }
    }
    deliveries.values().any(|&n| n >= 2)
}

/// Writes `trace` as a plain-text regression case `<name>.trace` in `dir`,
/// creating the directory if needed. Returns the written path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_regression(dir: &Path, name: &str, trace: &Trace) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.trace"));
    fs::write(&path, to_text(trace))?;
    Ok(path)
}

/// Loads every `*.trace` file in `dir`, sorted by file name. A missing
/// directory yields an empty corpus.
///
/// # Errors
///
/// Propagates filesystem errors and trace-parse failures (a corrupt
/// committed regression should fail loudly, not be skipped).
pub fn load_regressions(dir: &Path) -> io::Result<Vec<(PathBuf, Trace)>> {
    let mut paths: Vec<PathBuf> = match fs::read_dir(dir) {
        Ok(entries) => entries
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "trace"))
            .collect(),
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let text = fs::read_to_string(&p)?;
            let trace = from_text(&text).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: {e}", p.display()),
                )
            })?;
            Ok((p, trace))
        })
        .collect()
}

/// Re-runs the oracle stack over every committed regression in `dir`,
/// returning the divergences per file (all empty when the corpus is green).
///
/// # Errors
///
/// Propagates [`load_regressions`] failures.
pub fn replay_regressions(
    dir: &Path,
    config: HbConfig,
) -> io::Result<Vec<(PathBuf, Vec<Divergence>)>> {
    Ok(load_regressions(dir)?
        .into_iter()
        .map(|(path, trace)| {
            let report = check_trace(&trace, config, config);
            (path, report.divergences)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use droidracer_trace::{ThreadKind, TraceBuilder};

    fn tiny_trace() -> Trace {
        let mut b = TraceBuilder::new();
        let t = b.thread("main", ThreadKind::Main, true);
        let loc = b.loc("obj", "C.f");
        b.thread_init(t);
        b.write(t, loc);
        b.finish_validated().expect("feasible")
    }

    #[test]
    fn coverage_tracks_rarity() {
        let mut cov = Coverage::new();
        let common: BTreeSet<String> = ["a".to_string()].into_iter().collect();
        let both: BTreeSet<String> = ["a".to_string(), "b".to_string()].into_iter().collect();
        for _ in 0..30 {
            cov.record(&common);
        }
        cov.record(&both);
        assert!(!cov.is_rare("a"));
        assert!(cov.is_rare("b"));
        assert!(cov.is_rare("never-seen"));
        assert_eq!(cov.iterations(), 31);
    }

    #[test]
    fn regressions_round_trip_through_disk() {
        let dir = std::env::temp_dir().join("droidracer-fuzz-corpus-test");
        let _ = fs::remove_dir_all(&dir);
        let trace = tiny_trace();
        save_regression(&dir, "tiny", &trace).expect("save");
        let loaded = load_regressions(&dir).expect("load");
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].1, trace);
        let replays = replay_regressions(&dir, HbConfig::new()).expect("replay");
        assert!(replays.iter().all(|(_, d)| d.is_empty()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_an_empty_corpus() {
        let dir = std::env::temp_dir().join("droidracer-fuzz-no-such-dir");
        let _ = fs::remove_dir_all(&dir);
        assert!(load_regressions(&dir).expect("empty").is_empty());
    }

    #[test]
    fn features_capture_trace_shapes() {
        let trace = tiny_trace();
        let report = check_trace(&trace, HbConfig::new(), HbConfig::new());
        let features = features_of(None, &trace, &report);
        assert!(!features.contains("op.cancel"));
        assert!(!features.contains("op.cancel.effective"));
    }
}
