//! Experiment E5 — the baseline comparison implied by §4.1
//! ("Specializations") and §7: what happens to race reports when the
//! happens-before relation is replaced by
//!
//! * the classic multi-threaded relation (misses every single-threaded
//!   race),
//! * the single-threaded event-driven relation (false positives wherever
//!   synchronization crosses threads),
//! * the naive combination with unrestricted transitivity and same-thread
//!   lock edges (spurious orderings suppress real races),
//! * events-simulated-as-threads (loses FIFO/run-to-completion orderings —
//!   "produce many false positives", §7),
//!
//! plus the FastTrack-style vector-clock detector as an independent
//! multi-threaded baseline.
//!
//! Run with `cargo run --release -p droidracer-bench --bin ablation`.

use droidracer_apps::open_source_corpus;
use droidracer_bench::TextTable;
use droidracer_core::{vc, AnalysisBuilder, HbMode, RaceCategory};

fn main() {
    let mut table = TextTable::new([
        "Application",
        "droidracer",
        "mt-only",
        "async-only",
        "naive-combined",
        "events-as-threads",
        "vector-clock",
    ]);
    println!("Races reported under each happens-before relation (open-source corpus)");
    println!("(droidracer = the paper's combined relation; counts are representative reports)\n");
    let mut totals = [0usize; 6];
    let mut mt_only_single_threaded = 0usize;
    for entry in open_source_corpus() {
        let trace = match entry.generate_trace() {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{}: {e}", entry.name);
                continue;
            }
        };
        let mut row = vec![entry.name.to_owned()];
        for (i, mode) in HbMode::all().iter().enumerate() {
            let analysis = AnalysisBuilder::new().mode(*mode).analyze(&trace).unwrap();
            let n = analysis.representatives().len();
            totals[i] += n;
            if *mode == HbMode::MultithreadedOnly {
                mt_only_single_threaded += analysis
                    .representatives()
                    .iter()
                    .filter(|cr| cr.category != RaceCategory::Multithreaded)
                    .count();
            }
            row.push(n.to_string());
        }
        let vc_n = vc::detect_multithreaded(&trace).len();
        totals[5] += vc_n;
        row.push(vc_n.to_string());
        table.row(row);
    }
    let mut total_row = vec!["TOTAL".to_owned()];
    total_row.extend(totals.iter().map(|n| n.to_string()));
    table.rule();
    table.row(total_row);
    println!("{}", table.render());
    println!("Expected shape (paper §4.1, §7):");
    println!("  mt-only reports no single-threaded races (measured single-threaded under mt-only: {mt_only_single_threaded})");
    println!("  async-only ≥ droidracer (cross-thread synchronization invisible → false positives)");
    println!("  naive-combined ≤ droidracer (spurious same-thread lock orderings suppress races)");
    println!("  events-as-threads ≥ droidracer (FIFO and run-to-completion orderings lost)");
    println!("  vector-clock agrees with mt-only on racy locations (cross-checked in tests)");
}
