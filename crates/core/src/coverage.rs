//! Race coverage — the triage technique of Raychev, Vechev and Sridharan
//! (OOPSLA 2013) that §6 of the paper points to for taming ad-hoc
//! synchronization false positives.
//!
//! A race `a` *covers* a race `b` when assuming `a` resolves in its observed
//! order (adding the happens-before edge `a.first ≺ a.second`) makes `b`'s
//! accesses ordered. Covered races share their root cause with a covering
//! race: the classic instance is a hand-rolled flag hand-off, where the
//! "race" on the flag covers every data race the flag guards. Reporting
//! only the *root* races focuses triage on independent causes.

use droidracer_trace::Trace;

use crate::engine::HappensBefore;
use crate::report::{Analysis, ClassifiedRace};

/// The result of coverage-based triage.
#[derive(Debug, Clone)]
pub struct CoverageReport {
    /// Uncovered (root) races, in trace order.
    pub roots: Vec<ClassifiedRace>,
    /// Covered races, each with the index into `roots` of a covering root
    /// when one exists (`None` when only covered by other covered races —
    /// a coverage chain).
    pub covered: Vec<(ClassifiedRace, Option<usize>)>,
}

impl CoverageReport {
    /// Total number of triaged races.
    pub fn total(&self) -> usize {
        self.roots.len() + self.covered.len()
    }
}

fn recompute(trace: &Trace, analysis: &Analysis, assumed: &[(usize, usize)]) -> HappensBefore {
    let index = trace.index();
    HappensBefore::compute_with_assumed_edges(trace, &index, *analysis.hb().config(), assumed)
}

/// Triage the representative races of `analysis` by coverage.
///
/// Computes the pairwise covers-relation (assume race `a`'s observed order;
/// does race `b` become ordered?). A race is *covered* when some other race
/// covers it and is not itself covered back (mutual coverage ties break by
/// trace order, earlier wins). Uncovered races are the roots.
pub fn race_coverage(analysis: &Analysis) -> CoverageReport {
    let trace = analysis.trace();
    let mut reps = analysis.representatives();
    reps.sort_by_key(|cr| (cr.race.first, cr.race.second));
    let n = reps.len();
    if n == 0 {
        return CoverageReport {
            roots: Vec::new(),
            covered: Vec::new(),
        };
    }
    // covers[a][b]: assuming race a orders race b.
    let mut covers = vec![vec![false; n]; n];
    for a in 0..n {
        let edge = (reps[a].race.first, reps[a].race.second);
        let hb = recompute(trace, analysis, &[edge]);
        for b in 0..n {
            if a != b {
                covers[a][b] = !hb.concurrent(reps[b].race.first, reps[b].race.second);
            }
        }
    }
    let is_covered = |b: usize| {
        (0..n).any(|a| a != b && covers[a][b] && (!covers[b][a] || a < b))
    };
    let mut roots = Vec::new();
    let mut root_index = vec![None; n];
    for (b, cr) in reps.iter().enumerate() {
        if !is_covered(b) {
            root_index[b] = Some(roots.len());
            roots.push(*cr);
        }
    }
    let mut covered = Vec::new();
    for (b, cr) in reps.iter().enumerate() {
        if root_index[b].is_some() {
            continue;
        }
        let by_root = (0..n).find_map(|a| {
            (a != b && covers[a][b] && root_index[a].is_some())
                .then(|| root_index[a])
                .flatten()
        });
        covered.push((*cr, by_root));
    }
    CoverageReport { roots, covered }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::AnalysisBuilder;
    use droidracer_trace::{ThreadKind, TraceBuilder};

    /// The canonical ad-hoc synchronization shape: producer writes data then
    /// raises a flag; consumer polls the flag then reads the data. Both
    /// pairs are HB-races, but the flag race covers the data race.
    fn adhoc_flag_trace() -> Trace {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg = b.thread("bg", ThreadKind::App, false);
        let data = b.loc("o", "C.data");
        let flag = b.loc("o", "C.flag");
        b.thread_init(main); // 0
        b.fork(main, bg); // 1
        b.thread_init(bg); // 2
        b.write(bg, data); // 3
        b.write(bg, flag); // 4
        b.read(main, flag); // 5 (the busy-wait poll)
        b.read(main, data); // 6
        b.finish()
    }

    #[test]
    fn flag_race_covers_data_race() {
        let analysis = AnalysisBuilder::new().analyze(&adhoc_flag_trace()).unwrap();
        assert_eq!(analysis.representatives().len(), 2);
        let report = race_coverage(&analysis);
        assert_eq!(report.roots.len(), 1, "one root cause");
        assert_eq!(report.covered.len(), 1);
        let names = analysis.trace().names();
        let root_field = names.field_name(report.roots[0].race.loc.field);
        let covered_field = names.field_name(report.covered[0].0.race.loc.field);
        // Assuming the flag race resolves in order (write flag ≺ read flag)
        // orders the data accesses through program order; the converse does
        // not hold. The flag is the root, the data race is covered.
        assert_eq!(root_field, "C.flag");
        assert_eq!(covered_field, "C.data");
        assert_eq!(report.total(), 2);
    }

    #[test]
    fn independent_races_are_both_roots() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg = b.thread("bg", ThreadKind::App, false);
        let x = b.loc("o", "C.x");
        let y = b.loc("p", "D.y");
        b.thread_init(main);
        b.fork(main, bg);
        b.thread_init(bg);
        b.write(bg, x);
        b.read(main, x);
        b.write(main, y);
        b.read(bg, y);
        let analysis = AnalysisBuilder::new().analyze(&b.finish()).unwrap();
        assert_eq!(analysis.representatives().len(), 2);
        let report = race_coverage(&analysis);
        // x races (bg→main) and y races (main→bg): assuming one edge does
        // not order the other pair (the directions oppose).
        assert_eq!(report.roots.len(), 2);
        assert!(report.covered.is_empty());
    }

    #[test]
    fn covered_race_attributes_a_single_root_when_possible() {
        let analysis = AnalysisBuilder::new().analyze(&adhoc_flag_trace()).unwrap();
        let report = race_coverage(&analysis);
        for (_, root) in &report.covered {
            // In the two-race flag scenario the cover is a single root.
            assert_eq!(*root, Some(0));
        }
    }

    #[test]
    fn no_races_yields_empty_report() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let loc = b.loc("o", "C.f");
        b.thread_init(main);
        b.write(main, loc);
        b.read(main, loc);
        let analysis = AnalysisBuilder::new().analyze(&b.finish()).unwrap();
        let report = race_coverage(&analysis);
        assert_eq!(report.total(), 0);
    }
}
