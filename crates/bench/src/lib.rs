//! Shared rendering helpers for the benchmark harness binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation, printing paper-reported numbers next to measured
//! ones. See DESIGN.md's experiment index (E1–E7) for the mapping.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;

use droidracer_core::EngineStats;
use droidracer_obs::{chrome_trace, render_span_tree, MetricsRegistry, SpanRecord};

/// Exports a bench run's profile when the `DR_PROFILE` environment variable
/// names an output path: writes the Chrome `trace_event` JSON there and
/// prints the span tree. A no-op when the variable is unset, so every bench
/// binary can call this unconditionally.
pub fn maybe_export_profile(span: &SpanRecord, metrics: &MetricsRegistry) {
    let Ok(path) = std::env::var("DR_PROFILE") else {
        return;
    };
    match std::fs::write(&path, chrome_trace(std::slice::from_ref(span), metrics)) {
        Ok(()) => {
            print!("{}", render_span_tree(span));
            println!("profile written to {path}");
        }
        Err(e) => eprintln!("could not write profile {path}: {e}"),
    }
}

/// A simple fixed-width text table.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Display>(header: impl IntoIterator<Item = S>) -> Self {
        TextTable {
            header: header.into_iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row<S: Display>(&mut self, cells: impl IntoIterator<Item = S>) {
        self.rows.push(cells.into_iter().map(|s| s.to_string()).collect());
    }

    /// Appends a horizontal rule (rendered as dashes).
    pub fn rule(&mut self) {
        self.rows.push(Vec::new());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for row in std::iter::once(&self.header).chain(self.rows.iter()) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |row: &[String], out: &mut String| {
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                if i == 0 {
                    out.push_str(&format!("{cell:<w$}"));
                } else {
                    out.push_str(&format!("  {cell:>w$}"));
                }
            }
            out.push('\n');
        };
        render_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            if row.is_empty() {
                out.push_str(&"-".repeat(total));
                out.push('\n');
            } else {
                render_row(row, &mut out);
            }
        }
        out
    }
}

/// Builds the hot-path counter table for a set of analyzed traces: one row
/// per trace showing where the happens-before engine spent its effort
/// (base edges, per-rule firings, fixpoint rounds, bit-matrix word-ops,
/// and the incremental-worklist counters — pops, rows recomputed, and
/// words the sparse row bounds let saturation skip).
pub fn engine_stats_table<'a>(
    rows: impl IntoIterator<Item = (&'a str, &'a EngineStats)>,
) -> TextTable {
    let mut table = TextTable::new([
        "Application",
        "Base edges",
        "FIFO",
        "NOPRE",
        "TRANS-ST",
        "TRANS-MT",
        "Rounds",
        "Word-ops",
        "Pops",
        "Rows",
        "Skipped",
    ]);
    fn cells(name: &str, s: &EngineStats) -> [String; 11] {
        [
            name.to_owned(),
            s.base_edges.to_string(),
            s.fifo_fired.to_string(),
            s.nopre_fired.to_string(),
            s.trans_st_edges.to_string(),
            s.trans_mt_edges.to_string(),
            s.rounds.to_string(),
            s.word_ops.to_string(),
            s.worklist_pops.to_string(),
            s.rows_recomputed.to_string(),
            s.skipped_words.to_string(),
        ]
    }
    let mut total = EngineStats::default();
    let mut n = 0usize;
    for (name, s) in rows {
        table.row(cells(name, s));
        total.absorb(s);
        n += 1;
    }
    if n > 1 {
        table.rule();
        table.row(cells("TOTAL", &total));
    }
    table
}

/// Formats `measured` next to the paper's number as `measured (paper)`.
pub fn vs(measured: impl Display, paper: impl Display) -> String {
    format!("{measured} ({paper})")
}

/// Formats the Table 3 `X(Y)` cell.
pub fn xy(x: usize, y: usize) -> String {
    format!("{x}({y})")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new(["App", "Len"]);
        t.row(["Aard", "1355"]);
        t.rule();
        t.row(["Flipkart", "157539"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("App"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].chars().all(|c| c == '-'));
        assert!(lines[2].ends_with("1355"));
    }

    #[test]
    fn helpers_format() {
        assert_eq!(vs(10, 12), "10 (12)");
        assert_eq!(xy(17, 4), "17(4)");
    }

    #[test]
    fn engine_stats_table_adds_total_row() {
        let a = EngineStats {
            base_edges: 3,
            fifo_fired: 1,
            ..Default::default()
        };
        let b = EngineStats {
            base_edges: 2,
            nopre_fired: 4,
            ..Default::default()
        };
        let rendered = engine_stats_table([("x", &a), ("y", &b)]).render();
        let total = rendered.lines().last().expect("has rows");
        assert!(total.starts_with("TOTAL"), "got: {rendered}");
        assert!(total.contains('5'), "summed base edges: {rendered}");
    }
}
