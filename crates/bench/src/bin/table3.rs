//! Experiment E2 — regenerates **Table 3**: data races reported by the
//! detector per category, as `X(Y)` where `X` is the number of reports and
//! `Y` the true positives among them (ground-truthed for our corpus; the
//! paper verified manually with DDMS). Paper numbers in parentheses.
//!
//! Run with `cargo run --release -p droidracer-bench --bin table3`.

use droidracer_apps::{analyze_corpus_profiled, corpus, RaceCategory};
use droidracer_bench::{maybe_export_profile, xy, TextTable};
use droidracer_core::{default_threads, CategoryCounts};
use droidracer_obs::MetricsRegistry;

fn main() {
    let mut table = TextTable::new([
        "Application",
        "Multithreaded",
        "Cross-posted",
        "Co-enabled",
        "Delayed",
        "Unknown",
        "diag",
    ]);
    println!("Table 3: data races reported, as measured(X(Y)) vs paper[X(Y)]");
    println!("(Y = true positives; unknown for proprietary apps in the paper)\n");
    let mut was_open_source = true;
    let mut total_open = CategoryCounts::default();
    let mut total_open_true = CategoryCounts::default();
    let mut total_prop = CategoryCounts::default();
    // Analyze the whole corpus in parallel; reports come back in corpus
    // order, so the rendered table is identical to the sequential one.
    let entries = corpus();
    let (reports, span) = analyze_corpus_profiled(&entries, default_threads());
    let mut registry = MetricsRegistry::new();
    for (entry, report) in entries.iter().zip(reports) {
        if was_open_source && !entry.open_source {
            table.rule();
            was_open_source = false;
        }
        let report = match report {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: {e}", entry.name);
                continue;
            }
        };
        registry.counter_add("races.reported", report.reported.total() as u64);
        registry.counter_add("races.verified", report.verified.total() as u64);
        if entry.open_source {
            total_open = total_open.merged(&report.reported);
            total_open_true = total_open_true.merged(&report.verified);
        } else {
            total_prop = total_prop.merged(&report.reported);
        }
        let cell = |cat: RaceCategory| {
            let measured = xy(report.reported.get(cat), report.verified.get(cat));
            let paper = match entry.paper.verified {
                Some(v) => xy(entry.paper.reported.get(cat), v.get(cat)),
                None => format!("{}", entry.paper.reported.get(cat)),
            };
            format!("{measured} [{paper}]")
        };
        let unplanned = report.unplanned(&entry.truth);
        let misclassified = report.misclassified(&entry.truth).len();
        table.row([
            entry.name.to_owned(),
            cell(RaceCategory::Multithreaded),
            cell(RaceCategory::CrossPosted),
            cell(RaceCategory::CoEnabled),
            cell(RaceCategory::Delayed),
            cell(RaceCategory::Unknown),
            format!("+{unplanned}/~{misclassified}"),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Open-source totals:   measured {} true {} | paper reported mt=27 cross=147 co=32 delayed=6, 80/215 true overall",
        total_open, total_open_true
    );
    println!(
        "Proprietary totals:   measured {} | paper reported mt=58 cross=276 co=124 delayed=43",
        total_prop
    );
    println!("\ndiag column: +unplanned reports / ~category mismatches vs planted ground truth");
    maybe_export_profile(&span, &registry);
}
