//! Validates every corpus motif in isolation: the detector reports exactly
//! the planted races, classifies them into the intended category, and the
//! reordering-based verifier agrees with the planted true/false annotation.

use droidracer_apps::{verify_race, CorpusEntry, MotifBuilder, PaperRow, RaceCategory, VerifyOutcome};
use droidracer_core::{Analysis, AnalysisBuilder};

fn entry(m: MotifBuilder) -> CorpusEntry {
    let (app, events, truth) = m.finish();
    CorpusEntry {
        name: "motif",
        open_source: true,
        app,
        events,
        seed: 13,
        paper: PaperRow::default(),
        truth,
    }
}

/// Analyzes the entry and asserts every planted race is reported in its
/// intended category, with nothing extra.
fn assert_planted(entry: &CorpusEntry, expected: usize, category: RaceCategory) -> Analysis {
    let trace = entry.generate_trace().expect("entry runs");
    let analysis = AnalysisBuilder::new().analyze(&trace).unwrap();
    let reps = analysis.representatives();
    assert_eq!(reps.len(), expected, "{}", analysis.render());
    let names = analysis.trace().names();
    for cr in &reps {
        assert_eq!(cr.category, category, "{}", analysis.render());
        let field = names.field_name(cr.race.loc.field);
        assert!(
            entry.truth.contains_key(&field),
            "unplanned race on {field}"
        );
    }
    analysis
}

/// Checks the verifier against the planted annotations.
fn assert_verifiable(entry: &CorpusEntry, budget: usize) {
    for (field, t) in &entry.truth {
        let outcome = verify_race(entry, field, budget).expect("verification runs");
        let expected = if t.is_true {
            VerifyOutcome::Reordered
        } else {
            VerifyOutcome::NotReordered
        };
        assert_eq!(outcome, expected, "{field}: {}", t.note);
    }
}

#[test]
fn mt_true_motif() {
    let mut m = MotifBuilder::new("M", "Main");
    m.mt_races(2, 0);
    let e = entry(m);
    assert_planted(&e, 2, RaceCategory::Multithreaded);
    assert_verifiable(&e, 40);
}

#[test]
fn mt_false_motif() {
    let mut m = MotifBuilder::new("M", "Main");
    m.mt_races(0, 2);
    let e = entry(m);
    assert_planted(&e, 2, RaceCategory::Multithreaded);
    assert_verifiable(&e, 40);
}

#[test]
fn cross_posted_true_motif() {
    let mut m = MotifBuilder::new("M", "Main");
    m.cross_posted_races(2, 0);
    let e = entry(m);
    assert_planted(&e, 2, RaceCategory::CrossPosted);
    assert_verifiable(&e, 40);
}

#[test]
fn cross_posted_false_motif() {
    let mut m = MotifBuilder::new("M", "Main");
    m.cross_posted_races(0, 2);
    let e = entry(m);
    assert_planted(&e, 2, RaceCategory::CrossPosted);
    assert_verifiable(&e, 40);
}

#[test]
fn co_enabled_true_motif() {
    let mut m = MotifBuilder::new("M", "Main");
    m.co_enabled_races(2, 0);
    let e = entry(m);
    assert_planted(&e, 2, RaceCategory::CoEnabled);
    assert_verifiable(&e, 40);
}

#[test]
fn co_enabled_false_motif() {
    let mut m = MotifBuilder::new("M", "Main");
    m.co_enabled_races(0, 2);
    let e = entry(m);
    assert_planted(&e, 2, RaceCategory::CoEnabled);
    assert_verifiable(&e, 40);
}

#[test]
fn delayed_true_motif() {
    let mut m = MotifBuilder::new("M", "Main");
    m.delayed_races(2, 0);
    let e = entry(m);
    assert_planted(&e, 2, RaceCategory::Delayed);
    assert_verifiable(&e, 40);
}

#[test]
fn delayed_false_motif() {
    let mut m = MotifBuilder::new("M", "Main");
    m.delayed_races(0, 2);
    let e = entry(m);
    assert_planted(&e, 2, RaceCategory::Delayed);
    assert_verifiable(&e, 40);
}

#[test]
fn unknown_motif_is_deterministic_and_unknown() {
    let mut m = MotifBuilder::new("M", "Main");
    m.unknown_races(2);
    let e = entry(m);
    assert_planted(&e, 2, RaceCategory::Unknown);
    // All unknown races are annotated false (front posts are deterministic
    // in the model); the verifier must agree.
    assert_verifiable(&e, 30);
}

#[test]
fn safe_sync_motif_reports_nothing_under_full_rules() {
    let mut m = MotifBuilder::new("M", "Main");
    m.safe_sync(6, 4);
    let e = entry(m);
    assert_planted(&e, 0, RaceCategory::Unknown);
}

#[test]
fn safe_sync_motif_trips_the_async_only_baseline() {
    use droidracer_core::HbMode;
    let mut m = MotifBuilder::new("M", "Main");
    m.safe_sync(6, 4);
    let e = entry(m);
    let trace = e.generate_trace().expect("runs");
    let baseline = AnalysisBuilder::new().mode(HbMode::AsyncOnly).analyze(&trace).unwrap();
    assert_eq!(
        baseline.representatives().len(),
        6,
        "all six safely synchronized fields become false positives"
    );
}

#[test]
fn cross_posted_true_races_vanish_under_naive_combination() {
    use droidracer_core::HbMode;
    let mut m = MotifBuilder::new("M", "Main");
    m.cross_posted_races(3, 0);
    let e = entry(m);
    let trace = e.generate_trace().expect("runs");
    assert_eq!(AnalysisBuilder::new().analyze(&trace).unwrap().representatives().len(), 3);
    let naive = AnalysisBuilder::new().mode(HbMode::NaiveCombined).analyze(&trace).unwrap();
    assert_eq!(
        naive.representatives().len(),
        0,
        "the spurious same-thread lock ordering suppresses all three"
    );
}

#[test]
fn lifecycle_flag_motif_reproduces_figure_4() {
    let mut m = MotifBuilder::new("M", "DwFileAct");
    let field = m.lifecycle_flag_race(true);
    let e = entry(m);
    let trace = e.generate_trace().expect("runs");
    let analysis = AnalysisBuilder::new().analyze(&trace).unwrap();
    // Depending on download progress at BACK time, the flag race shows up
    // multithreaded and/or cross-posted.
    let on_flag: Vec<_> = analysis
        .representatives()
        .into_iter()
        .filter(|cr| {
            analysis.trace().names().field_name(cr.race.loc.field) == field
        })
        .collect();
    assert!(!on_flag.is_empty(), "{}", analysis.render());
    for cr in on_flag {
        assert!(
            matches!(
                cr.category,
                RaceCategory::Multithreaded | RaceCategory::CrossPosted
            ),
            "{}",
            analysis.render()
        );
    }
}
