//! The content-addressed result cache: [`ResultStore`].
//!
//! Generalizes the text-persistence idiom of `explorer::db::ReplayDb` —
//! a one-line header, one entry per line, corrupt lines *skipped with a
//! diagnostic* instead of failing the load, and self-healing on save
//! (rewriting drops every corrupt line) — from replay verdicts to analysis
//! results. An entry maps a 64-bit content digest (spec token + trace
//! bytes, see [`job_key`]) to a `JobReport` record; equal digests mean
//! equal work, so a hit returns the stored report with zero recomputation.

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::Path;

use droidracer_core::JobReport;

/// Header line of the on-disk format; bump the version when the record
/// encoding changes incompatibly (old caches then reload as empty, which
/// is always safe — the cache is a pure memo).
const STORE_HEADER: &str = "droidracer-resultstore v1";

/// 64-bit FNV-1a over an arbitrary byte stream.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    /// Absorbs `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// The cache key of one job: a digest over the spec token, a separator,
/// and the raw trace bytes. The separator keeps `("ab", "c")` and
/// `("a", "bc")` from colliding trivially.
pub fn job_key(spec_token: &str, trace_bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(spec_token.as_bytes());
    h.update(&[0]);
    h.update(trace_bytes);
    h.finish()
}

/// One problem found while loading a persisted store. Loading never fails
/// for content reasons: every malformed line becomes a diagnostic and is
/// dropped, and the next [`ResultStore::save`] heals the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreDiagnostic {
    /// 1-based line number in the loaded file.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for StoreDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

/// An in-memory content-addressed map from job digest to [`JobReport`],
/// with optional text persistence. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct ResultStore {
    entries: BTreeMap<u64, JobReport>,
}

impl ResultStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached reports.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no reports.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a report by digest.
    pub fn get(&self, key: u64) -> Option<&JobReport> {
        self.entries.get(&key)
    }

    /// Stores `report` under `key`, replacing any previous entry.
    pub fn insert(&mut self, key: u64, report: JobReport) {
        self.entries.insert(key, report);
    }

    /// Serializes the store: header line, then one `<hex digest> <record>`
    /// line per entry in digest order (deterministic output).
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(64 * (self.entries.len() + 1));
        out.push_str(STORE_HEADER);
        out.push('\n');
        for (key, report) in &self.entries {
            out.push_str(&format!("{key:016x} {}\n", report.to_record()));
        }
        out
    }

    /// Parses a serialized store. A wrong or missing header yields an empty
    /// store (plus a diagnostic); every malformed entry line is skipped
    /// with a diagnostic. Content problems are never an `Err` — the cache
    /// is a memo, and dropping entries only costs recomputation.
    pub fn from_text(text: &str) -> (Self, Vec<StoreDiagnostic>) {
        let mut store = ResultStore::new();
        let mut diags = Vec::new();
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, header)) if header == STORE_HEADER => {}
            Some((_, header)) => {
                diags.push(StoreDiagnostic {
                    line: 1,
                    message: format!("unrecognized header `{header}`; ignoring file"),
                });
                return (store, diags);
            }
            None => return (store, diags),
        }
        for (idx, line) in lines {
            let lineno = idx + 1;
            if line.trim().is_empty() {
                continue;
            }
            let Some((key_hex, record)) = line.split_once(' ') else {
                diags.push(StoreDiagnostic {
                    line: lineno,
                    message: "missing digest/record separator".to_owned(),
                });
                continue;
            };
            let Ok(key) = u64::from_str_radix(key_hex, 16) else {
                diags.push(StoreDiagnostic {
                    line: lineno,
                    message: format!("bad digest `{key_hex}`"),
                });
                continue;
            };
            match JobReport::from_record(record) {
                Ok(report) => {
                    if store.entries.insert(key, report).is_some() {
                        diags.push(StoreDiagnostic {
                            line: lineno,
                            message: format!("duplicate digest {key:016x}; kept the later entry"),
                        });
                    }
                }
                Err(e) => diags.push(StoreDiagnostic {
                    line: lineno,
                    message: format!("corrupt record: {e}"),
                }),
            }
        }
        (store, diags)
    }

    /// Loads a store from `path`. A missing file is an empty store (first
    /// run); content corruption becomes diagnostics, not errors.
    ///
    /// # Errors
    ///
    /// Only genuine I/O failures (permissions, etc.).
    pub fn load(path: &Path) -> io::Result<(Self, Vec<StoreDiagnostic>)> {
        match std::fs::read_to_string(path) {
            Ok(text) => Ok(Self::from_text(&text)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok((Self::new(), Vec::new())),
            Err(e) => Err(e),
        }
    }

    /// Writes the canonical serialization to `path`, healing any corrupt
    /// lines the load skipped.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use droidracer_core::{ExitClass, JobReport};

    fn sample_report(diag: &str) -> JobReport {
        JobReport::aborted(ExitClass::Invalid, diag)
    }

    #[test]
    fn digest_separates_spec_and_trace() {
        assert_ne!(job_key("ab", b"c"), job_key("a", b"bc"));
        assert_ne!(job_key("s", b"x"), job_key("s", b"y"));
        assert_eq!(job_key("s", b"x"), job_key("s", b"x"));
    }

    #[test]
    fn round_trips_through_text() {
        let mut store = ResultStore::new();
        store.insert(job_key("spec", b"one"), sample_report("first, with | specials"));
        store.insert(job_key("spec", b"two"), sample_report("second"));
        let text = store.to_text();
        let (back, diags) = ResultStore::from_text(&text);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(back.len(), 2);
        for (key, report) in &store.entries {
            assert_eq!(back.get(*key), Some(report));
        }
        // Deterministic serialization: re-serializing is a fixed point.
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn corrupt_lines_are_skipped_and_healed() {
        let mut store = ResultStore::new();
        store.insert(1, sample_report("keep me"));
        store.insert(2, sample_report("and me"));
        let mut text = store.to_text();
        text.push_str("zzzz not-a-digest\n");
        text.push_str("00000000000000ff exit=clean counts=bogus\n");
        text.push_str("missingseparator\n");
        let (loaded, diags) = ResultStore::from_text(&text);
        assert_eq!(loaded.len(), 2, "good entries survive");
        assert_eq!(diags.len(), 3, "{diags:?}");
        assert!(diags.iter().all(|d| d.line > 1));
        // Healing: the rewrite contains only the good entries.
        let healed = loaded.to_text();
        assert_eq!(ResultStore::from_text(&healed).1, Vec::new());
        assert_eq!(healed.lines().count(), 3, "header + 2 entries");
    }

    #[test]
    fn wrong_header_loads_empty_with_diagnostic() {
        let (store, diags) = ResultStore::from_text("replaydb v9\nwhatever\n");
        assert!(store.is_empty());
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("unrecognized header"));
        let (store, diags) = ResultStore::from_text("");
        assert!(store.is_empty() && diags.is_empty());
    }

    #[test]
    fn load_and_save_heal_on_disk() {
        let dir = std::env::temp_dir().join(format!("resultstore-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.txt");
        // Missing file: empty store, no diagnostics.
        let (empty, diags) = ResultStore::load(&path).unwrap();
        assert!(empty.is_empty() && diags.is_empty());
        // Save entries plus inject corruption; reload skips, save heals.
        let mut store = ResultStore::new();
        store.insert(42, sample_report("persisted"));
        store.save(&path).unwrap();
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("garbage line\n");
        std::fs::write(&path, &text).unwrap();
        let (loaded, diags) = ResultStore::load(&path).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(diags.len(), 1);
        loaded.save(&path).unwrap();
        let (healed, diags) = ResultStore::load(&path).unwrap();
        assert_eq!(healed.len(), 1);
        assert!(diags.is_empty(), "save healed the file: {diags:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
