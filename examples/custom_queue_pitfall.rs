//! The tracer's blind spots (§6 "False positives and negatives"): custom
//! task queues and untracked native threads produce false positives that
//! reordering-based verification rejects.
//!
//! The app hands work from one thread to another through a hand-rolled
//! queue whose synchronization is invisible to the tracer (modeled by the
//! `untracked:` naming convention + [`droidracer::apps::strip_untracked`]).
//! The detector dutifully reports a race; re-running under many schedules
//! never reorders the accesses, exposing the report as a false positive.
//!
//! Run with `cargo run --example custom_queue_pitfall`.

use droidracer::apps::{strip_untracked, verify_race, CorpusEntry, MotifBuilder, PaperRow, VerifyOutcome};
use droidracer::core::AnalysisBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One true cross-posted race and one false one (ordered through an
    // untracked custom-queue join).
    let mut m = MotifBuilder::new("QueueDemo", "MainActivity");
    m.cross_posted_races(1, 1);
    let (app, events, truth) = m.finish();
    let entry = CorpusEntry {
        name: "QueueDemo",
        open_source: true,
        app,
        events,
        seed: 5,
        paper: PaperRow::default(),
        truth: truth.clone(),
    };

    let trace = entry.generate_trace()?;
    let analysis = AnalysisBuilder::new().analyze(&trace).unwrap();
    println!("{}", analysis.render());
    assert_eq!(
        analysis.representatives().len(),
        2,
        "both the real and the hidden-ordered pair are reported"
    );

    // Reordering-based verification (the paper's DDMS procedure) separates
    // them mechanically.
    for (field, t) in &truth {
        let outcome = verify_race(&entry, field, 60)?;
        let verdict = match outcome {
            VerifyOutcome::Reordered => "TRUE positive (reordered)",
            VerifyOutcome::NotReordered => "FALSE positive (never reorders)",
            VerifyOutcome::NoSuchRace => "not reported",
        };
        println!("{field}: {verdict}  — ground truth: {}", t.note);
        match outcome {
            VerifyOutcome::Reordered => assert!(t.is_true, "verified race must be planted true"),
            VerifyOutcome::NotReordered => assert!(!t.is_true, "unverifiable race must be planted false"),
            VerifyOutcome::NoSuchRace => panic!("planted race on {field} was not reported"),
        }
    }

    // For completeness: the stripped trace really is missing the hidden
    // synchronization the simulator enforced.
    let rerun = entry.generate_trace()?;
    let unstripped_len = {
        // generate_trace already strips; demonstrate idempotence.
        strip_untracked(&rerun).len()
    };
    assert_eq!(unstripped_len, rerun.len());
    println!("\nThe detector sees {} ops; the hidden join/fork ops were scrubbed.", rerun.len());
    Ok(())
}
