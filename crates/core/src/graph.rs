//! The happens-before graph: trace operations as nodes, with the paper's
//! node-merging optimization.
//!
//! §6 (Performance): "contiguous memory accesses without any intervening
//! synchronization operation are modeled by a single node in the graph. This
//! reduced the number of nodes to 1.4% to 24.8% of the original trace length
//! (with avg. 11.1%) without sacrificing on the precision."
//!
//! Merging is precision-preserving because happens-before edges enter and
//! leave a thread only at synchronization operations: two accesses on the
//! same thread inside the same task with no synchronization between them
//! stand in exactly the same ordering relations to every other operation.

use std::collections::HashMap;

use droidracer_trace::{Op, TaskId, ThreadId, Trace, TraceIndex};

use crate::bitmatrix::BitSet;

/// Identifier of a node in the happens-before graph (an index into
/// [`HbGraph::nodes`]).
pub type NodeId = usize;

/// One node of the happens-before graph: either a single synchronization
/// operation or a block of contiguous memory accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Node {
    /// The executing thread.
    pub thread: ThreadId,
    /// The task containing the node's operations, if any.
    pub task: Option<TaskId>,
    /// Trace index of the first operation in the node.
    pub first: usize,
    /// Trace index of the last operation in the node (equals `first` for
    /// synchronization nodes).
    pub last: usize,
    /// Whether this node is a merged block of memory accesses.
    pub is_access_block: bool,
}

/// The happens-before graph skeleton: the node set and op↔node mappings.
/// Edges live in the closure engine.
#[derive(Debug, Clone)]
pub struct HbGraph {
    nodes: Vec<Node>,
    op_node: Vec<NodeId>,
    thread_nodes: HashMap<ThreadId, Vec<NodeId>>,
    thread_masks: Vec<BitSet>,
    trace_len: usize,
}

impl HbGraph {
    /// Builds the graph for `trace`. When `merge_accesses` is true,
    /// contiguous same-thread same-task accesses with no intervening
    /// synchronization on that thread collapse into one node (the paper's
    /// optimization); otherwise every operation is its own node.
    pub fn build(trace: &Trace, index: &TraceIndex, merge_accesses: bool) -> Self {
        Self::build_with_breaks(trace, index, merge_accesses, &[])
    }

    /// Like [`HbGraph::build`], but the operations at `breaks` are kept as
    /// singleton nodes even under merging (and close their thread's open
    /// block). Used when edges must be anchored at specific operations —
    /// e.g. the assumed orderings of race-coverage analysis.
    pub fn build_with_breaks(
        trace: &Trace,
        index: &TraceIndex,
        merge_accesses: bool,
        breaks: &[usize],
    ) -> Self {
        let break_set: std::collections::HashSet<usize> = breaks.iter().copied().collect();
        let mut builder = GraphBuilder::new(merge_accesses);
        for (i, op) in trace.iter() {
            builder.push_op(i, op, index.task_of(i), break_set.contains(&i));
        }
        let GraphBuilder { nodes, op_node, .. } = builder;
        let mut thread_nodes: HashMap<ThreadId, Vec<NodeId>> = HashMap::new();
        for (id, node) in nodes.iter().enumerate() {
            thread_nodes.entry(node.thread).or_default().push(id);
        }
        let n_threads = trace
            .names()
            .thread_count()
            .max(nodes.iter().map(|n| n.thread.index() + 1).max().unwrap_or(0));
        let mut thread_masks = vec![BitSet::new(nodes.len()); n_threads];
        for (id, node) in nodes.iter().enumerate() {
            thread_masks[node.thread.index()].insert(id);
        }
        HbGraph {
            nodes,
            op_node,
            thread_nodes,
            thread_masks,
            trace_len: trace.len(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// All nodes in trace order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The node containing the operation at trace index `op_index`.
    ///
    /// # Panics
    ///
    /// Panics if `op_index` is out of bounds.
    pub fn node_of(&self, op_index: usize) -> NodeId {
        self.op_node[op_index]
    }

    /// Node ids on `thread`, in trace order.
    pub fn nodes_of_thread(&self, thread: ThreadId) -> &[NodeId] {
        self.thread_nodes
            .get(&thread)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Bit mask (over node ids) of the nodes on `thread`.
    pub fn thread_mask(&self, thread: ThreadId) -> Option<&BitSet> {
        self.thread_masks.get(thread.index())
    }

    /// Length of the underlying trace.
    pub fn trace_len(&self) -> usize {
        self.trace_len
    }

    /// Node count as a fraction of trace length — the paper reports this
    /// reduction ratio (avg 11.1% across its corpus).
    pub fn reduction_ratio(&self) -> f64 {
        if self.trace_len == 0 {
            1.0
        } else {
            self.nodes.len() as f64 / self.trace_len as f64
        }
    }
}

/// What one [`GraphBuilder::push_op`] did to the node set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct GraphPush {
    /// The node assigned to the pushed operation.
    pub(crate) node: NodeId,
    /// Whether the push created `node` (false when the op extended an open
    /// access block).
    pub(crate) new_node: bool,
    /// A previously-open access block on the op's thread this push closed:
    /// the block can never grow again. Singleton nodes (sync ops and
    /// unmerged accesses) are closed the moment they are created; open
    /// access blocks close through this field or when the stream finishes.
    pub(crate) closed: Option<NodeId>,
}

/// Incremental construction of the node set: operations are pushed one at a
/// time and the §6 merging decision is made exactly as in the batch fold of
/// [`HbGraph::build_with_breaks`], which delegates here. The streaming
/// engine drives this builder op-by-op and keeps its own growable
/// thread-mask/thread-node indexes.
#[derive(Debug, Clone)]
pub(crate) struct GraphBuilder {
    merge_accesses: bool,
    nodes: Vec<Node>,
    op_node: Vec<NodeId>,
    /// Per-thread id of the currently open access block, if any.
    open_block: HashMap<ThreadId, NodeId>,
}

impl GraphBuilder {
    pub(crate) fn new(merge_accesses: bool) -> Self {
        GraphBuilder {
            merge_accesses,
            nodes: Vec::new(),
            op_node: Vec::new(),
            open_block: HashMap::new(),
        }
    }

    /// Assigns the operation at trace index `i` to a node. Operations must
    /// be pushed in trace order (`i` equals the number of ops pushed so
    /// far); `is_break` forces a singleton node as in
    /// [`HbGraph::build_with_breaks`].
    pub(crate) fn push_op(
        &mut self,
        i: usize,
        op: Op,
        task: Option<TaskId>,
        is_break: bool,
    ) -> GraphPush {
        debug_assert_eq!(i, self.op_node.len(), "ops are pushed in trace order");
        if self.merge_accesses && op.kind.is_access() && !is_break {
            if let Some(&block) = self.open_block.get(&op.thread) {
                if self.nodes[block].task == task {
                    self.nodes[block].last = i;
                    self.op_node.push(block);
                    return GraphPush {
                        node: block,
                        new_node: false,
                        closed: None,
                    };
                }
            }
            let id = self.nodes.len();
            self.nodes.push(Node {
                thread: op.thread,
                task,
                first: i,
                last: i,
                is_access_block: true,
            });
            self.op_node.push(id);
            let closed = self.open_block.insert(op.thread, id);
            GraphPush {
                node: id,
                new_node: true,
                closed,
            }
        } else {
            // Any synchronization op (or breakpoint) on the thread closes
            // its block.
            let closed = if op.kind.is_sync() || is_break {
                self.open_block.remove(&op.thread)
            } else {
                None
            };
            let id = self.nodes.len();
            self.nodes.push(Node {
                thread: op.thread,
                task,
                first: i,
                last: i,
                is_access_block: op.kind.is_access(),
            });
            self.op_node.push(id);
            GraphPush {
                node: id,
                new_node: true,
                closed,
            }
        }
    }

    /// All nodes created so far, in trace order.
    pub(crate) fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The node containing the operation at trace index `op_index`.
    pub(crate) fn node_of(&self, op_index: usize) -> NodeId {
        self.op_node[op_index]
    }

    /// The still-open access block on `thread`, if any.
    pub(crate) fn open_block_of(&self, thread: ThreadId) -> Option<NodeId> {
        self.open_block.get(&thread).copied()
    }
}

/// Direct-edge adjacency over graph nodes: forward successor lists plus the
/// reverse predecessor lists the incremental closure uses for dirty-node
/// propagation.
///
/// The closure engine stores *direct* edges here (base rules and generator
/// firings, before transitive saturation). Edges always point forward in
/// trace order, so `succs(a)` holds only ids `> a` and `preds(b)` only ids
/// `< b`.
#[derive(Debug, Clone, Default)]
pub struct DirectEdges {
    succ: Vec<Vec<NodeId>>,
    pred: Vec<Vec<NodeId>>,
    edges: usize,
}

impl DirectEdges {
    /// Creates an edgeless adjacency over `n` nodes.
    pub fn new(n: usize) -> Self {
        DirectEdges {
            succ: vec![Vec::new(); n],
            pred: vec![Vec::new(); n],
            edges: 0,
        }
    }

    /// Grows the adjacency to cover `n` nodes (no-op if already large
    /// enough). The streaming engine discovers nodes one at a time, so its
    /// edge sets grow with the graph instead of being sized up front.
    pub fn grow_to(&mut self, n: usize) {
        if n > self.succ.len() {
            self.succ.resize_with(n, Vec::new);
            self.pred.resize_with(n, Vec::new);
        }
    }

    /// Records the direct edge `a → b`. The caller is responsible for
    /// deduplication (the engine only pushes newly-set relation bits).
    pub fn push(&mut self, a: NodeId, b: NodeId) {
        debug_assert!(a < b, "HB edges point forward in trace order");
        self.succ[a].push(b);
        self.pred[b].push(a);
        self.edges += 1;
    }

    /// Direct successors of `a`.
    pub fn succs(&self, a: NodeId) -> &[NodeId] {
        &self.succ[a]
    }

    /// Direct predecessors of `b`.
    pub fn preds(&self, b: NodeId) -> &[NodeId] {
        &self.pred[b]
    }

    /// Total number of recorded edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use droidracer_trace::{ThreadKind, TraceBuilder};

    fn access_heavy_trace() -> Trace {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg = b.thread("bg", ThreadKind::App, false);
        let loc = b.loc("o", "C.f");
        let l = b.lock("m");
        b.thread_init(main); // 0
        b.write(main, loc); // 1  ┐ block A
        b.read(main, loc); // 2  ┘
        b.fork(main, bg); // 3 (sync: closes block)
        b.read(main, loc); // 4  ┐ block B
        b.read(main, loc); // 5  ┘
        b.thread_init(bg); // 6
        b.write(bg, loc); // 7   block C (bg)
        b.read(main, loc); // 8  joins block B: no intervening sync on main
        b.acquire(bg, l); // 9
        b.release(bg, l); // 10
        b.finish()
    }

    #[test]
    fn merging_collapses_contiguous_accesses() {
        let trace = access_heavy_trace();
        let index = trace.index();
        let g = HbGraph::build(&trace, &index, true);
        // nodes: init, blockA, fork, blockB, init(bg), blockC, acquire, release
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.node_of(1), g.node_of(2));
        assert_eq!(g.node_of(4), g.node_of(5));
        // other-thread ops do not break a block
        assert_eq!(g.node_of(4), g.node_of(8));
        assert_ne!(g.node_of(1), g.node_of(4)); // fork intervened
        assert_ne!(g.node_of(7), g.node_of(4)); // different threads
        let block = g.node(g.node_of(4));
        assert_eq!((block.first, block.last), (4, 8));
        assert!(block.is_access_block);
    }

    #[test]
    fn unmerged_graph_has_one_node_per_op() {
        let trace = access_heavy_trace();
        let index = trace.index();
        let g = HbGraph::build(&trace, &index, false);
        assert_eq!(g.node_count(), trace.len());
        for i in 0..trace.len() {
            assert_eq!(g.node_of(i), i);
        }
        assert!((g.reduction_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn task_boundary_breaks_blocks() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let t1 = b.task("A");
        let t2 = b.task("B");
        let loc = b.loc("o", "C.f");
        b.thread_init(main);
        b.attach_q(main);
        b.loop_on_q(main);
        b.post(main, t1, main);
        b.post(main, t2, main);
        b.begin(main, t1);
        b.read(main, loc);
        b.end(main, t1);
        b.begin(main, t2);
        b.read(main, loc);
        b.end(main, t2);
        let trace = b.finish();
        let index = trace.index();
        let g = HbGraph::build(&trace, &index, true);
        let n1 = g.node(g.node_of(6));
        let n2 = g.node(g.node_of(9));
        assert_ne!(g.node_of(6), g.node_of(9));
        assert_eq!(n1.task, Some(t1));
        assert_eq!(n2.task, Some(t2));
    }

    #[test]
    fn thread_masks_partition_nodes() {
        let trace = access_heavy_trace();
        let index = trace.index();
        let g = HbGraph::build(&trace, &index, true);
        let main_mask = g.thread_mask(ThreadId(0)).unwrap();
        let bg_mask = g.thread_mask(ThreadId(1)).unwrap();
        for id in 0..g.node_count() {
            let on_main = g.node(id).thread == ThreadId(0);
            assert_eq!(main_mask.contains(id), on_main);
            assert_eq!(bg_mask.contains(id), !on_main);
        }
        assert_eq!(
            g.nodes_of_thread(ThreadId(0)).len() + g.nodes_of_thread(ThreadId(1)).len(),
            g.node_count()
        );
    }

    #[test]
    fn direct_edges_mirror_succ_and_pred() {
        let mut e = DirectEdges::new(5);
        assert_eq!(e.edge_count(), 0);
        e.push(0, 3);
        e.push(0, 4);
        e.push(2, 3);
        assert_eq!(e.succs(0), &[3, 4]);
        assert_eq!(e.succs(1), &[] as &[NodeId]);
        assert_eq!(e.preds(3), &[0, 2]);
        assert_eq!(e.preds(0), &[] as &[NodeId]);
        assert_eq!(e.edge_count(), 3);
    }

    #[test]
    fn reduction_ratio_reflects_merging() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let loc = b.loc("o", "C.f");
        b.thread_init(main);
        for _ in 0..99 {
            b.read(main, loc);
        }
        let trace = b.finish();
        let index = trace.index();
        let g = HbGraph::build(&trace, &index, true);
        assert_eq!(g.node_count(), 2); // init + one block
        assert!(g.reduction_ratio() < 0.05);
    }
}
