//! The sharded multi-tenant analysis daemon.
//!
//! One acceptor thread owns the listening socket; each connection gets its
//! own handler thread speaking the framed [`protocol`](crate::protocol).
//! Analysis work never runs on a connection thread: jobs are routed to one
//! of N *shard* workers by a stable hash of the tenant name, so one
//! abusive tenant can back up only its own shard's queue while sibling
//! tenants' jobs flow through the other shards untouched.
//!
//! Isolation is layered per job, reusing the batch pipeline's primitives:
//!
//! * every job runs inside [`droidracer_core::run_isolated`] — a panicking
//!   worker is quarantined into a `Resource` report and the shard thread
//!   survives;
//! * every job's spec is clamped to the server's per-job [`Budget`] caps
//!   and to the tenant's remaining cumulative word-ops quota, so runaway
//!   inputs hit a typed `Resource` cutoff;
//! * results of completed batch jobs land in the content-addressed
//!   [`ResultStore`], keyed by spec token + trace bytes — a resubmission
//!   is answered from the cache with zero recomputation (the tenant's
//!   `hb.word_ops` counter does not move).
//!
//! On top of per-job isolation the serving layer degrades gracefully under
//! infrastructure faults:
//!
//! * **admission control** — each shard's queue is bounded
//!   ([`ServerConfig::queue_depth`]); when it fills, jobs are shed with a
//!   typed [`Response::Overloaded`] carrying a retry-after hint instead of
//!   queueing unboundedly (`srv.overloaded`);
//! * **connection deadlines** — [`ServerConfig::conn_timeout_ms`] bounds
//!   every read and write, so a stalled peer costs one timeout, not a
//!   pinned thread forever (`srv.conn_timeouts`);
//! * **shard supervision** — a supervisor thread per shard detects a dead
//!   worker (a panic that escaped even the quarantine boundary), answers
//!   the in-flight job with a `Resource` quarantine report, and respawns
//!   the worker on the same queue (`srv.shard_respawns`);
//! * **crash-safe cache** — with [`ServerConfig::cache_path`] set the
//!   cache is a [`WalStore`]: inserts are fsynced to a write-ahead log
//!   *before* the response frame is written, so an acknowledged result
//!   survives `kill -9` at any byte offset and is recovered on restart.
//!
//! Accounting is per tenant through `droidracer-obs` registries: each
//! executed job's deterministic counters (`hb.word_ops`, `trace.ops`,
//! representative race counts) are absorbed into the owning tenant's
//! registry, and the `srv.*` service counters are kept both globally and
//! per tenant. [`Request::Status`] renders the whole picture as
//! `key=value` lines.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use droidracer_core::{
    run_isolated, AnalysisService, ExitClass, FaultHook, ItemError, JobReport, JobSpec,
    LocalService,
};
use droidracer_obs::{MetricsRegistry, MetricValue, Recorder};

use crate::protocol::{read_frame, write_frame, Request, Response};
use crate::store::{job_key, ResultStore, WalStore};

/// The retry-after hint sent with [`Response::Overloaded`].
const RETRY_AFTER_MS: u64 = 100;

/// Server tuning knobs. `Default` is permissive: any tenant, 2 shards,
/// 8 MiB traces, 64-deep queues, no budgets, no connection deadline, no
/// cache persistence.
#[derive(Clone, Default)]
pub struct ServerConfig {
    /// Number of shard worker threads (clamped to ≥ 1).
    pub shards: usize,
    /// Tenant allowlist; `None` admits any tenant name.
    pub allowed_tenants: Option<Vec<String>>,
    /// Largest accepted trace upload in bytes (0 = default 8 MiB).
    pub max_trace_bytes: usize,
    /// Per-job cap on happens-before word-ops, applied on top of (i.e.
    /// `min` with) whatever the job's own spec asks for.
    pub max_job_ops: Option<u64>,
    /// Per-job cap on relation-matrix bits, applied the same way.
    pub max_job_matrix_bits: Option<u64>,
    /// Cumulative word-ops quota per tenant; once a tenant has spent it,
    /// further jobs are refused with a `Resource` report.
    pub tenant_quota_ops: Option<u64>,
    /// Persist the result cache here: snapshot at this path plus a
    /// `.wal` write-ahead log alongside it, replayed on start.
    pub cache_path: Option<PathBuf>,
    /// Bound on each shard's admission queue (0 = default 64). A full
    /// queue sheds with [`Response::Overloaded`] instead of queueing.
    pub queue_depth: usize,
    /// Per-connection read/write deadline; `None` blocks forever (the
    /// pre-hardening behavior). A timed-out connection is dropped.
    pub conn_timeout_ms: Option<u64>,
    /// WAL appends between automatic snapshot compactions (0 = the
    /// [`WalStore::DEFAULT_COMPACT_EVERY`] default).
    pub wal_compact_every: usize,
    /// Leave the WAL uncompacted on clean shutdown. Durability does not
    /// need the final compaction (the log already has everything); the
    /// chaos harness sets this to exercise WAL-only recovery.
    pub skip_final_compaction: bool,
    /// Fault-injection hook, invoked as `job.<tenant>` on each job inside
    /// the quarantine boundary and as `shard.<tenant>` on the worker
    /// thread *outside* it (a panic there kills the worker and exercises
    /// the supervisor). Test/bench only — never reachable from the wire.
    pub fault_hook: Option<FaultHook>,
}

impl ServerConfig {
    fn shards(&self) -> usize {
        self.shards.max(1)
    }

    fn max_trace_bytes(&self) -> usize {
        if self.max_trace_bytes == 0 {
            8 << 20
        } else {
            self.max_trace_bytes
        }
    }

    fn queue_depth(&self) -> usize {
        if self.queue_depth == 0 {
            64
        } else {
            self.queue_depth
        }
    }
}

/// Per-tenant accounting: cumulative word-ops spent and the tenant's
/// metrics registry.
#[derive(Default)]
struct TenantState {
    used_ops: u64,
    metrics: MetricsRegistry,
}

/// The in-memory cache plus, when persistence is on, its durable form.
enum Cache {
    Mem(ResultStore),
    Wal(WalStore),
}

impl Cache {
    fn get(&self, key: u64) -> Option<&JobReport> {
        match self {
            Cache::Mem(s) => s.get(key),
            Cache::Wal(s) => s.get(key),
        }
    }

    /// Inserts, durably when WAL-backed: the record is fsynced before this
    /// returns, so callers may acknowledge the result afterwards.
    fn insert(&mut self, key: u64, report: JobReport) -> io::Result<()> {
        match self {
            Cache::Mem(s) => {
                s.insert(key, report);
                Ok(())
            }
            Cache::Wal(s) => s.insert(key, report),
        }
    }
}

/// State shared by the acceptor, connection handlers and shard workers.
struct Shared {
    config: ServerConfig,
    cache: Mutex<Cache>,
    tenants: Mutex<BTreeMap<String, TenantState>>,
    metrics: Mutex<MetricsRegistry>,
    shutdown: AtomicBool,
}

impl Shared {
    fn bump(&self, key: &str) {
        self.metrics.lock().unwrap().counter_add(key, 1);
    }

    fn bump_tenant(&self, tenant: &str, key: &str, delta: u64) {
        let mut tenants = self.tenants.lock().unwrap();
        tenants
            .entry(tenant.to_owned())
            .or_default()
            .metrics
            .counter_add(key, delta);
    }

    /// Renders the status snapshot: global `srv.*` counters first, then
    /// `tenant.<name>.<counter>` lines, all sorted (BTreeMap order).
    fn render_status(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.metrics.lock().unwrap().iter() {
            if let MetricValue::Counter(v) = value {
                out.push_str(&format!("{name}={v}\n"));
            }
        }
        for (tenant, state) in self.tenants.lock().unwrap().iter() {
            out.push_str(&format!("tenant.{tenant}.used_ops={}\n", state.used_ops));
            for (name, value) in state.metrics.iter() {
                if let MetricValue::Counter(v) = value {
                    out.push_str(&format!("tenant.{tenant}.{name}={v}\n"));
                }
            }
        }
        out
    }
}

/// One unit of shard work.
struct Job {
    tenant: String,
    spec: JobSpec,
    trace_text: String,
    /// `Some(chunk_ops)` drives the streaming engine (stream uploads);
    /// `None` is a whole-trace batch job.
    stream_chunk_ops: Option<usize>,
    reply: mpsc::Sender<JobReport>,
}

/// Executes one job on a shard worker: quota gate, budget clamp,
/// quarantined run, per-tenant accounting.
fn execute_job(shared: &Shared, job: Job) {
    let mut spec = job.spec;
    // Quota gate + per-job clamps. The tenant's remaining quota caps the
    // job's op budget, so a tenant can never spend past its quota even
    // in one giant job.
    let remaining = {
        let mut tenants = shared.tenants.lock().unwrap();
        let state = tenants.entry(job.tenant.clone()).or_default();
        shared
            .config
            .tenant_quota_ops
            .map(|quota| quota.saturating_sub(state.used_ops))
    };
    if remaining == Some(0) {
        shared.bump("srv.budget_exhausted");
        shared.bump_tenant(&job.tenant, "srv.budget_exhausted", 1);
        let _ = job.reply.send(JobReport::aborted(
            ExitClass::Resource,
            format!("tenant `{}` word-ops quota exhausted", job.tenant),
        ));
        return;
    }
    for cap in [shared.config.max_job_ops, remaining].into_iter().flatten() {
        spec.max_ops = Some(spec.max_ops.map_or(cap, |own| own.min(cap)));
    }
    if let Some(cap) = shared.config.max_job_matrix_bits {
        spec.max_matrix_bits = Some(spec.max_matrix_bits.map_or(cap, |own| own.min(cap)));
    }

    // The quarantine boundary: fault hook + analysis. A panic anywhere in
    // here becomes a Resource report; the shard thread survives.
    let hook = shared.config.fault_hook.clone();
    let tenant = job.tenant.clone();
    let mut rec = Recorder::new();
    rec.start("job");
    let outcome = run_isolated(move || -> Result<JobReport, io::Error> {
        if let Some(hook) = hook {
            hook(&format!("job.{tenant}"));
        }
        match job.stream_chunk_ops {
            Some(chunk_ops) => {
                Ok(LocalService::new().submit_streaming(&spec, &job.trace_text, chunk_ops))
            }
            None => LocalService::new().submit(&spec, &job.trace_text),
        }
    });
    rec.end();
    let spans = rec.finish();
    let mut quarantined = false;
    let report = match outcome {
        Ok(report) => report,
        Err(ItemError::Err(e)) => JobReport::aborted(ExitClass::Invalid, e.to_string()),
        Err(ItemError::Panic(msg)) => {
            quarantined = true;
            shared.bump("srv.quarantined");
            shared.bump_tenant(&job.tenant, "srv.quarantined", 1);
            JobReport::aborted(ExitClass::Resource, format!("worker quarantined: {msg}"))
        }
    };

    // Per-tenant accounting of the deterministic counters actually spent.
    {
        let mut tenants = shared.tenants.lock().unwrap();
        let state = tenants.entry(job.tenant.clone()).or_default();
        state.used_ops += report.stats.word_ops;
        state.metrics.counter_add("hb.word_ops", report.stats.word_ops);
        state.metrics.counter_add("trace.ops", report.stats.ops);
        state
            .metrics
            .counter_add("races.representatives", report.counts.total() as u64);
        state.metrics.counter_add("srv.jobs", 1);
        state.metrics.counter_add("srv.job_spans", spans.len() as u64);
    }
    shared.bump("srv.jobs");
    if report.exit == ExitClass::Resource && !quarantined {
        shared.bump("srv.budget_exhausted");
        shared.bump_tenant(&job.tenant, "srv.budget_exhausted", 1);
    }
    if report.exit == ExitClass::Invalid {
        shared.bump("srv.invalid");
    }
    let _ = job.reply.send(report);
}

/// The shard a tenant's jobs are routed to: a stable hash of the tenant
/// name modulo the shard count.
fn shard_of(tenant: &str, shards: usize) -> usize {
    (job_key("tenant-shard", tenant.as_bytes()) % shards as u64) as usize
}

/// The job the shard worker is executing right now, published so the
/// supervisor can answer it if the worker dies mid-job.
struct InFlight {
    tenant: String,
    reply: mpsc::Sender<JobReport>,
}

/// One supervised shard: a worker thread pulling from a shared (Mutex'd)
/// receiver, and a supervisor loop that respawns the worker when it dies.
///
/// The worker can only die from a panic *outside* the per-job quarantine
/// boundary — in practice the `shard.<tenant>` fault hook, standing in for
/// "anything `catch_unwind` can't contain" (abort-on-double-panic is the
/// one real gap a same-process supervisor can't cover; the WAL covers it).
/// The supervisor quarantines the in-flight job with a `Resource` report
/// (same contract as `run_isolated`'s) and hands the queue — with every
/// not-yet-started job intact — to a fresh worker.
fn supervise_shard(shared: Arc<Shared>, rx: Arc<Mutex<mpsc::Receiver<Job>>>) {
    loop {
        let inflight: Arc<Mutex<Option<InFlight>>> = Arc::new(Mutex::new(None));
        let worker = {
            let shared = Arc::clone(&shared);
            let rx = Arc::clone(&rx);
            let inflight = Arc::clone(&inflight);
            std::thread::spawn(move || {
                loop {
                    // Hold the receiver lock only while dequeueing, never
                    // while executing.
                    let job = match rx.lock().unwrap().recv() {
                        Ok(job) => job,
                        Err(_) => return, // all senders gone: clean drain
                    };
                    *inflight.lock().unwrap() = Some(InFlight {
                        tenant: job.tenant.clone(),
                        reply: job.reply.clone(),
                    });
                    if let Some(hook) = &shared.config.fault_hook {
                        // Outside run_isolated on purpose: a panic here is
                        // a worker death, not a quarantined job.
                        hook(&format!("shard.{}", job.tenant));
                    }
                    execute_job(&shared, job);
                    *inflight.lock().unwrap() = None;
                }
            })
        };
        match worker.join() {
            Ok(()) => return, // queue drained; shard is done
            Err(_) => {
                shared.bump("srv.shard_respawns");
                if let Some(poison) = inflight.lock().unwrap().take() {
                    shared.bump("srv.quarantined");
                    shared.bump_tenant(&poison.tenant, "srv.quarantined", 1);
                    let _ = poison.reply.send(JobReport::aborted(
                        ExitClass::Resource,
                        "shard worker died; job quarantined and worker respawned".to_owned(),
                    ));
                }
            }
        }
    }
}

/// Anything a connection can read and write frames on.
trait Conn: Read + Write + Send {
    /// Applies `timeout` to both reads and writes (`None` blocks forever).
    fn set_io_timeout(&self, timeout: Option<Duration>) -> io::Result<()>;
}

impl Conn for TcpStream {
    fn set_io_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(timeout)?;
        self.set_write_timeout(timeout)
    }
}

impl Conn for UnixStream {
    fn set_io_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(timeout)?;
        self.set_write_timeout(timeout)
    }
}

/// Whether an I/O error is a connection deadline expiring (both kinds
/// occur depending on platform and socket family).
fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Connection-local state of an open streaming upload.
struct OpenStream {
    tenant: String,
    spec: JobSpec,
    chunk_ops: usize,
    buf: Vec<u8>,
}

/// Handles one client connection until EOF, timeout, or shutdown.
fn handle_conn(
    shared: &Shared,
    shard_txs: &[mpsc::SyncSender<Job>],
    wake: &dyn Fn(),
    mut conn: Box<dyn Conn>,
) {
    let mut open_stream: Option<OpenStream> = None;
    loop {
        let payload = match read_frame(&mut conn) {
            Ok(Some(payload)) => payload,
            Ok(None) => return,
            Err(e) => {
                // A stalled peer hit the connection deadline; a torn frame
                // or disconnect just drops. Either way the connection is
                // unusable — any stream in progress evaporates with it.
                if is_timeout(&e) {
                    shared.bump("srv.conn_timeouts");
                }
                return;
            }
        };
        let request = match Request::decode(&payload) {
            Ok(request) => request,
            Err(e) => {
                // Typed decode errors are answered, not fatal: the framing
                // is intact, so the conversation can continue.
                let resp = Response::Rejected {
                    reason: format!("bad request: {e}"),
                };
                shared.bump("srv.rejected");
                if write_frame(&mut conn, &resp.encode()).is_err() {
                    return;
                }
                continue;
            }
        };
        let response = match request {
            Request::Submit { tenant, spec, trace } => {
                submit_response(shared, shard_txs, tenant, &spec, trace, None)
            }
            Request::StreamOpen { tenant, spec, chunk_ops } => {
                match admit(shared, &tenant).and_then(|()| parse_spec(&spec)) {
                    Err(reason) => {
                        shared.bump("srv.rejected");
                        Response::Rejected { reason }
                    }
                    Ok(spec) => {
                        open_stream = Some(OpenStream {
                            tenant,
                            spec,
                            chunk_ops: chunk_ops.max(1) as usize,
                            buf: Vec::new(),
                        });
                        Response::StreamAck { buffered: 0 }
                    }
                }
            }
            Request::StreamChunk { data } => match open_stream.as_mut() {
                None => {
                    shared.bump("srv.rejected");
                    Response::Rejected {
                        reason: "no open stream".to_owned(),
                    }
                }
                Some(stream) => {
                    if stream.buf.len() + data.len() > shared.config.max_trace_bytes() {
                        let tenant = stream.tenant.clone();
                        open_stream = None;
                        shared.bump("srv.rejected");
                        Response::Rejected {
                            reason: format!(
                                "stream for tenant `{tenant}` exceeds {} bytes",
                                shared.config.max_trace_bytes()
                            ),
                        }
                    } else {
                        stream.buf.extend_from_slice(&data);
                        Response::StreamAck {
                            buffered: stream.buf.len() as u64,
                        }
                    }
                }
            },
            Request::StreamFinish => match open_stream.take() {
                None => {
                    shared.bump("srv.rejected");
                    Response::Rejected {
                        reason: "no open stream".to_owned(),
                    }
                }
                Some(stream) => {
                    shared.bump("srv.streamed");
                    submit_response(
                        shared,
                        shard_txs,
                        stream.tenant,
                        &stream.spec.to_token(),
                        stream.buf,
                        Some(stream.chunk_ops),
                    )
                }
            },
            Request::Status => Response::Status {
                text: shared.render_status(),
            },
            Request::Shutdown => {
                shared.shutdown.store(true, Ordering::SeqCst);
                let _ = write_frame(&mut conn, &Response::Bye.encode());
                wake();
                return;
            }
        };
        match write_frame(&mut conn, &response.encode()) {
            Ok(()) => {}
            Err(e) => {
                if is_timeout(&e) {
                    shared.bump("srv.conn_timeouts");
                }
                return;
            }
        }
    }
}

/// Admission checks shared by batch and stream jobs.
fn admit(shared: &Shared, tenant: &str) -> Result<(), String> {
    if tenant.is_empty() {
        return Err("empty tenant name".to_owned());
    }
    if let Some(allowed) = &shared.config.allowed_tenants {
        if !allowed.iter().any(|t| t == tenant) {
            return Err(format!("unknown tenant `{tenant}`"));
        }
    }
    Ok(())
}

fn parse_spec(token: &str) -> Result<JobSpec, String> {
    JobSpec::from_token(token).map_err(|e| format!("bad job spec: {e}"))
}

/// Full submit path: admission → cache → bounded shard dispatch → durable
/// cache fill. The cache insert (WAL append + fsync when persistent)
/// happens *before* the `Response` is returned for framing, so a response
/// the client managed to read always refers to a durable result.
fn submit_response(
    shared: &Shared,
    shard_txs: &[mpsc::SyncSender<Job>],
    tenant: String,
    spec_token: &str,
    trace: Vec<u8>,
    stream_chunk_ops: Option<usize>,
) -> Response {
    let admitted = admit(shared, &tenant)
        .and_then(|()| parse_spec(spec_token))
        .and_then(|spec| {
            if trace.len() > shared.config.max_trace_bytes() {
                return Err(format!(
                    "trace of {} bytes exceeds limit {}",
                    trace.len(),
                    shared.config.max_trace_bytes()
                ));
            }
            String::from_utf8(trace)
                .map(|text| (spec, text))
                .map_err(|_| "trace is not valid UTF-8".to_owned())
        });
    let (spec, text) = match admitted {
        Ok(parsed) => parsed,
        Err(reason) => {
            shared.bump("srv.rejected");
            return Response::Rejected { reason };
        }
    };

    // Content-addressed cache — batch jobs only (a streamed job's stats
    // legitimately differ from the batch stats for the same bytes, so the
    // two must not share a key; streams are rare enough not to cache).
    let key = job_key(spec_token, text.as_bytes());
    if stream_chunk_ops.is_none() {
        if let Some(report) = shared.cache.lock().unwrap().get(key) {
            shared.bump("srv.cache_hits");
            shared.bump_tenant(&tenant, "srv.cache_hits", 1);
            return Response::Report {
                cache_hit: true,
                record: report.to_record(),
            };
        }
    }

    let (reply_tx, reply_rx) = mpsc::channel();
    let shard = shard_of(&tenant, shard_txs.len());
    let job = Job {
        tenant: tenant.clone(),
        spec,
        trace_text: text,
        stream_chunk_ops,
        reply: reply_tx,
    };
    // Bounded admission: a full queue sheds the job *before* any work or
    // cache mutation, so the client can resubmit with no duplication risk.
    match shard_txs[shard].try_send(job) {
        Ok(()) => {}
        Err(mpsc::TrySendError::Full(_)) => {
            shared.bump("srv.overloaded");
            shared.bump_tenant(&tenant, "srv.overloaded", 1);
            return Response::Overloaded {
                retry_after_ms: RETRY_AFTER_MS,
            };
        }
        Err(mpsc::TrySendError::Disconnected(_)) => {
            return Response::Rejected {
                reason: "server is shutting down".to_owned(),
            }
        }
    }
    let report = match reply_rx.recv() {
        Ok(report) => report,
        Err(_) => {
            return Response::Rejected {
                reason: "shard worker lost".to_owned(),
            }
        }
    };
    // Cache completed batch analyses, durably (fsynced) when the cache is
    // WAL-backed — this runs before the response frame is written, so an
    // acknowledged report is a recoverable report. Resource reports depend
    // on quota state at execution time, so they are not memoizable.
    if stream_chunk_ops.is_none() && report.exit != ExitClass::Resource {
        match shared.cache.lock().unwrap().insert(key, report.clone()) {
            Ok(()) => shared.bump("srv.cache_stores"),
            Err(_) => {
                // The disk failed under the WAL; the result still serves
                // from memory for this process's lifetime.
                shared.bump("srv.wal_errors");
            }
        }
    }
    Response::Report {
        cache_hit: false,
        record: report.to_record(),
    }
}

/// The listening socket, TCP or Unix.
enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

/// A bound (but not yet running) analysis server.
pub struct Server {
    listener: Listener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds a TCP listener (`127.0.0.1:0` picks an ephemeral port —
    /// read it back with [`Server::local_addr`]).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind_tcp(addr: &str, config: ServerConfig) -> io::Result<Server> {
        Ok(Server {
            listener: Listener::Tcp(TcpListener::bind(addr)?),
            shared: Arc::new(Shared::new(config)),
        })
    }

    /// Binds a Unix-domain listener at `path` (removing a stale socket
    /// file first).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind_unix(path: &Path, config: ServerConfig) -> io::Result<Server> {
        if path.exists() {
            std::fs::remove_file(path)?;
        }
        Ok(Server {
            listener: Listener::Unix(UnixListener::bind(path)?, path.to_owned()),
            shared: Arc::new(Shared::new(config)),
        })
    }

    /// The bound TCP address (`None` for Unix sockets).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        match &self.listener {
            Listener::Tcp(l) => l.local_addr().ok(),
            Listener::Unix(..) => None,
        }
    }

    /// Serves until a [`Request::Shutdown`] arrives, then drains the
    /// shard queues and compacts the cache (if configured and not
    /// [`ServerConfig::skip_final_compaction`]). Opens the durable store
    /// first: the snapshot is loaded and the write-ahead log replayed over
    /// it, truncating any torn tail; corrupt snapshot lines and
    /// checksum-failed WAL records are skipped (counted under
    /// `srv.cache_load_skipped`) and healed by the next compaction.
    ///
    /// # Errors
    ///
    /// Fatal listener or cache-I/O errors only; per-connection errors drop
    /// that connection.
    pub fn run(self) -> io::Result<()> {
        let shared = self.shared;
        if let Some(path) = &shared.config.cache_path {
            let (mut wal, diags) = WalStore::open(path)?;
            if shared.config.wal_compact_every > 0 {
                wal = wal.with_compact_every(shared.config.wal_compact_every);
            }
            let stats = wal.stats();
            let mut metrics = shared.metrics.lock().unwrap();
            metrics.counter_add("srv.cache_load_skipped", diags.len() as u64);
            metrics.counter_add("srv.cache_preloaded", wal.len() as u64);
            metrics.counter_add("srv.wal_replayed", stats.replayed);
            metrics.counter_add("srv.wal_skipped", stats.skipped);
            metrics.counter_add("srv.wal_torn_truncated", stats.torn_truncated);
            drop(metrics);
            *shared.cache.lock().unwrap() = Cache::Wal(wal);
        }
        let shards = shared.config.shards();
        let depth = shared.config.queue_depth();
        let mut shard_txs = Vec::with_capacity(shards);
        let mut shard_rxs = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = mpsc::sync_channel::<Job>(depth);
            shard_txs.push(tx);
            shard_rxs.push(Arc::new(Mutex::new(rx)));
        }
        let wake: Arc<dyn Fn() + Send + Sync> = match &self.listener {
            Listener::Tcp(l) => {
                let addr = l.local_addr()?;
                Arc::new(move || {
                    let _ = TcpStream::connect(addr);
                })
            }
            Listener::Unix(_, path) => {
                let path = path.clone();
                Arc::new(move || {
                    let _ = UnixStream::connect(&path);
                })
            }
        };

        let mut supervisors = Vec::with_capacity(shards);
        for rx in shard_rxs {
            let shared = Arc::clone(&shared);
            supervisors.push(std::thread::spawn(move || supervise_shard(shared, rx)));
        }
        let conn_timeout = shared.config.conn_timeout_ms.map(Duration::from_millis);
        loop {
            let conn: Box<dyn Conn> = match &self.listener {
                Listener::Tcp(l) => Box::new(l.accept()?.0),
                Listener::Unix(l, _) => Box::new(l.accept()?.0),
            };
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            if conn.set_io_timeout(conn_timeout).is_err() {
                continue; // can't deadline it: refuse rather than risk a pin
            }
            let shared = Arc::clone(&shared);
            let txs = shard_txs.clone();
            let wake = Arc::clone(&wake);
            std::thread::spawn(move || handle_conn(&shared, &txs, &*wake, conn));
        }
        // Dropping our senders ends the shard workers once every
        // connection's clone is gone and the queues drain; joining the
        // supervisors makes the final compaction see every completed job.
        drop(shard_txs);
        for supervisor in supervisors {
            let _ = supervisor.join();
        }

        if let Listener::Unix(_, path) = &self.listener {
            let _ = std::fs::remove_file(path);
        }
        if !shared.config.skip_final_compaction {
            if let Cache::Wal(wal) = &mut *shared.cache.lock().unwrap() {
                wal.compact()?;
            }
        }
        Ok(())
    }
}

impl Shared {
    fn new(config: ServerConfig) -> Self {
        Shared {
            config,
            cache: Mutex::new(Cache::Mem(ResultStore::new())),
            tenants: Mutex::new(BTreeMap::new()),
            metrics: Mutex::new(MetricsRegistry::new()),
            shutdown: AtomicBool::new(false),
        }
    }
}

/// Parses one counter out of a [`Request::Status`] snapshot.
pub fn status_counter(status_text: &str, key: &str) -> Option<u64> {
    status_text.lines().find_map(|line| {
        let (k, v) = line.split_once('=')?;
        if k == key {
            v.parse().ok()
        } else {
            None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        for shards in [1, 2, 7] {
            for tenant in ["alice", "bob", "mallory", ""] {
                let s = shard_of(tenant, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(tenant, shards), "stable");
            }
        }
        // Distinct tenants can land on distinct shards (sanity, not proof).
        let hits: std::collections::HashSet<usize> = ["a", "b", "c", "d", "e", "f"]
            .iter()
            .map(|t| shard_of(t, 4))
            .collect();
        assert!(hits.len() > 1, "all tenants on one shard of 4");
    }

    #[test]
    fn status_counter_parses_lines() {
        let text = "srv.jobs=3\ntenant.alice.hb.word_ops=120\nnoise\n";
        assert_eq!(status_counter(text, "srv.jobs"), Some(3));
        assert_eq!(status_counter(text, "tenant.alice.hb.word_ops"), Some(120));
        assert_eq!(status_counter(text, "missing"), None);
    }
}
