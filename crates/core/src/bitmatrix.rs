//! A dense square bit matrix used for happens-before reachability.

use std::fmt;

/// A square boolean matrix backed by `u64` words, storing one row per graph
/// node. Row `i` holds the set of nodes `j` with an edge (or derived
/// ordering) `i → j`.
#[derive(Clone, PartialEq, Eq)]
pub struct BitMatrix {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    /// Creates an `n × n` matrix of zeros.
    pub fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(64);
        BitMatrix {
            n,
            words_per_row,
            bits: vec![0; n * words_per_row],
        }
    }

    /// Side length of the matrix.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix has zero rows.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    #[inline]
    fn row_range(&self, i: usize) -> std::ops::Range<usize> {
        let start = i * self.words_per_row;
        start..start + self.words_per_row
    }

    /// Sets bit `(i, j)`. Returns `true` if the bit was newly set.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize) -> bool {
        debug_assert!(i < self.n && j < self.n);
        let word = &mut self.bits[i * self.words_per_row + j / 64];
        let mask = 1u64 << (j % 64);
        let was = *word & mask != 0;
        *word |= mask;
        !was
    }

    /// Tests bit `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> bool {
        debug_assert!(i < self.n && j < self.n);
        self.bits[i * self.words_per_row + j / 64] & (1u64 << (j % 64)) != 0
    }

    /// Returns row `i` as a word slice.
    pub fn row(&self, i: usize) -> &[u64] {
        &self.bits[self.row_range(i)]
    }

    /// ORs row `src` into row `dst`. Returns `true` if `dst` changed.
    pub fn or_row_into(&mut self, src: usize, dst: usize) -> bool {
        debug_assert!(src != dst || src < self.n);
        if src == dst {
            return false;
        }
        let (s, d) = (self.row_range(src), self.row_range(dst));
        let mut changed = false;
        // Split borrows: rows never overlap because src != dst.
        let (lo, hi, src_first) = if s.start < d.start {
            (s, d, true)
        } else {
            (d, s, false)
        };
        let (head, tail) = self.bits.split_at_mut(hi.start);
        let lo_slice = &mut head[lo];
        let hi_slice = &mut tail[..hi.end - hi.start];
        let (src_slice, dst_slice): (&[u64], &mut [u64]) = if src_first {
            (lo_slice, hi_slice)
        } else {
            (hi_slice, lo_slice)
        };
        for (dw, sw) in dst_slice.iter_mut().zip(src_slice.iter()) {
            let new = *dw | *sw;
            changed |= new != *dw;
            *dw = new;
        }
        changed
    }

    /// ORs an external word slice into row `dst`. Returns `true` on change.
    pub fn or_words_into(&mut self, words: &[u64], dst: usize) -> bool {
        let range = self.row_range(dst);
        let mut changed = false;
        for (dw, sw) in self.bits[range].iter_mut().zip(words.iter()) {
            let new = *dw | *sw;
            changed |= new != *dw;
            *dw = new;
        }
        changed
    }

    /// ANDs the complement of `mask` into row `dst` (clears masked bits).
    pub fn clear_masked(&mut self, mask: &[u64], dst: usize) {
        let range = self.row_range(dst);
        for (dw, mw) in self.bits[range].iter_mut().zip(mask.iter()) {
            *dw &= !*mw;
        }
    }

    /// Iterates over the set bit positions of row `i`.
    pub fn iter_row(&self, i: usize) -> BitIter<'_> {
        BitIter::new(self.row(i))
    }

    /// Number of set bits in the whole matrix.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of set bits in row `i`.
    pub fn row_count_ones(&self, i: usize) -> usize {
        self.row(i).iter().map(|w| w.count_ones() as usize).sum()
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix({}x{}, {} bits set)", self.n, self.n, self.count_ones())?;
        if self.n <= 32 {
            for i in 0..self.n {
                let row: String = (0..self.n).map(|j| if self.get(i, j) { '1' } else { '.' }).collect();
                writeln!(f, "  {i:>3} {row}")?;
            }
        }
        Ok(())
    }
}

/// Iterator over set bit positions of a word slice.
#[derive(Debug, Clone)]
pub struct BitIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl<'a> BitIter<'a> {
    /// Creates an iterator over the set bits of `words`.
    pub fn new(words: &'a [u64]) -> Self {
        BitIter {
            words,
            word_idx: 0,
            current: words.first().copied().unwrap_or(0),
        }
    }
}

impl Iterator for BitIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * 64 + bit)
    }
}

/// A standalone bit set sized for `n` node ids, used for thread masks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// Creates a set over ids `0..n`, initially empty.
    pub fn new(n: usize) -> Self {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Inserts `i`.
    pub fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Tests membership of `i`.
    pub fn contains(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .map(|w| w & (1u64 << (i % 64)) != 0)
            .unwrap_or(false)
    }

    /// The backing words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Iterates over members.
    pub fn iter(&self) -> BitIter<'_> {
        BitIter::new(&self.words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get() {
        let mut m = BitMatrix::new(130);
        assert!(!m.get(3, 127));
        assert!(m.set(3, 127));
        assert!(!m.set(3, 127)); // already set
        assert!(m.get(3, 127));
        assert!(!m.get(127, 3));
        assert_eq!(m.count_ones(), 1);
    }

    #[test]
    fn or_row_into_merges_rows() {
        let mut m = BitMatrix::new(70);
        m.set(0, 5);
        m.set(0, 65);
        m.set(1, 7);
        assert!(m.or_row_into(0, 1));
        assert!(m.get(1, 5) && m.get(1, 65) && m.get(1, 7));
        assert!(!m.or_row_into(0, 1)); // second time: no change
        assert!(!m.or_row_into(0, 0)); // self-merge is a no-op
    }

    #[test]
    fn or_row_into_works_in_both_directions() {
        let mut m = BitMatrix::new(10);
        m.set(5, 1);
        assert!(m.or_row_into(5, 2)); // src after dst
        assert!(m.get(2, 1));
        m.set(0, 3);
        assert!(m.or_row_into(0, 7)); // src before dst
        assert!(m.get(7, 3));
    }

    #[test]
    fn iter_row_yields_sorted_positions() {
        let mut m = BitMatrix::new(200);
        for j in [0, 63, 64, 128, 199] {
            m.set(2, j);
        }
        let got: Vec<usize> = m.iter_row(2).collect();
        assert_eq!(got, vec![0, 63, 64, 128, 199]);
    }

    #[test]
    fn clear_masked_removes_bits() {
        let mut m = BitMatrix::new(70);
        m.set(0, 3);
        m.set(0, 68);
        let mut mask = BitSet::new(70);
        mask.insert(3);
        m.clear_masked(mask.words(), 0);
        assert!(!m.get(0, 3));
        assert!(m.get(0, 68));
    }

    #[test]
    fn or_words_into_reports_change() {
        let mut m = BitMatrix::new(70);
        let mut set = BitSet::new(70);
        set.insert(69);
        assert!(m.or_words_into(set.words(), 4));
        assert!(!m.or_words_into(set.words(), 4));
        assert!(m.get(4, 69));
    }

    #[test]
    fn bitset_basics() {
        let mut s = BitSet::new(100);
        assert!(!s.contains(99));
        s.insert(99);
        s.insert(0);
        assert!(s.contains(99) && s.contains(0) && !s.contains(50));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 99]);
    }

    #[test]
    fn empty_matrix_is_fine() {
        let m = BitMatrix::new(0);
        assert!(m.is_empty());
        assert_eq!(m.count_ones(), 0);
    }
}
