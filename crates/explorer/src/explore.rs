//! Systematic depth-first exploration of UI event sequences.
//!
//! DroidRacer's UI Explorer "systematically generates event sequences of
//! length k in a depth-first manner" (§5), storing them for backtracking and
//! replay. [`enumerate_sequences`] performs the same enumeration over the
//! abstract UI state of an [`App`]; [`run_sequence`] compiles and executes
//! one sequence, producing the trace the Race Detector consumes.

use droidracer_framework::{compile, App, CompileError, UiEvent, UiState};
use droidracer_sim::{run, RandomScheduler, SimConfig, SimError, SimResult};

/// Limits for an exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExplorerConfig {
    /// Bound `k` on the length of UI event sequences (the paper uses 1–7,
    /// and 1–3 for applications with complex start-up behaviour).
    pub max_depth: usize,
    /// Cap on the number of sequences enumerated (the DFS can explode).
    pub max_sequences: usize,
    /// Scheduler seed used when running a sequence.
    pub seed: u64,
    /// Step budget per run.
    pub max_steps: usize,
}

impl Default for ExplorerConfig {
    fn default() -> Self {
        ExplorerConfig {
            max_depth: 3,
            max_sequences: 256,
            seed: 0,
            max_steps: 200_000,
        }
    }
}

/// Enumerates all available event sequences of length `1..=max_depth` in
/// depth-first order (each prefix is emitted before its extensions).
pub fn enumerate_sequences(app: &App, config: &ExplorerConfig) -> Vec<Vec<UiEvent>> {
    let mut out = Vec::new();
    let Some(initial) = UiState::initial(app) else {
        return out;
    };
    let mut prefix = Vec::new();
    dfs(app, &initial, &mut prefix, config, &mut out);
    out
}

fn dfs(
    app: &App,
    state: &UiState,
    prefix: &mut Vec<UiEvent>,
    config: &ExplorerConfig,
    out: &mut Vec<Vec<UiEvent>>,
) {
    if prefix.len() >= config.max_depth || out.len() >= config.max_sequences {
        return;
    }
    for event in state.available_events(app) {
        if out.len() >= config.max_sequences {
            return;
        }
        let Some(next) = state.apply(app, event) else {
            continue;
        };
        prefix.push(event);
        out.push(prefix.clone());
        dfs(app, &next, prefix, config, out);
        prefix.pop();
    }
}

/// A failure while testing one sequence.
#[derive(Debug, Clone, PartialEq)]
pub enum ExploreError {
    /// The sequence did not compile against the app.
    Compile(CompileError),
    /// The simulator rejected the program.
    Sim(SimError),
}

impl std::fmt::Display for ExploreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExploreError::Compile(e) => write!(f, "compile error: {e}"),
            ExploreError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl std::error::Error for ExploreError {}

impl From<CompileError> for ExploreError {
    fn from(e: CompileError) -> Self {
        ExploreError::Compile(e)
    }
}

impl From<SimError> for ExploreError {
    fn from(e: SimError) -> Self {
        ExploreError::Sim(e)
    }
}

/// Compiles `app` with `events` and executes it once under a seeded random
/// scheduler, returning the simulation result (trace + decision vector).
///
/// # Errors
///
/// Returns [`ExploreError`] if compilation or simulation fails.
pub fn run_sequence(
    app: &App,
    events: &[UiEvent],
    config: &ExplorerConfig,
) -> Result<SimResult, ExploreError> {
    let compiled = compile(app, events)?;
    let result = run(
        &compiled.program,
        &mut RandomScheduler::new(config.seed),
        &SimConfig {
            max_steps: config.max_steps,
        },
    )?;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use droidracer_framework::{AppBuilder, Stmt};
    use droidracer_trace::validate;

    fn small_app() -> App {
        let mut b = AppBuilder::new("Small");
        let a = b.activity("Main");
        let v = b.var("o", "C.f");
        b.button(a, "one", vec![Stmt::Write(v)]);
        b.button(a, "two", vec![Stmt::Read(v)]);
        b.finish()
    }

    #[test]
    fn enumeration_is_depth_first_with_prefixes() {
        let app = small_app();
        let seqs = enumerate_sequences(
            &app,
            &ExplorerConfig {
                max_depth: 2,
                ..ExplorerConfig::default()
            },
        );
        // 4 events per screen (two clicks, rotate, back); back exits.
        // depth 1: 4 sequences; each non-back extends by its screen's events.
        assert!(seqs.iter().any(|s| s.len() == 1));
        assert!(seqs.iter().any(|s| s.len() == 2));
        // Prefix property of DFS: each length-2 sequence appears right after
        // its length-1 prefix somewhere in the order.
        for (i, s) in seqs.iter().enumerate() {
            if s.len() == 2 {
                let prefix = &s[..1];
                assert!(
                    seqs[..i].iter().any(|p| p.as_slice() == prefix),
                    "prefix of {s:?} not enumerated before it"
                );
            }
        }
        // No sequence extends past a Back that emptied the stack.
        for s in &seqs {
            if let Some(pos) = s.iter().position(|e| *e == UiEvent::Back) {
                assert_eq!(pos, s.len() - 1, "events after exit in {s:?}");
            }
        }
    }

    #[test]
    fn sequence_cap_is_respected() {
        let app = small_app();
        let seqs = enumerate_sequences(
            &app,
            &ExplorerConfig {
                max_depth: 5,
                max_sequences: 10,
                ..ExplorerConfig::default()
            },
        );
        assert_eq!(seqs.len(), 10);
    }

    #[test]
    fn depth_bound_is_respected() {
        let app = small_app();
        let seqs = enumerate_sequences(
            &app,
            &ExplorerConfig {
                max_depth: 3,
                max_sequences: 100_000,
                ..ExplorerConfig::default()
            },
        );
        assert!(seqs.iter().all(|s| s.len() <= 3));
        assert!(!seqs.is_empty());
    }

    #[test]
    fn run_sequence_produces_valid_trace() {
        let app = small_app();
        let seqs = enumerate_sequences(&app, &ExplorerConfig::default());
        let result = run_sequence(&app, &seqs[0], &ExplorerConfig::default()).expect("runs");
        assert_eq!(validate(&result.trace), Ok(()));
        assert!(result.completed);
    }

    #[test]
    fn every_enumerated_sequence_runs_validly() {
        let app = small_app();
        let config = ExplorerConfig {
            max_depth: 2,
            ..ExplorerConfig::default()
        };
        let seqs = enumerate_sequences(&app, &config);
        for seq in &seqs {
            let result = run_sequence(&app, seq, &config).expect("runs");
            assert_eq!(validate(&result.trace), Ok(()), "sequence {seq:?}");
        }
    }

    #[test]
    fn app_without_activities_yields_nothing() {
        let app = AppBuilder::new("Empty").finish();
        assert!(enumerate_sequences(&app, &ExplorerConfig::default()).is_empty());
    }
}
