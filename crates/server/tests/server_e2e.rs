//! Live end-to-end tests: a real server on an ephemeral TCP port (and a
//! Unix socket), real clients over the framed protocol.

use std::path::PathBuf;
use std::sync::Arc;

use droidracer_core::{AnalysisService, ExitClass, JobSpec, LocalService};
use droidracer_server::{status_counter, Client, Server, ServerConfig, Submission};
use droidracer_trace::{to_text, ThreadKind, TraceBuilder};

/// A small racy trace (one multithreaded race).
fn racy_text() -> String {
    let mut b = TraceBuilder::new();
    let main = b.thread("main", ThreadKind::Main, true);
    let bg = b.thread("bg", ThreadKind::App, false);
    let loc = b.loc("obj", "C.state");
    b.thread_init(main);
    b.fork(main, bg);
    b.thread_init(bg);
    b.write(bg, loc);
    b.read(main, loc);
    to_text(&b.finish())
}

/// Starts a server on an ephemeral TCP port; returns its address and the
/// join handle (joined after a clean shutdown).
fn start_tcp(config: ServerConfig) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind_tcp("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().expect("tcp addr").to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

#[test]
fn submit_twice_second_is_cache_hit() {
    let (addr, server) = start_tcp(ServerConfig::default());
    let mut client = Client::connect_tcp(&addr, "alice").expect("connect");
    let spec = JobSpec::default();
    let text = racy_text();

    let first = client.submit_trace(&spec, &text).expect("submit");
    assert!(!first.cache_hit());
    let report = first.report().expect("completed").clone();
    assert_eq!(report.exit, ExitClass::Races);

    // Direct equality: the server's report is exactly the local one.
    let local = LocalService::new().submit(&spec, &text).expect("local");
    assert_eq!(report, local);

    let second = client.submit_trace(&spec, &text).expect("submit");
    assert!(second.cache_hit(), "second submission must hit the cache");
    assert_eq!(second.report(), Some(&report), "cached report identical");

    // The cache hit did zero analysis work: the tenant's word-ops counter
    // did not move between the two submissions.
    let status = client.status().expect("status");
    assert_eq!(
        status_counter(&status, "tenant.alice.hb.word_ops"),
        Some(local.stats.word_ops),
        "{status}"
    );
    assert_eq!(status_counter(&status, "srv.cache_hits"), Some(1), "{status}");
    assert_eq!(status_counter(&status, "srv.jobs"), Some(1), "{status}");

    client.shutdown().expect("shutdown");
    drop(client);
    server.join().expect("join").expect("clean run");
}

#[test]
fn distinct_specs_do_not_share_cache_entries() {
    let (addr, server) = start_tcp(ServerConfig::default());
    let mut client = Client::connect_tcp(&addr, "alice").expect("connect");
    let text = racy_text();
    let full = JobSpec::default();
    let mt_only = JobSpec {
        mode: droidracer_core::HbMode::MultithreadedOnly,
        ..JobSpec::default()
    };
    assert!(!client.submit_trace(&full, &text).unwrap().cache_hit());
    assert!(
        !client.submit_trace(&mt_only, &text).unwrap().cache_hit(),
        "different spec, same bytes: must be a distinct cache key"
    );
    assert!(client.submit_trace(&full, &text).unwrap().cache_hit());
    client.shutdown().expect("shutdown");
    drop(client);
    server.join().expect("join").expect("clean run");
}

#[test]
fn streamed_submission_matches_batch_races() {
    let (addr, server) = start_tcp(ServerConfig::default());
    let mut client = Client::connect_tcp(&addr, "alice").expect("connect");
    let spec = JobSpec::default();
    let text = racy_text();
    let batch = client
        .submit_trace(&spec, &text)
        .unwrap()
        .report()
        .expect("batch")
        .clone();
    let streamed = client
        .submit_stream(&spec, &text, 7, 2)
        .unwrap()
        .report()
        .expect("streamed")
        .clone();
    assert!(streamed.stats.streamed);
    assert_eq!(streamed.races, batch.races);
    assert_eq!(streamed.counts, batch.counts);
    assert_eq!(streamed.exit, batch.exit);
    client.shutdown().expect("shutdown");
    drop(client);
    server.join().expect("join").expect("clean run");
}

#[test]
fn tenant_isolation_rejections_and_quota() {
    let config = ServerConfig {
        allowed_tenants: Some(vec!["alice".into(), "greedy".into()]),
        max_trace_bytes: 4096,
        tenant_quota_ops: Some(1), // one word-op: exhausted by the first job
        ..ServerConfig::default()
    };
    let (addr, server) = start_tcp(config);

    // Unknown tenant: rejected, never runs.
    let mut mallory = Client::connect_tcp(&addr, "mallory").expect("connect");
    let text = racy_text();
    match mallory.submit_trace(&JobSpec::default(), &text).unwrap() {
        Submission::Rejected { reason } => assert!(reason.contains("unknown tenant"), "{reason}"),
        other => panic!("expected rejection, got {other:?}"),
    }

    // Oversized trace: rejected.
    let mut alice = Client::connect_tcp(&addr, "alice").expect("connect");
    let huge = "x".repeat(5000);
    match alice.submit_trace(&JobSpec::default(), &huge).unwrap() {
        Submission::Rejected { reason } => assert!(reason.contains("exceeds limit"), "{reason}"),
        other => panic!("expected rejection, got {other:?}"),
    }

    // Quota: the first job is clamped to 1 word-op (Resource), after which
    // the tenant is refused outright — while alice still works.
    let mut greedy = Client::connect_tcp(&addr, "greedy").expect("connect");
    let first = greedy.submit_trace(&JobSpec::default(), &text).unwrap();
    assert_eq!(first.report().expect("ran").exit, ExitClass::Resource);
    let second = greedy.submit_trace(&JobSpec::default(), &text).unwrap();
    let report = second.report().expect("refused with a report");
    assert_eq!(report.exit, ExitClass::Resource);
    assert!(
        report.diagnostics.iter().any(|d| d.contains("quota exhausted")),
        "{:?}",
        report.diagnostics
    );

    let status = alice.status().expect("status");
    assert!(status_counter(&status, "srv.budget_exhausted").unwrap_or(0) >= 1, "{status}");
    assert!(status_counter(&status, "srv.rejected").unwrap_or(0) >= 2, "{status}");

    alice.shutdown().expect("shutdown");
    drop((alice, mallory, greedy));
    server.join().expect("join").expect("clean run");
}

#[test]
fn panicking_job_is_quarantined_and_shard_survives() {
    let hostile = "hostile";
    let config = ServerConfig {
        shards: 2,
        fault_hook: Some(Arc::new(move |phase: &str| {
            if phase == "job.hostile" {
                panic!("injected fault for {phase}");
            }
        })),
        ..ServerConfig::default()
    };
    let (addr, server) = start_tcp(config);
    let text = racy_text();

    let mut bad = Client::connect_tcp(&addr, hostile).expect("connect");
    let report = bad
        .submit_trace(&JobSpec::default(), &text)
        .unwrap()
        .report()
        .expect("quarantined report")
        .clone();
    assert_eq!(report.exit, ExitClass::Resource);
    assert!(
        report.diagnostics.iter().any(|d| d.contains("quarantined")),
        "{:?}",
        report.diagnostics
    );

    // The sibling tenant's job still runs — possibly on the same shard
    // thread that just caught the panic — and matches the local result.
    let mut good = Client::connect_tcp(&addr, "good").expect("connect");
    let sibling = good
        .submit_trace(&JobSpec::default(), &text)
        .unwrap()
        .report()
        .expect("ran")
        .clone();
    let local = LocalService::new().submit(&JobSpec::default(), &text).unwrap();
    assert_eq!(sibling, local);

    let status = good.status().expect("status");
    assert_eq!(status_counter(&status, "srv.quarantined"), Some(1), "{status}");

    good.shutdown().expect("shutdown");
    drop((good, bad));
    server.join().expect("join").expect("clean run");
}

#[test]
fn full_queue_sheds_with_overloaded_and_retry_policy_rides_it_out() {
    use droidracer_server::RetryPolicy;

    // One shard, one queue slot, and a worker that naps on every job: the
    // first job occupies the worker, the second fills the queue, and
    // everything past that must be shed with a typed Overloaded.
    let config = ServerConfig {
        shards: 1,
        queue_depth: 1,
        fault_hook: Some(Arc::new(|phase: &str| {
            if phase.starts_with("shard.") {
                std::thread::sleep(std::time::Duration::from_millis(150));
            }
        })),
        ..ServerConfig::default()
    };
    let (addr, server) = start_tcp(config);
    let text = racy_text();

    // Fire more concurrent no-retry submissions than worker + queue can
    // hold. Distinct specs (per-thread deadline values) dodge the cache.
    let mut handles = Vec::new();
    for i in 0..6u64 {
        let addr = addr.clone();
        let text = text.clone();
        handles.push(std::thread::spawn(move || {
            let mut c = Client::connect_tcp(&addr, "flood").expect("connect");
            let spec = JobSpec {
                deadline_ms: Some(60_000 + i),
                ..JobSpec::default()
            };
            c.submit_trace(&spec, &text).expect("transport ok")
        }));
    }
    let results: Vec<Submission> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let shed = results
        .iter()
        .filter(|s| matches!(s, Submission::Overloaded { .. }))
        .count();
    let done = results.iter().filter(|s| s.report().is_some()).count();
    assert!(shed >= 1, "a 1-deep queue under 6 concurrent jobs must shed: {results:?}");
    assert!(done >= 1, "the queue must still serve someone: {results:?}");
    if let Some(Submission::Overloaded { retry_after_ms }) =
        results.iter().find(|s| matches!(s, Submission::Overloaded { .. }))
    {
        assert!(*retry_after_ms > 0, "retry-after hint must be actionable");
    }

    // A retry-policy client treats Overloaded as backpressure, not
    // failure: it backs off (honoring the hint) until the queue drains.
    let mut patient = Client::connect_tcp(&addr, "patient")
        .expect("connect")
        .with_retry_policy(RetryPolicy {
            max_retries: 20,
            base_backoff_ms: 25,
            max_backoff_ms: 200,
            deadline_ms: Some(30_000),
            ..RetryPolicy::standard()
        })
        .expect("policy");
    let sub = patient.submit_trace(&JobSpec::default(), &text).expect("submit");
    assert!(sub.report().is_some(), "retrying client must eventually land: {sub:?}");

    let status = patient.status().expect("status");
    assert!(status_counter(&status, "srv.overloaded").unwrap_or(0) >= 1, "{status}");

    patient.shutdown().expect("shutdown");
    drop(patient);
    server.join().expect("join").expect("clean run");
}

#[test]
fn unix_socket_and_cache_persistence() {
    let dir = std::env::temp_dir().join(format!("droidracer-server-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let sock: PathBuf = dir.join("daemon.sock");
    let cache: PathBuf = dir.join("cache.txt");
    let config = ServerConfig {
        cache_path: Some(cache.clone()),
        ..ServerConfig::default()
    };
    let text = racy_text();

    // First server run: compute and persist.
    let server = Server::bind_unix(&sock, config.clone()).expect("bind unix");
    let handle = std::thread::spawn(move || server.run());
    let mut client = Client::connect_unix(&sock, "alice").expect("connect");
    assert!(!client.submit_trace(&JobSpec::default(), &text).unwrap().cache_hit());
    client.shutdown().expect("shutdown");
    drop(client);
    handle.join().expect("join").expect("clean run");
    assert!(cache.exists(), "cache persisted on shutdown");
    assert!(!sock.exists(), "socket file removed on shutdown");

    // Second server run: the very first submission hits the preloaded cache.
    let server = Server::bind_unix(&sock, config).expect("rebind unix");
    let handle = std::thread::spawn(move || server.run());
    let mut client = Client::connect_unix(&sock, "alice").expect("reconnect");
    let sub = client.submit_trace(&JobSpec::default(), &text).unwrap();
    assert!(sub.cache_hit(), "preloaded cache answers across restarts");
    client.shutdown().expect("shutdown");
    drop(client);
    handle.join().expect("join").expect("clean run");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn invalid_and_torn_traffic_keeps_the_connection_and_server_alive() {
    let (addr, server) = start_tcp(ServerConfig::default());
    let mut client = Client::connect_tcp(&addr, "alice").expect("connect");

    // Unparseable trace: an Invalid report, not a dropped connection.
    let report = client
        .submit_trace(&JobSpec::default(), "complete garbage\n")
        .unwrap()
        .report()
        .expect("invalid report")
        .clone();
    assert_eq!(report.exit, ExitClass::Invalid);

    // A raw connection writing a torn frame: the server drops that
    // connection; everyone else is unaffected.
    {
        use std::io::Write;
        let mut raw = std::net::TcpStream::connect(&addr).expect("raw connect");
        raw.write_all(&[0, 0]).expect("torn prefix");
    }

    // The polite client still works.
    let ok = client.submit_trace(&JobSpec::default(), &racy_text()).unwrap();
    assert!(ok.report().is_some());
    client.shutdown().expect("shutdown");
    drop(client);
    server.join().expect("join").expect("clean run");
}

#[test]
fn lazy_client_retries_cover_a_server_that_starts_late() {
    use droidracer_server::RetryPolicy;

    // Reserve an ephemeral port, release it, and only bring the server up
    // on it after a delay: the lazy client's first dials are refused and
    // must be absorbed by the retry budget, not returned as an error.
    let port = {
        let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
        probe.local_addr().expect("probe addr").port()
    };
    let addr = format!("127.0.0.1:{port}");
    let server_addr = addr.clone();
    let server = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(150));
        let server = Server::bind_tcp(&server_addr, ServerConfig::default()).expect("bind");
        server.run()
    });

    let mut client = Client::lazy_tcp(&addr, "late").with_retry_policy(RetryPolicy {
        max_retries: 50,
        base_backoff_ms: 10,
        max_backoff_ms: 50,
        deadline_ms: Some(30_000),
        ..RetryPolicy::standard()
    })
    .expect("policy");
    let sub = client.submit_trace(&JobSpec::default(), &racy_text()).expect("submit");
    assert_eq!(sub.report().expect("completed").exit, ExitClass::Races);
    assert!(client.stats().retries > 0, "the refused dials must have cost retries");
    assert_eq!(client.stats().gave_up, 0);

    client.shutdown().expect("shutdown");
    drop(client);
    server.join().expect("join").expect("clean run");
}
