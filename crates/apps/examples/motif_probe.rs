//! Dev probe: run each new component motif in isolation and print what the
//! detector actually reports, so the planted categories can be pinned to
//! reality. Not part of the test suite.

use droidracer_apps::{CorpusEntry, MotifBuilder, PaperRow};
use droidracer_framework::UiEvent;

fn probe(name: &'static str, seed: u64, build: impl FnOnce(&mut MotifBuilder)) {
    let mut m = MotifBuilder::new(name, "Main");
    build(&mut m);
    let (app, events, truth) = m.finish();
    let entry = CorpusEntry {
        name,
        open_source: true,
        app,
        events,
        seed,
        paper: PaperRow::default(),
        truth,
    };
    print!("=== {name} (seed {seed}): ");
    match entry.analyze() {
        Err(e) => println!("ERROR: {e}"),
        Ok(report) => {
            println!(
                "reported={:?} verified={:?} unplanned={} misclassified={:?}",
                report.reported,
                report.verified,
                report.unplanned(&entry.truth),
                report.misclassified(&entry.truth),
            );
            let names = report.analysis.trace().names();
            for cr in report.analysis.representatives() {
                let field = names.field_name(cr.race.loc.field);
                let planted = entry.truth.get(&field);
                let verify = droidracer_apps::verify_race(&entry, &field, 60);
                println!(
                    "    {field}: measured={:?} planted={:?} verify={verify:?}",
                    cr.category,
                    planted.map(|t| (t.category, t.is_true))
                );
            }
        }
    }
}

fn main() {
    probe("svc-loader", 7, |m| m.service_loader_races(2, 1));
    probe("svc-teardown", 7, |m| m.service_teardown_races(2, 1));
    probe("frag-detach", 7, |m| {
        m.fragment_detach_races(2, 1);
        m.push_event(UiEvent::Back);
    });
    probe("frag-ui", 7, |m| {
        m.fragment_ui_races(2, 1);
        m.push_event(UiEvent::Back);
    });
    probe("serial-exec", 7, |m| m.serial_executor_races(2, 1));
    probe("serial-handoff", 7, |m| m.serial_executor_handoff(3));
    probe("bc-sender", 7, |m| m.broadcast_sender_races(2, 1));
    probe("bc-ui", 7, |m| m.broadcast_ui_races(2, 1));
    probe("rotation", 7, |m| {
        m.rotation_saved_state_fp(1);
        m.rotation_leak_races();
    });

    for entry in droidracer_apps::component_corpus() {
        print!("=== app {} (seed {}): ", entry.name, entry.seed);
        match entry.analyze() {
            Err(e) => println!("ERROR: {e}"),
            Ok(report) => {
                let stats = report.stats;
                println!(
                    "reported={:?} unplanned={} misclassified={:?} len={} fields={} threads={}/{} tasks={}",
                    report.reported,
                    report.unplanned(&entry.truth),
                    report.misclassified(&entry.truth),
                    stats.trace_length,
                    stats.fields,
                    stats.threads_without_queues,
                    stats.threads_with_queues,
                    stats.async_tasks,
                );
                let names = report.analysis.trace().names();
                for cr in report.analysis.representatives() {
                    let field = names.field_name(cr.race.loc.field);
                    let planted = entry.truth.get(&field);
                    let verify = droidracer_apps::verify_race(&entry, &field, 60);
                    println!(
                        "    {field}: measured={:?} planted={:?} verify={verify:?}",
                        cr.category,
                        planted.map(|t| (t.category, t.is_true))
                    );
                }
            }
        }
    }
}
