//! The framed wire protocol between clients and the analysis daemon.
//!
//! Every message is one *frame*: a big-endian `u32` payload length followed
//! by the payload, which starts with a big-endian `u16` protocol version
//! and a `u8` opcode. Frames larger than [`MAX_FRAME`] bytes are rejected
//! before allocation; torn or truncated frames decode to a typed
//! [`WireError`], never a panic.
//!
//! The payload bodies carry only length-prefixed byte strings and
//! fixed-width integers: the analysis-level types ride as their stable text
//! encodings (`JobSpec::to_token`, `JobReport::to_record`), so the protocol
//! layer has no knowledge of analysis internals and the two encodings
//! version independently.

use std::fmt;
use std::io::{self, Read, Write};

/// Protocol version spoken by this build. A frame with any other version
/// decodes to [`WireError::BadVersion`].
pub const WIRE_VERSION: u16 = 1;

/// Hard cap on one frame's payload, before any allocation happens.
pub const MAX_FRAME: u32 = 64 << 20;

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Analyze one whole trace. `spec` is a `JobSpec` token; `trace` is the
    /// trace text (bytes on the wire — the server validates UTF-8).
    Submit {
        /// Tenant the job is accounted to.
        tenant: String,
        /// `JobSpec::to_token` encoding of the job options.
        spec: String,
        /// Trace text bytes.
        trace: Vec<u8>,
    },
    /// Open a streaming upload; subsequent [`Request::StreamChunk`] frames
    /// append trace text until [`Request::StreamFinish`].
    StreamOpen {
        /// Tenant the job is accounted to.
        tenant: String,
        /// `JobSpec::to_token` encoding of the job options.
        spec: String,
        /// Ops per chunk fed to the incremental engine at finish.
        chunk_ops: u32,
    },
    /// One chunk of trace text for the open stream.
    StreamChunk {
        /// Raw text bytes (need not align to line boundaries).
        data: Vec<u8>,
    },
    /// Close the open stream and run the analysis.
    StreamFinish,
    /// Ask for the server's metrics snapshot.
    Status,
    /// Ask the server to shut down cleanly (persisting its result cache).
    Shutdown,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The job's result.
    Report {
        /// Whether the result came from the content-addressed cache
        /// (no recomputation happened).
        cache_hit: bool,
        /// `JobReport::to_record` encoding of the result.
        record: String,
    },
    /// Acknowledges a stream frame; `ops` is the total bytes buffered.
    StreamAck {
        /// Bytes buffered so far for the open stream.
        buffered: u64,
    },
    /// Metrics snapshot as `key=value` lines (global `srv.*` counters plus
    /// `tenant.<name>.<counter>` per-tenant lines).
    Status {
        /// The rendered snapshot.
        text: String,
    },
    /// The request was refused before reaching a worker (unknown tenant,
    /// oversized trace, protocol misuse). The connection stays usable.
    Rejected {
        /// Human-readable reason.
        reason: String,
    },
    /// The shard's admission queue is full; the job was shed *before* any
    /// work or cache mutation, so resubmitting is always safe. The
    /// connection stays usable.
    Overloaded {
        /// Server's hint for how long to back off before retrying.
        retry_after_ms: u64,
    },
    /// Acknowledges [`Request::Shutdown`]; the server stops accepting.
    Bye,
}

/// Why a payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended mid-field.
    Truncated,
    /// A length prefix inside the payload exceeds the payload itself.
    BadLength(u32),
    /// The frame declared an unsupported protocol version.
    BadVersion(u16),
    /// The opcode byte is not a known message.
    UnknownOpcode(u8),
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// Bytes were left over after the last field of the message.
    Trailing(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "payload truncated mid-field"),
            WireError::BadLength(n) => write!(f, "field length {n} exceeds payload"),
            WireError::BadVersion(v) => {
                write!(f, "unsupported protocol version {v} (expected {WIRE_VERSION})")
            }
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::Trailing(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for io::Error {
    fn from(e: WireError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

// Opcodes. Requests are < 0x80, responses >= 0x80.
const OP_SUBMIT: u8 = 0x01;
const OP_STREAM_OPEN: u8 = 0x02;
const OP_STREAM_CHUNK: u8 = 0x03;
const OP_STREAM_FINISH: u8 = 0x04;
const OP_STATUS: u8 = 0x05;
const OP_SHUTDOWN: u8 = 0x06;
const OP_REPORT: u8 = 0x81;
const OP_STREAM_ACK: u8 = 0x82;
const OP_STATUS_REPLY: u8 = 0x83;
const OP_REJECTED: u8 = 0x84;
const OP_BYE: u8 = 0x85;
const OP_OVERLOADED: u8 = 0x86;

/// Writes one frame (length prefix + payload).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&n| n <= MAX_FRAME)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame exceeds MAX_FRAME"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame's payload. Returns `Ok(None)` on clean EOF (connection
/// closed between frames); a torn length prefix or payload is
/// `ErrorKind::UnexpectedEof`, an oversized declared length is
/// `ErrorKind::InvalidData` — both surfaced before any payload allocation
/// larger than [`MAX_FRAME`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    // Distinguish clean EOF (no bytes at all) from a torn prefix.
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "torn frame length prefix",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("declared frame length {len} exceeds MAX_FRAME {MAX_FRAME}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Incremental payload writer: version + opcode header, then fields.
struct BodyWriter {
    buf: Vec<u8>,
}

impl BodyWriter {
    fn new(opcode: u8) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&WIRE_VERSION.to_be_bytes());
        buf.push(opcode);
        BodyWriter { buf }
    }

    fn bytes(&mut self, data: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(&(data.len() as u32).to_be_bytes());
        self.buf.extend_from_slice(data);
        self
    }

    fn str(&mut self, s: &str) -> &mut Self {
        self.bytes(s.as_bytes())
    }

    fn u32(&mut self, n: u32) -> &mut Self {
        self.buf.extend_from_slice(&n.to_be_bytes());
        self
    }

    fn u64(&mut self, n: u64) -> &mut Self {
        self.buf.extend_from_slice(&n.to_be_bytes());
        self
    }

    fn u8(&mut self, n: u8) -> &mut Self {
        self.buf.push(n);
        self
    }

    fn done(self) -> Vec<u8> {
        self.buf
    }
}

/// Incremental payload reader over a decoded frame.
struct BodyReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BodyReader<'a> {
    /// Checks the version header and returns the reader plus the opcode.
    fn open(payload: &'a [u8]) -> Result<(Self, u8), WireError> {
        if payload.len() < 3 {
            return Err(WireError::Truncated);
        }
        let version = u16::from_be_bytes([payload[0], payload[1]]);
        if version != WIRE_VERSION {
            return Err(WireError::BadVersion(version));
        }
        Ok((BodyReader { buf: payload, pos: 3 }, payload[2]))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes(b.try_into().expect("8 bytes")))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.u32()?;
        if len as usize > self.buf.len().saturating_sub(self.pos) {
            return Err(WireError::BadLength(len));
        }
        Ok(self.take(len as usize)?.to_vec())
    }

    fn str(&mut self) -> Result<String, WireError> {
        String::from_utf8(self.bytes()?).map_err(|_| WireError::BadUtf8)
    }

    fn close(self) -> Result<(), WireError> {
        let left = self.buf.len() - self.pos;
        if left != 0 {
            return Err(WireError::Trailing(left));
        }
        Ok(())
    }
}

impl Request {
    /// Encodes the message as a frame payload (version + opcode + body).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Submit { tenant, spec, trace } => {
                let mut w = BodyWriter::new(OP_SUBMIT);
                w.str(tenant).str(spec).bytes(trace);
                w.done()
            }
            Request::StreamOpen { tenant, spec, chunk_ops } => {
                let mut w = BodyWriter::new(OP_STREAM_OPEN);
                w.str(tenant).str(spec).u32(*chunk_ops);
                w.done()
            }
            Request::StreamChunk { data } => {
                let mut w = BodyWriter::new(OP_STREAM_CHUNK);
                w.bytes(data);
                w.done()
            }
            Request::StreamFinish => BodyWriter::new(OP_STREAM_FINISH).done(),
            Request::Status => BodyWriter::new(OP_STATUS).done(),
            Request::Shutdown => BodyWriter::new(OP_SHUTDOWN).done(),
        }
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    ///
    /// A typed [`WireError`] for any malformed payload; never panics.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let (mut r, opcode) = BodyReader::open(payload)?;
        let req = match opcode {
            OP_SUBMIT => Request::Submit {
                tenant: r.str()?,
                spec: r.str()?,
                trace: r.bytes()?,
            },
            OP_STREAM_OPEN => Request::StreamOpen {
                tenant: r.str()?,
                spec: r.str()?,
                chunk_ops: r.u32()?,
            },
            OP_STREAM_CHUNK => Request::StreamChunk { data: r.bytes()? },
            OP_STREAM_FINISH => Request::StreamFinish,
            OP_STATUS => Request::Status,
            OP_SHUTDOWN => Request::Shutdown,
            other => return Err(WireError::UnknownOpcode(other)),
        };
        r.close()?;
        Ok(req)
    }
}

impl Response {
    /// Encodes the message as a frame payload (version + opcode + body).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Report { cache_hit, record } => {
                let mut w = BodyWriter::new(OP_REPORT);
                w.u8(u8::from(*cache_hit)).str(record);
                w.done()
            }
            Response::StreamAck { buffered } => {
                let mut w = BodyWriter::new(OP_STREAM_ACK);
                w.u64(*buffered);
                w.done()
            }
            Response::Status { text } => {
                let mut w = BodyWriter::new(OP_STATUS_REPLY);
                w.str(text);
                w.done()
            }
            Response::Rejected { reason } => {
                let mut w = BodyWriter::new(OP_REJECTED);
                w.str(reason);
                w.done()
            }
            Response::Overloaded { retry_after_ms } => {
                let mut w = BodyWriter::new(OP_OVERLOADED);
                w.u64(*retry_after_ms);
                w.done()
            }
            Response::Bye => BodyWriter::new(OP_BYE).done(),
        }
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    ///
    /// A typed [`WireError`] for any malformed payload; never panics.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let (mut r, opcode) = BodyReader::open(payload)?;
        let resp = match opcode {
            OP_REPORT => Response::Report {
                cache_hit: r.u8()? != 0,
                record: r.str()?,
            },
            OP_STREAM_ACK => Response::StreamAck { buffered: r.u64()? },
            OP_STATUS_REPLY => Response::Status { text: r.str()? },
            OP_REJECTED => Response::Rejected { reason: r.str()? },
            OP_OVERLOADED => Response::Overloaded {
                retry_after_ms: r.u64()?,
            },
            OP_BYE => Response::Bye,
            other => return Err(WireError::UnknownOpcode(other)),
        };
        r.close()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_payloads_round_trip() {
        let reqs = [
            Request::Submit {
                tenant: "alice".into(),
                spec: "v1:full:merge:strict:ops=-:bits=-:dl=-".into(),
                trace: b"droidracer-trace v1\n".to_vec(),
            },
            Request::StreamOpen {
                tenant: "".into(),
                spec: "s".into(),
                chunk_ops: 64,
            },
            Request::StreamChunk { data: vec![0, 255, 10, 13] },
            Request::StreamFinish,
            Request::Status,
            Request::Shutdown,
        ];
        for req in reqs {
            let payload = req.encode();
            assert_eq!(Request::decode(&payload), Ok(req.clone()), "{req:?}");
        }
    }

    #[test]
    fn response_payloads_round_trip() {
        let resps = [
            Response::Report {
                cache_hit: true,
                record: "exit=clean counts=0,0,0,0,0 stats=0,0,0,0,0 races=- diags=-".into(),
            },
            Response::StreamAck { buffered: u64::MAX },
            Response::Status { text: "srv.cache_hits=3\n".into() },
            Response::Rejected { reason: "unknown tenant".into() },
            Response::Overloaded { retry_after_ms: 250 },
            Response::Bye,
        ];
        for resp in resps {
            let payload = resp.encode();
            assert_eq!(Response::decode(&payload), Ok(resp.clone()), "{resp:?}");
        }
    }

    #[test]
    fn truncated_payloads_are_typed_errors() {
        let full = Request::Submit {
            tenant: "t".into(),
            spec: "spec".into(),
            trace: vec![1, 2, 3],
        }
        .encode();
        for cut in 0..full.len() {
            let err = Request::decode(&full[..cut]).expect_err("truncation must fail");
            assert!(
                matches!(err, WireError::Truncated | WireError::BadLength(_)),
                "cut={cut}: {err:?}"
            );
        }
        // Trailing garbage is caught too.
        let mut padded = full.clone();
        padded.extend_from_slice(b"xx");
        assert_eq!(Request::decode(&padded), Err(WireError::Trailing(2)));
    }

    #[test]
    fn bad_version_and_opcode_are_typed_errors() {
        let mut payload = Request::Status.encode();
        payload[0] = 0xff;
        assert_eq!(Request::decode(&payload), Err(WireError::BadVersion(0xff01)));
        let mut payload = Request::Status.encode();
        payload[2] = 0x7f;
        assert_eq!(Request::decode(&payload), Err(WireError::UnknownOpcode(0x7f)));
        // A request opcode is not a valid response.
        assert_eq!(
            Response::decode(&Request::Status.encode()),
            Err(WireError::UnknownOpcode(OP_STATUS))
        );
    }

    #[test]
    fn bad_utf8_is_a_typed_error() {
        let mut w = BodyWriter::new(OP_REJECTED);
        w.bytes(&[0xff, 0xfe]);
        assert_eq!(Response::decode(&w.done()), Err(WireError::BadUtf8));
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let payload = Request::Status.encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        write_frame(&mut wire, &payload).unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        assert_eq!(read_frame(&mut cursor).unwrap().as_deref(), Some(&payload[..]));
        assert_eq!(read_frame(&mut cursor).unwrap().as_deref(), Some(&payload[..]));
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF");

        // A declared length past MAX_FRAME fails before allocation.
        let huge = (MAX_FRAME + 1).to_be_bytes();
        let mut cursor = std::io::Cursor::new(huge.to_vec());
        let err = read_frame(&mut cursor).expect_err("oversize");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn torn_frames_are_unexpected_eof() {
        let payload = Request::Status.encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        for cut in 1..wire.len() {
            let mut cursor = std::io::Cursor::new(wire[..cut].to_vec());
            let err = read_frame(&mut cursor).expect_err("torn frame");
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut={cut}");
        }
    }
}
