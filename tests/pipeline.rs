//! End-to-end pipeline tests: UI Explorer → Trace Generator → Race
//! Detector, with replay, semantics validation (E6) and baseline
//! cross-checks.

use std::collections::BTreeSet;

use droidracer::core::{vc, AnalysisBuilder, HbMode};
use droidracer::explorer::{enumerate_sequences, run_campaign, run_sequence, ExplorerConfig};
use droidracer::framework::{App, AppBuilder, Stmt, UiEventKind};
use droidracer::trace::{validate, MemLoc};

fn two_screen_app() -> App {
    let mut b = AppBuilder::new("PipelineApp");
    let home = b.activity("Home");
    let detail = b.activity("Detail");
    let counter = b.var("Home-obj", "counter");
    let cache = b.var("Cache-obj", "entries");
    let warmup = b.worker("cache-warmer", vec![Stmt::Write(cache)]);
    b.on_create(home, vec![Stmt::Write(counter), Stmt::ForkWorker(warmup)]);
    b.on_destroy(home, vec![Stmt::Read(counter)]);
    b.button(home, "inc", vec![Stmt::Write(counter)]);
    b.button(home, "open", vec![Stmt::StartActivity(detail)]);
    b.button(detail, "readCache", vec![Stmt::Read(cache)]);
    b.finish()
}

#[test]
fn every_explored_trace_satisfies_the_semantics() {
    let app = two_screen_app();
    let config = ExplorerConfig {
        max_depth: 2,
        max_sequences: 40,
        ..ExplorerConfig::default()
    };
    let campaign = run_campaign(&app, &config).expect("campaign runs");
    assert!(campaign.runs.len() >= 10);
    for (events, result) in &campaign.runs {
        assert_eq!(validate(&result.trace), Ok(()), "sequence {events:?}");
    }
}

#[test]
fn campaign_finds_the_cache_race_in_some_test() {
    let app = two_screen_app();
    let config = ExplorerConfig {
        max_depth: 2,
        max_sequences: 40,
        ..ExplorerConfig::default()
    };
    let campaign = run_campaign(&app, &config).expect("campaign runs");
    let mut racy = 0;
    for (_, result) in &campaign.runs {
        if !AnalysisBuilder::new().analyze(&result.trace).unwrap().races().is_empty() {
            racy += 1;
        }
    }
    assert!(racy > 0, "the cache-warmer race must surface");
}

#[test]
fn replay_is_bit_identical_for_every_recorded_test() {
    let app = two_screen_app();
    let config = ExplorerConfig {
        max_depth: 2,
        max_sequences: 12,
        seed: 31,
        ..ExplorerConfig::default()
    };
    let campaign = run_campaign(&app, &config).expect("campaign runs");
    for id in 0..campaign.db.len() {
        let replayed = campaign
            .db
            .replay(&app, id)
            .expect("entry exists")
            .expect("replay runs");
        assert_eq!(
            replayed.trace.ops(),
            campaign.runs[id].1.trace.ops(),
            "entry {id}"
        );
    }
}

#[test]
fn deeper_exploration_extends_shallower() {
    let app = two_screen_app();
    let shallow = enumerate_sequences(
        &app,
        &ExplorerConfig {
            max_depth: 1,
            max_sequences: 1000,
            ..ExplorerConfig::default()
        },
    );
    let deep = enumerate_sequences(
        &app,
        &ExplorerConfig {
            max_depth: 2,
            max_sequences: 100_000,
            ..ExplorerConfig::default()
        },
    );
    for s in &shallow {
        assert!(deep.contains(s), "depth-2 enumeration contains {s:?}");
    }
    assert!(deep.len() > shallow.len());
}

#[test]
fn vector_clock_matches_graph_mt_baseline_on_explored_traces() {
    let app = two_screen_app();
    let config = ExplorerConfig {
        max_depth: 2,
        max_sequences: 15,
        ..ExplorerConfig::default()
    };
    for events in enumerate_sequences(&app, &config) {
        let result = run_sequence(&app, &events, &config).expect("runs");
        let vc_locs: BTreeSet<MemLoc> = vc::detect_multithreaded(&result.trace)
            .iter()
            .map(|r| r.loc)
            .collect();
        let graph_locs: BTreeSet<MemLoc> =
            AnalysisBuilder::new().mode(HbMode::MultithreadedOnly).analyze(&result.trace).unwrap()
                .races()
                .iter()
                .map(|cr| cr.race.loc)
                .collect();
        assert_eq!(vc_locs, graph_locs, "sequence {events:?}");
    }
}

#[test]
fn full_mode_races_are_a_subset_of_events_as_threads() {
    // Dropping FIFO/run-to-completion/enable edges only removes orderings,
    // so every race under the full relation survives under the
    // events-as-threads baseline.
    let app = two_screen_app();
    let config = ExplorerConfig {
        max_depth: 2,
        max_sequences: 15,
        ..ExplorerConfig::default()
    };
    for events in enumerate_sequences(&app, &config) {
        let result = run_sequence(&app, &events, &config).expect("runs");
        let full: BTreeSet<MemLoc> = AnalysisBuilder::new().analyze(&result.trace).unwrap()
            .races()
            .iter()
            .map(|cr| cr.race.loc)
            .collect();
        let baseline: BTreeSet<MemLoc> =
            AnalysisBuilder::new().mode(HbMode::EventsAsThreads).analyze(&result.trace).unwrap()
                .races()
                .iter()
                .map(|cr| cr.race.loc)
                .collect();
        assert!(
            full.is_subset(&baseline),
            "sequence {events:?}: full ⊆ events-as-threads violated"
        );
    }
}

#[test]
fn text_format_roundtrips_explored_traces() {
    let app = two_screen_app();
    let config = ExplorerConfig {
        max_depth: 1,
        ..ExplorerConfig::default()
    };
    for events in enumerate_sequences(&app, &config) {
        let result = run_sequence(&app, &events, &config).expect("runs");
        let text = droidracer::trace::to_text(&result.trace);
        let back = droidracer::trace::from_text(&text).expect("parses");
        assert_eq!(back.ops(), result.trace.ops());
        // The round-tripped trace analyzes identically.
        let a = AnalysisBuilder::new().analyze(&result.trace).unwrap();
        let b = AnalysisBuilder::new().analyze(&back).unwrap();
        assert_eq!(a.races(), b.races());
    }
}

#[test]
fn long_click_and_text_input_events_flow_through() {
    let mut b = AppBuilder::new("Inputs");
    let act = b.activity("Form");
    let text = b.var("Form-obj", "emailText");
    b.widget(
        act,
        "emailField",
        vec![
            (UiEventKind::TextInput, vec![Stmt::Write(text)]),
            (UiEventKind::LongClick, vec![Stmt::Read(text)]),
        ],
    );
    let app = b.finish();
    let config = ExplorerConfig {
        max_depth: 2,
        max_sequences: 50,
        ..ExplorerConfig::default()
    };
    let seqs = enumerate_sequences(&app, &config);
    // Both event kinds appear in the enumeration.
    let kinds: BTreeSet<String> = seqs
        .iter()
        .flatten()
        .map(|e| format!("{e}"))
        .collect();
    assert!(kinds.iter().any(|k| k.contains("text")), "{kinds:?}");
    assert!(kinds.iter().any(|k| k.contains("long-click")), "{kinds:?}");
    for events in &seqs {
        let result = run_sequence(&app, events, &config).expect("runs");
        assert_eq!(validate(&result.trace), Ok(()));
    }
}
