//! The Activity lifecycle state machine (Figure 8 of the paper).
//!
//! Gray nodes of the figure are [`LifecycleState`]s; the callback nodes are
//! [`Callback`]s. Solid edges are *must happen-after* orderings, dashed edges
//! *may happen-after*: if `β` may happen after `α`, some executions show `β`
//! after `α` and no trace shows `β` before `α`.
//!
//! The compiler uses this automaton to decide which `enable` operations each
//! lifecycle task plants, and the tests use it to check that generated
//! traces call callbacks in automaton order (experiment E7).

use std::fmt;

/// Lifecycle callback procedures of an Activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Callback {
    /// `onCreate`.
    Create,
    /// `onStart`.
    Start,
    /// `onResume`.
    Resume,
    /// `onPause`.
    Pause,
    /// `onStop`.
    Stop,
    /// `onRestart`.
    Restart,
    /// `onDestroy`.
    Destroy,
}

impl Callback {
    /// All callbacks.
    pub fn all() -> [Callback; 7] {
        [
            Callback::Create,
            Callback::Start,
            Callback::Resume,
            Callback::Pause,
            Callback::Stop,
            Callback::Restart,
            Callback::Destroy,
        ]
    }

    /// The Android method name.
    pub fn method_name(self) -> &'static str {
        match self {
            Callback::Create => "onCreate",
            Callback::Start => "onStart",
            Callback::Resume => "onResume",
            Callback::Pause => "onPause",
            Callback::Stop => "onStop",
            Callback::Restart => "onRestart",
            Callback::Destroy => "onDestroy",
        }
    }

    /// Callbacks that may run immediately after this one (the union of the
    /// figure's must- and may-edges out of the callback).
    pub fn successors(self) -> &'static [Callback] {
        match self {
            Callback::Create => &[Callback::Start],
            Callback::Start => &[Callback::Resume, Callback::Stop],
            Callback::Resume => &[Callback::Pause],
            Callback::Pause => &[Callback::Resume, Callback::Stop],
            Callback::Stop => &[Callback::Restart, Callback::Destroy],
            Callback::Restart => &[Callback::Start],
            Callback::Destroy => &[],
        }
    }
}

impl fmt::Display for Callback {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.method_name())
    }
}

/// Coarse lifecycle states of an Activity (the gray nodes of Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LifecycleState {
    /// Created but `onCreate` has not run.
    #[default]
    Launched,
    /// `onResume` has completed; the activity is in the foreground.
    Running,
    /// `onPause` has completed but the activity is not stopped.
    Paused,
    /// `onStop` has completed; the activity is in the background.
    Stopped,
    /// `onDestroy` has completed.
    Destroyed,
}

/// A checker that replays a sequence of callbacks against the automaton.
#[derive(Debug, Clone, Default)]
pub struct LifecycleMachine {
    state: LifecycleState,
    last: Option<Callback>,
}

/// Error produced when a callback sequence violates the automaton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LifecycleError {
    /// The callback that was attempted.
    pub callback: Callback,
    /// The callback it illegally followed, if any.
    pub after: Option<Callback>,
}

impl fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.after {
            Some(prev) => write!(f, "{} cannot follow {}", self.callback, prev),
            None => write!(f, "{} cannot be the first callback", self.callback),
        }
    }
}

impl std::error::Error for LifecycleError {}

impl LifecycleMachine {
    /// A fresh machine in the `Launched` state.
    pub fn new() -> Self {
        Self::default()
    }

    /// The coarse state reached so far.
    pub fn state(&self) -> LifecycleState {
        self.state
    }

    /// Feeds one callback.
    ///
    /// # Errors
    ///
    /// Returns [`LifecycleError`] if the callback is not a legal successor of
    /// the previous one.
    pub fn step(&mut self, callback: Callback) -> Result<(), LifecycleError> {
        let legal = match self.last {
            None => callback == Callback::Create,
            Some(prev) => prev.successors().contains(&callback),
        };
        if !legal {
            return Err(LifecycleError {
                callback,
                after: self.last,
            });
        }
        self.last = Some(callback);
        self.state = match callback {
            Callback::Create | Callback::Start | Callback::Restart => LifecycleState::Launched,
            Callback::Resume => LifecycleState::Running,
            Callback::Pause => LifecycleState::Paused,
            Callback::Stop => LifecycleState::Stopped,
            Callback::Destroy => LifecycleState::Destroyed,
        };
        Ok(())
    }

    /// Feeds a whole sequence.
    ///
    /// # Errors
    ///
    /// Returns the first violation.
    pub fn check(sequence: &[Callback]) -> Result<LifecycleState, LifecycleError> {
        let mut m = LifecycleMachine::new();
        for &c in sequence {
            m.step(c)?;
        }
        Ok(m.state())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Callback::*;

    #[test]
    fn happy_path_launch_to_destroy() {
        let state = LifecycleMachine::check(&[Create, Start, Resume, Pause, Stop, Destroy])
            .expect("legal sequence");
        assert_eq!(state, LifecycleState::Destroyed);
    }

    #[test]
    fn restart_cycle_is_legal() {
        let state = LifecycleMachine::check(&[
            Create, Start, Resume, Pause, Stop, Restart, Start, Resume,
        ])
        .expect("legal sequence");
        assert_eq!(state, LifecycleState::Running);
    }

    #[test]
    fn pause_resume_bounce_is_legal() {
        assert!(LifecycleMachine::check(&[Create, Start, Resume, Pause, Resume, Pause]).is_ok());
    }

    #[test]
    fn start_may_go_straight_to_stop() {
        // The figure's may-edge: onStart → onStop when the activity never
        // comes to the foreground.
        assert!(LifecycleMachine::check(&[Create, Start, Stop, Destroy]).is_ok());
    }

    #[test]
    fn destroy_before_stop_is_illegal() {
        let err = LifecycleMachine::check(&[Create, Start, Resume, Destroy]).unwrap_err();
        assert_eq!(err.callback, Destroy);
        assert_eq!(err.after, Some(Resume));
        assert!(err.to_string().contains("cannot follow"));
    }

    #[test]
    fn must_start_with_create() {
        let err = LifecycleMachine::check(&[Start]).unwrap_err();
        assert_eq!(err.after, None);
    }

    #[test]
    fn no_callback_follows_destroy() {
        assert!(Destroy.successors().is_empty());
        assert!(LifecycleMachine::check(&[Create, Start, Stop, Destroy, Restart]).is_err());
    }

    #[test]
    fn successor_lists_match_figure_8() {
        assert_eq!(Create.successors(), &[Start]);
        assert_eq!(Start.successors(), &[Resume, Stop]);
        assert_eq!(Resume.successors(), &[Pause]);
        assert_eq!(Pause.successors(), &[Resume, Stop]);
        assert_eq!(Stop.successors(), &[Restart, Destroy]);
        assert_eq!(Restart.successors(), &[Start]);
    }

    #[test]
    fn method_names_are_android_style() {
        for c in Callback::all() {
            assert!(c.method_name().starts_with("on"));
        }
    }
}
