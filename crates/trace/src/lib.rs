//! Execution traces for the Android concurrency model.
//!
//! This crate defines the core concurrency language of *Race Detection for
//! Android Applications* (Maiya, Kanade, Majumdar — PLDI 2014): the
//! operations of Table 1, execution traces over them, a checker for the
//! operational semantics of Figure 5, per-trace statistics matching Table 2,
//! and a text serialization format.
//!
//! # Examples
//!
//! Build the beginning of the paper's Figure 3 trace and validate it:
//!
//! ```
//! use droidracer_trace::{TraceBuilder, ThreadKind, TraceStats, validate};
//!
//! let mut b = TraceBuilder::new();
//! let binder = b.thread("binder", ThreadKind::Binder, true);
//! let main = b.thread("main", ThreadKind::Main, true);
//! let launch = b.task("LAUNCH_ACTIVITY");
//! let act = b.loc("DwFileAct-obj", "DwFileAct.isActivityDestroyed");
//!
//! b.thread_init(main);
//! b.attach_q(main);
//! b.loop_on_q(main);
//! b.thread_init(binder);
//! b.post(binder, launch, main);
//! b.begin(main, launch);
//! b.write(main, act);
//! b.end(main, launch);
//!
//! let trace = b.finish();
//! validate(&trace)?;
//! let stats = TraceStats::of(&trace);
//! assert_eq!(stats.async_tasks, 1);
//! # Ok::<(), droidracer_trace::ValidateError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod builder;
mod chunked;
mod format;
mod ids;
mod names;
mod op;
mod recover;
mod stats;
mod trace;
mod validate;

pub use builder::TraceBuilder;
pub use chunked::ChunkedReader;
pub use format::{from_text, from_text_lenient, to_text, Diagnostic, ParseTraceError, Repair};
pub use ids::{EventId, FieldId, LockId, MemLoc, ObjectId, TaskId, ThreadId, ThreadKind};
pub use names::{Names, ThreadDecl};
pub use op::{queue_must_precede, Op, OpKind, PostKind};
pub use stats::TraceStats;
pub use trace::{IndexBuilder, TaskInfo, Trace, TraceIndex};
pub use validate::{validate, ValidateError, ValidateErrorKind};
