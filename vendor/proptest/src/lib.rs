//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//!
//! * the [`Strategy`] trait with `prop_map`, integer-range / tuple / `&str`
//!   (regex) strategies, [`Just`], `prop_oneof!`, `any::<T>()`;
//! * [`collection::vec`], [`option::of`], [`string::string_regex`];
//! * the [`proptest!`] macro with `#![proptest_config(...)]`,
//!   `prop_assert!` / `prop_assert_eq!`.
//!
//! Generation is purely random (no shrinking); streams are deterministic —
//! seeded from the test function's name — so failures reproduce exactly.

#![forbid(unsafe_code)]

use std::rc::Rc;

/// Deterministic 64-bit generator (SplitMix64) driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E3779B97F4A7C15,
        }
    }

    /// Next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A value generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// The `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among type-erased alternatives (built by `prop_oneof!`).
#[derive(Clone)]
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// A `&str` is a regex strategy generating matching `String`s.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let node = regex::parse(self).expect("string strategy regex parses");
        regex::generate(&node, rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Generates any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// An inclusive-exclusive size specification for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec`s of `element` with a size drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy producing `None` a quarter of the time, `Some` otherwise.
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Option`s of values from `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// String strategies from regular expressions.
pub mod string {
    use super::{regex, Strategy, TestRng};

    /// Error for an unsupported or malformed pattern.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(pub String);

    /// A strategy generating strings matching a regex (subset: literals,
    /// `.`, classes, groups, alternation, `? * +` and `{m,n}` repetition).
    #[derive(Debug, Clone)]
    pub struct RegexGeneratorStrategy {
        node: regex::Node,
    }

    /// Compiles `pattern` into a string strategy.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        regex::parse(pattern)
            .map(|node| RegexGeneratorStrategy { node })
            .map_err(Error)
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            regex::generate(&self.node, rng)
        }
    }
}

/// A tiny regex-subset parser and generator backing the string strategies.
pub mod regex {
    use super::TestRng;

    /// Parsed regex node.
    #[derive(Debug, Clone)]
    pub enum Node {
        /// Concatenation.
        Seq(Vec<Node>),
        /// Alternation (`a|b`).
        Alt(Vec<Node>),
        /// A literal character.
        Literal(char),
        /// `.` — any printable ASCII character.
        Any,
        /// A character class, expanded to its members.
        Class(Vec<char>),
        /// Bounded repetition of the inner node.
        Repeat(Box<Node>, usize, usize),
    }

    const PRINTABLE: std::ops::RangeInclusive<u8> = 0x20..=0x7E;

    struct Parser<'a> {
        chars: std::iter::Peekable<std::str::Chars<'a>>,
    }

    /// Parses `pattern` into a [`Node`].
    pub fn parse(pattern: &str) -> Result<Node, String> {
        let mut p = Parser {
            chars: pattern.chars().peekable(),
        };
        let node = p.alt()?;
        if p.chars.peek().is_some() {
            return Err(format!("trailing input in regex {pattern:?}"));
        }
        Ok(node)
    }

    impl Parser<'_> {
        fn alt(&mut self) -> Result<Node, String> {
            let mut arms = vec![self.seq()?];
            while self.chars.peek() == Some(&'|') {
                self.chars.next();
                arms.push(self.seq()?);
            }
            Ok(if arms.len() == 1 {
                arms.pop().expect("one arm")
            } else {
                Node::Alt(arms)
            })
        }

        fn seq(&mut self) -> Result<Node, String> {
            let mut items = Vec::new();
            while let Some(&c) = self.chars.peek() {
                if c == ')' || c == '|' {
                    break;
                }
                let atom = self.atom()?;
                items.push(self.quantified(atom)?);
            }
            Ok(if items.len() == 1 {
                items.pop().expect("one item")
            } else {
                Node::Seq(items)
            })
        }

        fn atom(&mut self) -> Result<Node, String> {
            match self.chars.next() {
                Some('(') => {
                    let inner = self.alt()?;
                    match self.chars.next() {
                        Some(')') => Ok(inner),
                        _ => Err("unclosed group".into()),
                    }
                }
                Some('[') => self.class(),
                Some('.') => Ok(Node::Any),
                Some('\\') => match self.chars.next() {
                    Some(c) => Ok(Node::Literal(unescape(c))),
                    None => Err("dangling escape".into()),
                },
                Some(c) if c == '?' || c == '*' || c == '+' || c == '{' => {
                    Err(format!("quantifier {c:?} without atom"))
                }
                Some(c) => Ok(Node::Literal(c)),
                None => Err("unexpected end of pattern".into()),
            }
        }

        fn class(&mut self) -> Result<Node, String> {
            let mut members = Vec::new();
            let negated = if self.chars.peek() == Some(&'^') {
                self.chars.next();
                true
            } else {
                false
            };
            loop {
                match self.chars.next() {
                    Some(']') => break,
                    Some('\\') => match self.chars.next() {
                        Some(c) => members.push(unescape(c)),
                        None => return Err("dangling escape in class".into()),
                    },
                    Some(c) => {
                        // A range `a-z` (a `-` at the end is a literal).
                        if self.chars.peek() == Some(&'-') {
                            let mut look = self.chars.clone();
                            look.next();
                            if look.peek().is_some_and(|&e| e != ']') {
                                self.chars.next();
                                let end = self.chars.next().expect("checked above");
                                if c > end {
                                    return Err(format!("bad class range {c}-{end}"));
                                }
                                members.extend(c..=end);
                                continue;
                            }
                        }
                        members.push(c);
                    }
                    None => return Err("unclosed character class".into()),
                }
            }
            if negated {
                members = PRINTABLE
                    .map(|b| b as char)
                    .filter(|c| !members.contains(c))
                    .collect();
            }
            if members.is_empty() {
                return Err("empty character class".into());
            }
            Ok(Node::Class(members))
        }

        fn quantified(&mut self, atom: Node) -> Result<Node, String> {
            let node = match self.chars.peek() {
                Some('?') => {
                    self.chars.next();
                    Node::Repeat(Box::new(atom), 0, 1)
                }
                Some('*') => {
                    self.chars.next();
                    Node::Repeat(Box::new(atom), 0, 8)
                }
                Some('+') => {
                    self.chars.next();
                    Node::Repeat(Box::new(atom), 1, 8)
                }
                Some('{') => {
                    self.chars.next();
                    let mut digits = String::new();
                    while self.chars.peek().is_some_and(|c| c.is_ascii_digit()) {
                        digits.push(self.chars.next().expect("digit"));
                    }
                    let min: usize = digits.parse().map_err(|_| "bad repetition count")?;
                    let max = match self.chars.next() {
                        Some('}') => min,
                        Some(',') => {
                            let mut digits = String::new();
                            while self.chars.peek().is_some_and(|c| c.is_ascii_digit()) {
                                digits.push(self.chars.next().expect("digit"));
                            }
                            let max = if digits.is_empty() {
                                min + 8
                            } else {
                                digits.parse().map_err(|_| "bad repetition count")?
                            };
                            match self.chars.next() {
                                Some('}') => max,
                                _ => return Err("unclosed repetition".into()),
                            }
                        }
                        _ => return Err("unclosed repetition".into()),
                    };
                    if max < min {
                        return Err("inverted repetition bounds".into());
                    }
                    Node::Repeat(Box::new(atom), min, max)
                }
                _ => atom,
            };
            Ok(node)
        }
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    /// Generates one string matching `node`.
    pub fn generate(node: &Node, rng: &mut TestRng) -> String {
        let mut out = String::new();
        emit(node, rng, &mut out);
        out
    }

    fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Seq(items) => {
                for item in items {
                    emit(item, rng, out);
                }
            }
            Node::Alt(arms) => {
                let i = rng.below(arms.len() as u64) as usize;
                emit(&arms[i], rng, out);
            }
            Node::Literal(c) => out.push(*c),
            Node::Any => {
                let span = (*PRINTABLE.end() - *PRINTABLE.start() + 1) as u64;
                out.push((*PRINTABLE.start() + rng.below(span) as u8) as char);
            }
            Node::Class(members) => {
                let i = rng.below(members.len() as u64) as usize;
                out.push(members[i]);
            }
            Node::Repeat(inner, min, max) => {
                let n = *min + rng.below((*max - *min + 1) as u64) as usize;
                for _ in 0..n {
                    emit(inner, rng, out);
                }
            }
        }
    }
}

/// Runner configuration.
pub mod test_runner {
    /// How many cases each property test runs.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Seeds the per-test RNG from the test's name (stable across runs).
pub fn fnv1a(name: &str) -> u64 {
    let mut hash: u64 = 0xCBF29CE484222325;
    for b in name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001B3);
    }
    hash
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $config; $($rest)*);
    };
    (@impl $config:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut rng =
                    $crate::TestRng::seed_from_u64($crate::fnv1a(stringify!($name)));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Asserts a property holds for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts two expressions are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts two expressions differ for the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{Just, Strategy};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = (3u32..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let (a, b) = ((0u8..4), (10usize..12)).generate(&mut rng);
            assert!(a < 4 && (10..12).contains(&b));
        }
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = crate::TestRng::seed_from_u64(2);
        for _ in 0..100 {
            let v = crate::collection::vec(any::<u8>(), 0..5).generate(&mut rng);
            assert!(v.len() < 5);
            let exact = crate::collection::vec(any::<u8>(), 3).generate(&mut rng);
            assert_eq!(exact.len(), 3);
        }
    }

    #[test]
    fn regex_strategies_match_their_pattern() {
        let mut rng = crate::TestRng::seed_from_u64(3);
        let s = crate::string::string_regex("[a-c]{2,4}").expect("parses");
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..=4).contains(&v.len()), "{v:?}");
            assert!(v.chars().all(|c| ('a'..='c').contains(&c)), "{v:?}");
        }
        let alt = crate::string::string_regex("ab(c|d)?( x)?").expect("parses");
        for _ in 0..50 {
            let v = alt.generate(&mut rng);
            assert!(v.starts_with("ab"), "{v:?}");
        }
        // `&str` is itself a strategy.
        let direct = "t[0-9]".generate(&mut rng);
        assert!(direct.starts_with('t') && direct.len() == 2, "{direct:?}");
    }

    #[test]
    fn invalid_regex_is_an_error() {
        assert!(crate::string::string_regex("(unclosed").is_err());
        assert!(crate::string::string_regex("[unclosed").is_err());
        assert!(crate::string::string_regex("a{2,1}").is_err());
    }

    #[test]
    fn oneof_draws_every_arm() {
        let mut rng = crate::TestRng::seed_from_u64(4);
        let s = prop_oneof![Just(1u32), Just(2), (10u32..12).prop_map(|v| v)];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut rng));
        }
        assert!(seen.contains(&1) && seen.contains(&2) && seen.contains(&10));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself compiles and runs with config, metas and
        /// multiple arguments.
        #[test]
        fn macro_smoke(x in 0u64..10, v in crate::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!(x < 10);
            prop_assert!(v.len() < 4);
        }
    }
}
